"""LLaMA-style context parallelism baseline ("LLaMA CP").

Replicates the CP approach used in LLaMA 3 training (and WLB-LLM): the KV
activations of every sequence are all-gathered across the context-parallel
group *before* attention, then each rank computes attention of its query shard
against the complete KV.  The all-gather uses optimised collectives that stripe
the node-boundary traffic over all NICs — which is why it beats TE CP's
single-NIC ring hops — but it sits on the critical path (no overlap with
attention compute) and its volume grows linearly with total sequence length.

Query shards use the same zigzag assignment as the other strategies so the
causal work stays balanced.
"""

from __future__ import annotations

from repro.core.attention_engine import causal_pairs_between
from repro.core.chunking import zigzag_assignment
from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.strategy import Strategy
from repro.data.sampler import Batch
from repro.registry import register_strategy

_ALLGATHER_PRIORITY = 0
_ATTENTION_PRIORITY = 1


@register_strategy(
    "llama_cp",
    description="All-gather KV across the CP group, then local attention (LLaMA 3 style)",
)
class LlamaCPStrategy(Strategy):
    """All-gather KV then local attention (LLaMA 3 / WLB-LLM style CP)."""

    name = "LLaMA CP"

    def plan_layer(self, batch: Batch, phase: str = "forward") -> ExecutionPlan:
        plan = ExecutionPlan(name=f"llama_cp:{phase}")
        plan.metadata["strategy"] = self.name
        plan.metadata["phase"] = phase
        plan.metadata["total_tokens"] = batch.total_tokens

        ranks = self.context.dp_ranks
        group_size = len(ranks)
        compute_factor, comm_factor = self.phase_factors(phase)

        # Each rank contributes its local KV shard to the all-gather.  The
        # collective is a standard NCCL ring whose path crosses each node
        # boundary twice, so the node-boundary traffic is striped over 2 NICs.
        kv_bytes_per_rank = (
            self.comm.kv_chunk_bytes(self.spec, batch.total_tokens) / group_size
        ) * comm_factor
        allgather_time = self.comm.allgather_time(ranks, kv_bytes_per_rank, nics=2)

        allgather_ids: dict[int, int] = {}
        for rank in ranks:
            allgather_ids[rank] = plan.add(
                name=f"allgather_kv:rank{rank}",
                kind=TaskKind.ALLGATHER,
                duration_s=allgather_time,
                resources=(
                    ExecutionPlan.nvlink_resource(rank, "tx"),
                    ExecutionPlan.nvlink_resource(rank, "rx"),
                ),
                deps=(),
                rank=rank,
                priority=_ALLGATHER_PRIORITY,
            )

        # Attention: each rank attends its query shard against the full KV.
        rank_tasks: dict[int, list[int]] = {r: [] for r in self.cluster.iter_ranks()}
        pairs_per_rank = {rank: 0.0 for rank in ranks}
        tokens_per_rank = {rank: 0 for rank in ranks}
        for seq in batch:
            assignments = zigzag_assignment(seq.length, group_size)
            for i, rank in enumerate(ranks):
                a = assignments[i]
                tokens_per_rank[rank] += a.tokens
                for q_chunk in (a.head_chunk, a.tail_chunk):
                    pairs_per_rank[rank] += causal_pairs_between(
                        q_chunk, (0, seq.length)
                    )

        for rank in ranks:
            pairs = pairs_per_rank[rank]
            if pairs <= 0:
                continue
            duration = (
                self.compute.attention_pairs_time(self.spec, pairs, num_layers=1)
                * compute_factor
            )
            tid = plan.add(
                name=f"attn:llama_cp:rank{rank}",
                kind=TaskKind.ATTENTION,
                duration_s=duration,
                resources=(ExecutionPlan.compute_resource(rank),),
                deps=(allgather_ids[rank],),
                rank=rank,
                priority=_ATTENTION_PRIORITY,
            )
            rank_tasks[rank].append(tid)

        # Linear modules: the even query split keeps tokens balanced.
        self.emit_linear(plan, tokens_per_rank, rank_tasks, phase=phase)
        plan.validate()
        return plan
