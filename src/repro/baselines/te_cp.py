"""Transformer Engine context parallelism baseline ("TE CP").

Every sequence is split evenly across *all* DP ranks and executed with
causal-balanced (zigzag) ring attention over a single global ring, exactly like
Transformer Engine's context parallelism with variable-length inputs.  Linear
modules are perfectly token-balanced by construction.

The inefficiency the paper highlights (Fig. 3.b): every sequence — however
short — pays ``G`` rounds of KV communication whose node-boundary hops cross a
single NIC, so batches dominated by short sequences become communication-bound.

``use_routing=True`` turns on Zeppelin's routing layer on top of this even
split, which is the "w/ Routing" ablation configuration of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attention_engine import AttentionEngine, RingGroup
from repro.core.chunking import ChunkAssignment, zigzag_assignment
from repro.core.partitioner import RingSpec
from repro.core.plan import ExecutionPlan
from repro.core.routing import RoutingLayer
from repro.core.strategy import Strategy, StrategyContext
from repro.core.zones import Zone
from repro.data.sampler import Batch
from repro.registry import register_strategy


@dataclass(frozen=True)
class BatchRingGroup:
    """A ring executing *all* sequences of a batch together.

    Duck-types the :class:`~repro.core.attention_engine.RingGroup` interface
    used by the attention engine's ring emitter: per round, the compute of a
    rank is the sum over sequences of its causal-visible pairs, and the payload
    it forwards is the sum of its owned KV chunks across sequences — matching
    how Transformer Engine batches all sequences into each ring round.
    """

    spec: RingSpec
    per_sequence: tuple[RingGroup, ...]

    @property
    def group_size(self) -> int:
        return self.spec.group_size

    def tokens_of(self, ring_index: int) -> int:
        return sum(g.tokens_of(ring_index) for g in self.per_sequence)

    def round_pairs(self, ring_index: int, round_index: int) -> float:
        return sum(g.round_pairs(ring_index, round_index) for g in self.per_sequence)


@register_strategy(
    "te_cp",
    description="Even sequence splitting with balanced ring attention (TransformerEngine CP)",
)
class TransformerEngineCPStrategy(Strategy):
    """Even sequence splitting over one global ring (Transformer Engine CP)."""

    name = "TE CP"

    def __init__(self, context: StrategyContext, use_routing: bool = False) -> None:
        super().__init__(context)
        self.use_routing = use_routing
        self.routing = RoutingLayer(cluster=self.cluster, enabled=use_routing)
        self.engine = AttentionEngine(
            cluster=self.cluster,
            compute=self.compute,
            comm=self.comm,
            routing=self.routing,
            balanced_chunking=True,
        )
        if use_routing:
            self.name = "TE CP + Routing"

    # -- ring construction -----------------------------------------------------------

    def build_global_ring(self, batch: Batch) -> BatchRingGroup:
        """Build the single global ring carrying every sequence of the batch."""
        ranks = self.context.dp_ranks
        group_size = len(ranks)
        zone = Zone.INTER_NODE if self.cluster.num_nodes > 1 else Zone.INTRA_NODE
        per_sequence = []
        for seq in batch:
            spec = RingSpec(
                ring_id=seq.seq_id,
                seq_id=seq.seq_id,
                zone=zone,
                ranks=ranks,
                seq_len=seq.length,
            )
            assignments: tuple[ChunkAssignment, ...] = tuple(
                zigzag_assignment(seq.length, group_size)
            )
            per_sequence.append(RingGroup(spec=spec, assignments=assignments))
        batch_spec = RingSpec(
            ring_id=0,
            seq_id=0,
            zone=zone,
            ranks=ranks,
            seq_len=batch.total_tokens,
        )
        return BatchRingGroup(spec=batch_spec, per_sequence=tuple(per_sequence))

    def tokens_per_rank(self, batch: Batch) -> dict[int, int]:
        """Even split: every DP rank holds ``total_tokens / world`` tokens."""
        ring = self.build_global_ring(batch)
        return {
            rank: ring.tokens_of(i) for i, rank in enumerate(self.context.dp_ranks)
        }

    # -- Strategy interface ---------------------------------------------------------------

    def plan_layer(self, batch: Batch, phase: str = "forward") -> ExecutionPlan:
        plan = ExecutionPlan(name=f"te_cp:{phase}")
        plan.metadata["strategy"] = self.name
        plan.metadata["phase"] = phase
        plan.metadata["total_tokens"] = batch.total_tokens

        ring = self.build_global_ring(batch)
        rank_tasks: dict[int, list[int]] = {r: [] for r in self.cluster.iter_ranks()}
        compute_factor, comm_factor = self.phase_factors(phase)
        self.engine._emit_ring(
            plan, ring, self.spec, compute_factor, comm_factor, rank_tasks
        )

        tokens_per_rank = self.tokens_per_rank(batch)
        self.emit_linear(plan, tokens_per_rank, rank_tasks, phase=phase)
        plan.validate()
        return plan
