"""Input-balanced packing baseline (Fig. 2.a / Fig. 3.a).

Sequences are packed first-fit-decreasing into per-rank buffers of exactly the
token budget, so every rank sees an identical input tensor shape — perfect for
linear modules.  Attention, however, is run with the naive packed kernel whose
single causal mask wastes work on cross-sequence positions, and when Ulysses
sequence parallelism is layered on top (``ulysses_degree > 1``) every layer
additionally pays two all-to-alls over the hidden states.

This baseline is used by the Fig. 3.a cost-breakdown reproduction; the paper's
end-to-end comparison uses TE CP / LLaMA CP / Hybrid DP.
"""

from __future__ import annotations

from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.strategy import Strategy, StrategyContext
from repro.data.packing import PackedBuffer, pack_sequences
from repro.data.sampler import Batch
from repro.model.memory import hidden_bytes_per_token
from repro.registry import register_strategy
from repro.utils.validation import check_positive

_ATTENTION_PRIORITY = 1


@register_strategy(
    "packing",
    description="Input-balanced sequence packing into fixed-size per-rank buffers",
)
class PackingStrategy(Strategy):
    """First-fit-decreasing packing into fixed-size per-rank buffers."""

    name = "Input Pack"

    def __init__(
        self,
        context: StrategyContext,
        cross_sequence_attention: bool = True,
        ulysses_degree: int = 1,
    ) -> None:
        super().__init__(context)
        self.cross_sequence_attention = cross_sequence_attention
        check_positive("ulysses_degree", ulysses_degree)
        self.ulysses_degree = ulysses_degree
        if ulysses_degree > 1:
            self.name = f"Input Pack + Ulysses SP{ulysses_degree}"

    # -- packing ------------------------------------------------------------------

    def pack(self, batch: Batch) -> dict[int, list[PackedBuffer]]:
        """Pack the batch and deal buffers round-robin to DP ranks."""
        buffers = pack_sequences(batch, capacity=self.context.token_budget)
        per_rank: dict[int, list[PackedBuffer]] = {
            rank: [] for rank in self.context.dp_ranks
        }
        ranks = self.context.dp_ranks
        for i, buf in enumerate(buffers):
            per_rank[ranks[i % len(ranks)]].append(buf)
        return per_rank

    def attention_seconds(self, buffer: PackedBuffer) -> float:
        """Attention time of one packed buffer under the configured mask."""
        pairs = buffer.attention_cost_tokens_sq(self.cross_sequence_attention)
        return self.compute.attention_pairs_time(self.spec, pairs, num_layers=1)

    # -- Strategy interface ------------------------------------------------------------

    def plan_layer(self, batch: Batch, phase: str = "forward") -> ExecutionPlan:
        plan = ExecutionPlan(name=f"packing:{phase}")
        plan.metadata["strategy"] = self.name
        plan.metadata["phase"] = phase
        plan.metadata["total_tokens"] = batch.total_tokens

        compute_factor, comm_factor = self.phase_factors(phase)
        per_rank = self.pack(batch)
        rank_tasks: dict[int, list[int]] = {r: [] for r in self.cluster.iter_ranks()}
        tokens_per_rank: dict[int, int] = {}

        # Optional Ulysses all-to-all before attention (head <-> sequence swap).
        a2a_ids: dict[int, int] = {}
        if self.ulysses_degree > 1:
            groups = [
                self.context.dp_ranks[i : i + self.ulysses_degree]
                for i in range(0, len(self.context.dp_ranks), self.ulysses_degree)
            ]
            per_rank_bytes = (
                hidden_bytes_per_token(self.spec) * self.context.token_budget
            )
            for group in groups:
                if len(group) < 2:
                    continue
                ids = self.emit_all_to_all(
                    plan,
                    tuple(group),
                    per_rank_bytes,
                    {},
                    label="ulysses_a2a_in",
                    phase=phase,
                )
                a2a_ids.update(ids)

        for rank, buffers in per_rank.items():
            tokens_per_rank[rank] = sum(b.used for b in buffers)
            if not buffers:
                continue
            duration = sum(self.attention_seconds(b) for b in buffers) * compute_factor
            deps = [a2a_ids[rank]] if rank in a2a_ids else []
            tid = plan.add(
                name=f"attn:packed:rank{rank}:{len(buffers)}buf",
                kind=TaskKind.ATTENTION,
                duration_s=duration,
                resources=(ExecutionPlan.compute_resource(rank),),
                deps=deps,
                rank=rank,
                priority=_ATTENTION_PRIORITY,
            )
            rank_tasks[rank].append(tid)

        # Ulysses all-to-all back after attention.
        if self.ulysses_degree > 1:
            groups = [
                self.context.dp_ranks[i : i + self.ulysses_degree]
                for i in range(0, len(self.context.dp_ranks), self.ulysses_degree)
            ]
            per_rank_bytes = (
                hidden_bytes_per_token(self.spec) * self.context.token_budget
            )
            for group in groups:
                if len(group) < 2:
                    continue
                self.emit_all_to_all(
                    plan,
                    tuple(group),
                    per_rank_bytes,
                    rank_tasks,
                    label="ulysses_a2a_out",
                    phase=phase,
                )

        self.emit_linear(plan, tokens_per_rank, rank_tasks, phase=phase)
        plan.validate()
        return plan
