"""Baseline data-parallel strategies the paper compares against.

* :class:`~repro.baselines.te_cp.TransformerEngineCPStrategy` — even sequence
  splitting with balanced ring attention over a single global ring (the "TE CP"
  baseline).
* :class:`~repro.baselines.llama_cp.LlamaCPStrategy` — all-gather KV across the
  context-parallel group before local attention (the "LLaMA CP" baseline).
* :class:`~repro.baselines.hybrid_dp.HybridDPStrategy` — FLOP-balanced hybrid
  of plain DP for short sequences and ring CP for long ones (the "Hybrid DP" /
  ByteScale-style baseline).
* :class:`~repro.baselines.packing.PackingStrategy` — input-balanced sequence
  packing (Fig. 2.a / Fig. 3.a).

All strategies implement :class:`~repro.baselines.base.Strategy` and emit
:class:`~repro.core.plan.ExecutionPlan` task graphs timed by the same
simulator, so comparisons are apples-to-apples.
"""

from repro.baselines.base import Strategy, StrategyContext
from repro.baselines.te_cp import TransformerEngineCPStrategy
from repro.baselines.llama_cp import LlamaCPStrategy
from repro.baselines.hybrid_dp import HybridDPStrategy
from repro.baselines.packing import PackingStrategy

__all__ = [
    "Strategy",
    "StrategyContext",
    "TransformerEngineCPStrategy",
    "LlamaCPStrategy",
    "HybridDPStrategy",
    "PackingStrategy",
]
