"""Re-export of the strategy interface.

The :class:`Strategy` base class and :class:`StrategyContext` live in
:mod:`repro.core.strategy` (the core package must not depend on the baselines
package); they are re-exported here so baseline implementations and user code
can import them from the natural location.
"""

from repro.core.strategy import Strategy, StrategyContext

__all__ = ["Strategy", "StrategyContext"]
