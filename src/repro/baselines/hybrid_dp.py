"""FLOP-balanced hybrid data parallelism baseline ("Hybrid DP").

Reproduces the ByteScale/FlexSP family of hybrid schemes (Fig. 2.c).  The DP
group is split once per iteration into

* a **CP group** of contiguous ranks sized so the longest sequence fits its
  aggregate token budget, which processes the long sequences one per
  micro-batch with ring attention (no routing, static GPU-NIC affinity), and
* the remaining **DP ranks**, which each process whole short sequences.

Work is assigned to balance estimated FLOPs, and the iteration executes as a
series of synchronised micro-batches (gradient accumulation steps): micro-batch
``k`` must finish on every rank before micro-batch ``k + 1`` starts.  This is
the model-level, coarse-grained parallelism the paper contrasts with Zeppelin's
per-sequence scheduling, and it exhibits the three inefficiencies of §2.3:

* extra micro-batches lower per-micro-batch token counts and compute intensity,
* ranks processing short sequences leave their NICs idle while the CP group's
  ring hops funnel through single NICs,
* the token distribution is balanced for FLOPs, not for linear modules, and the
  FLOP estimate ignores MoE routing imbalance entirely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.attention_engine import AttentionEngine, RingGroup
from repro.core.chunking import zigzag_assignment
from repro.core.partitioner import RingSpec
from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.routing import RoutingLayer
from repro.core.strategy import Strategy, StrategyContext
from repro.core.zones import Zone
from repro.data.sampler import Batch, Sequence
from repro.model.flops import attention_flops, linear_flops_per_token
from repro.model.memory import token_capacity
from repro.registry import register_strategy

_LOCAL_PRIORITY = 2

# Expert load imbalance of MoE layers under FLOP-based token assignment: the
# hottest expert receives this multiple of the mean load (§5.1's observation
# that Hybrid DP's FLOP estimate breaks for MoE models).
_MOE_IMBALANCE_FACTOR = 1.6

# Per-micro-batch synchronisation overhead (kernel launches, gradient
# accumulation bookkeeping, collective setup) per layer.
_MICROBATCH_OVERHEAD_S = 60e-6


@dataclass
class MicroBatch:
    """One gradient-accumulation step of the hybrid schedule.

    Attributes
    ----------
    index:
        Position in the gradient-accumulation sequence.
    cp_groups:
        ``(sequence, ranks)`` pairs: long sequences executed with ring CP on a
        dedicated contiguous rank block during this micro-batch.
    dp_sequences:
        Short sequences each rank processes whole during this micro-batch.
    """

    index: int
    cp_groups: list[tuple[Sequence, tuple[int, ...]]] = field(default_factory=list)
    dp_sequences: dict[int, list[Sequence]] = field(default_factory=dict)

    def tokens_on_rank(self, rank: int) -> int:
        tokens = sum(s.length for s in self.dp_sequences.get(rank, []))
        for seq, ranks in self.cp_groups:
            if rank in ranks:
                tokens += seq.length // len(ranks)
        return tokens

    def cp_ranks(self) -> set[int]:
        ranks: set[int] = set()
        for _, group_ranks in self.cp_groups:
            ranks.update(group_ranks)
        return ranks


@dataclass
class HybridAssignment:
    """The per-iteration micro-batch schedule."""

    micro_batches: list[MicroBatch]

    @property
    def num_micro_batches(self) -> int:
        return len(self.micro_batches)

    @property
    def num_cp_groups(self) -> int:
        return sum(len(mb.cp_groups) for mb in self.micro_batches)

    def tokens_per_rank(self, all_ranks: tuple[int, ...]) -> dict[int, int]:
        totals = {rank: 0 for rank in all_ranks}
        for mb in self.micro_batches:
            for rank in all_ranks:
                totals[rank] += mb.tokens_on_rank(rank)
        return totals


@register_strategy(
    "hybrid_dp",
    description="FLOP-balanced hybrid of plain DP (short) and ring CP (long sequences)",
)
class HybridDPStrategy(Strategy):
    """ByteScale-style hybrid of plain DP (short) and ring CP (long sequences)."""

    name = "Hybrid DP"

    def __init__(self, context: StrategyContext) -> None:
        super().__init__(context)
        self.routing = RoutingLayer(cluster=self.cluster, enabled=False)
        self.engine = AttentionEngine(
            cluster=self.cluster,
            compute=self.compute,
            comm=self.comm,
            routing=self.routing,
            balanced_chunking=True,
        )
        # Hybrid schemes size their CP groups by what *fits in memory*, not by
        # the per-iteration token budget: a sequence only becomes a "long"
        # (CP-handled) sequence when it cannot fit a single device.  If the
        # model itself does not fit the configured memory/TP combination, fall
        # back to a multiple of the iteration budget so planning still works.
        try:
            self.memory_capacity = token_capacity(
                context.spec,
                context.cluster.gpu_memory_bytes,
                tensor_parallel=context.tensor_parallel,
            )
        except ValueError:
            self.memory_capacity = 8 * context.token_budget

    # -- assignment -------------------------------------------------------------------

    def _seq_flops(self, length: int) -> float:
        return attention_flops(self.spec, length, num_layers=1) + (
            linear_flops_per_token(self.spec, num_layers=1) * length
        )

    def _group_size(self, length: int, avg_flops_per_rank: float, world: int) -> int:
        """FLOP-balanced CP group size for a long sequence (memory as a floor)."""
        size_mem = math.ceil(length / self.memory_capacity)
        size_flop = math.ceil(self._seq_flops(length) / avg_flops_per_rank)
        return min(world, max(2, size_mem, size_flop))

    def assign(self, batch: Batch) -> HybridAssignment:
        """Build the micro-batch schedule.

        A sequence is "long" (CP-handled) when its FLOPs exceed what one rank
        should carry under perfect FLOP balance, or when it does not fit device
        memory.  Each long sequence receives a contiguous block of ranks sized
        for FLOP balance; blocks that do not fit alongside each other spill
        into additional micro-batches.  Short sequences fill the remaining
        (rank, micro-batch) slots greedily by FLOP load, constrained by device
        memory.
        """
        ranks = list(self.context.dp_ranks)
        world = len(ranks)
        capacity = self.memory_capacity
        ordered = list(batch.sorted_by_length(descending=True))
        avg_flops_per_rank = sum(self._seq_flops(s.length) for s in ordered) / world
        long_seqs = [
            s
            for s in ordered
            if s.length > capacity
            or (
                s.length > self.context.token_budget
                and self._seq_flops(s.length) > 1.25 * avg_flops_per_rank
            )
        ]
        long_ids = {s.seq_id for s in long_seqs}
        short_seqs = [s for s in ordered if s.seq_id not in long_ids]

        micro_batches: list[MicroBatch] = [MicroBatch(index=0)]
        flop_load: dict[tuple[int, int], float] = {(0, r): 0.0 for r in ranks}
        token_load: dict[tuple[int, int], int] = {(0, r): 0 for r in ranks}
        next_free_rank: dict[int, int] = {0: 0}

        def add_micro_batch() -> MicroBatch:
            mb = MicroBatch(index=len(micro_batches))
            micro_batches.append(mb)
            next_free_rank[mb.index] = 0
            for r in ranks:
                flop_load[(mb.index, r)] = 0.0
                token_load[(mb.index, r)] = 0
            return mb

        # Long sequences: dedicated contiguous rank blocks, packed left to right
        # within a micro-batch; a block that does not fit starts a new one.
        for seq in long_seqs:
            size = self._group_size(seq.length, avg_flops_per_rank, world)
            placed = False
            for mb in micro_batches:
                start = next_free_rank[mb.index]
                if start + size <= world:
                    group_ranks = tuple(ranks[start : start + size])
                    mb.cp_groups.append((seq, group_ranks))
                    next_free_rank[mb.index] = start + size
                    share_flops = self._seq_flops(seq.length) / size
                    share_tokens = seq.length // size
                    for r in group_ranks:
                        flop_load[(mb.index, r)] += share_flops
                        token_load[(mb.index, r)] += share_tokens
                    placed = True
                    break
            if not placed:
                mb = add_micro_batch()
                size = min(size, world)
                group_ranks = tuple(ranks[:size])
                mb.cp_groups.append((seq, group_ranks))
                next_free_rank[mb.index] = size
                share_flops = self._seq_flops(seq.length) / size
                share_tokens = seq.length // size
                for r in group_ranks:
                    flop_load[(mb.index, r)] += share_flops
                    token_load[(mb.index, r)] += share_tokens

        # Short sequences: FLOP-balanced placement constrained by memory.
        for seq in short_seqs:
            flops = self._seq_flops(seq.length)
            placed = False
            while not placed:
                candidates = [
                    (mb.index, rank)
                    for mb in micro_batches
                    for rank in ranks
                    if token_load[(mb.index, rank)] + seq.length <= capacity
                ]
                if not candidates:
                    add_micro_batch()
                    continue
                slot = min(candidates, key=lambda key: flop_load[key])
                mb_index, rank = slot
                micro_batches[mb_index].dp_sequences.setdefault(rank, []).append(seq)
                flop_load[slot] += flops
                token_load[slot] += seq.length
                placed = True

        return HybridAssignment(micro_batches=micro_batches)

    # -- Strategy interface --------------------------------------------------------------

    def plan_layer(self, batch: Batch, phase: str = "forward") -> ExecutionPlan:
        plan = ExecutionPlan(name=f"hybrid_dp:{phase}")
        plan.metadata["strategy"] = self.name
        plan.metadata["phase"] = phase
        plan.metadata["total_tokens"] = batch.total_tokens

        compute_factor, comm_factor = self.phase_factors(phase)
        assignment = self.assign(batch)
        plan.metadata["num_micro_batches"] = assignment.num_micro_batches
        plan.metadata["num_cp_groups"] = assignment.num_cp_groups

        all_ranks = self.context.dp_ranks
        barrier_deps: list[int] = []
        ring_id = 0

        for mb in assignment.micro_batches:
            mb_task_ids: list[int] = []
            rank_tasks: dict[int, list[int]] = {r: list(barrier_deps) for r in self.cluster.iter_ranks()}
            mb_tokens: dict[int, int] = {rank: 0 for rank in all_ranks}

            for seq, group_ranks in mb.cp_groups:
                group_size = len(group_ranks)
                spec = RingSpec(
                    ring_id=ring_id,
                    seq_id=seq.seq_id,
                    zone=Zone.INTER_NODE
                    if len({self.cluster.gpu(r).node_id for r in group_ranks}) > 1
                    else Zone.INTRA_NODE,
                    ranks=group_ranks,
                    seq_len=seq.length,
                )
                ring_id += 1
                assignments = tuple(zigzag_assignment(seq.length, group_size))
                group = RingGroup(spec=spec, assignments=assignments)
                before = plan.num_tasks
                self.engine._emit_ring(
                    plan,
                    group,
                    self.spec,
                    compute_factor,
                    comm_factor,
                    rank_tasks,
                    initial_deps=tuple(barrier_deps),
                )
                mb_task_ids.extend(range(before, plan.num_tasks))
                for i, rank in enumerate(group_ranks):
                    mb_tokens[rank] += assignments[i].tokens

            for rank, seqs in mb.dp_sequences.items():
                if not seqs:
                    continue
                duration = sum(
                    self.compute.attention_time(self.spec, s.length, num_layers=1)
                    for s in seqs
                )
                duration *= compute_factor
                tid = plan.add(
                    name=f"attn:dp:mb{mb.index}:rank{rank}:{len(seqs)}seqs",
                    kind=TaskKind.ATTENTION,
                    duration_s=duration,
                    resources=(ExecutionPlan.compute_resource(rank),),
                    deps=tuple(barrier_deps),
                    rank=rank,
                    priority=_LOCAL_PRIORITY,
                )
                rank_tasks[rank].append(tid)
                mb_task_ids.append(tid)
                mb_tokens[rank] += sum(s.length for s in seqs)

            # Linear modules of this micro-batch on each rank's (unbalanced)
            # token count; MoE expert imbalance inflates the slowest rank.
            linear_tokens = dict(mb_tokens)
            if self.spec.is_moe:
                linear_tokens = {
                    rank: int(round(tokens * _MOE_IMBALANCE_FACTOR))
                    for rank, tokens in linear_tokens.items()
                }
            linear_ids = self.emit_linear(plan, linear_tokens, rank_tasks, phase=phase)
            mb_task_ids.extend(linear_ids.values())

            # Gradient-accumulation boundary: every rank synchronises before the
            # next micro-batch starts.
            barrier = plan.add(
                name=f"microbatch_barrier:{mb.index}",
                kind=TaskKind.OTHER,
                duration_s=_MICROBATCH_OVERHEAD_S,
                resources=(),
                deps=tuple(mb_task_ids) if mb_task_ids else tuple(barrier_deps),
                rank=-1,
                priority=_LOCAL_PRIORITY,
            )
            barrier_deps = [barrier]

        plan.validate()
        return plan
