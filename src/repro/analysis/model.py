"""Core data model of the static analyzer: parsed files, findings, rules.

Everything here works on :mod:`ast` trees — analyzed code is *parsed, never
imported*, so the analyzer can safely chew on broken fixtures, on files with
heavyweight imports, and on its own source.

A :class:`SourceFile` bundles one parsed module with the derived tables every
rule needs: the dotted module name (computed from the ``__init__.py`` chain on
disk), an import-alias table for resolving ``Name``/``Attribute`` chains to
fully-qualified dotted names, a parent map for ancestor walks, and the
per-line ``# repro: allow(RULE)`` suppression pragmas.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

# Inline suppression: ``# repro: allow(D001) reason`` or ``allow(D001, S001)``.
# ``allow(*)`` suppresses every rule on the line.  The reason text is free-form
# but strongly encouraged — pragmas without one read as unexplained debt.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_*,\s]+?)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, by walking the ``__init__.py`` chain.

    ``src/repro/exec/cache.py`` -> ``repro.exec.cache`` (``src`` has no
    ``__init__.py``, so the walk stops there).  A loose file outside any
    package resolves to its bare stem, which is what fixture trees rely on.
    """
    resolved = path.resolve()
    parts = [] if resolved.name == "__init__.py" else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


def _suppressions(source: str) -> dict[int, frozenset[str]]:
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        )
        if rules:
            table[lineno] = rules
    return table


def _import_table(tree: ast.Module, module: str, is_package: bool) -> dict[str, str]:
    """Local name -> fully-qualified dotted target, from import statements."""
    container = module.split(".") if is_package else module.split(".")[:-1]
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = container[: len(container) - (node.level - 1)]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base else alias.name
    return table


@dataclass
class SourceFile:
    """One parsed module plus the derived tables the rules consume."""

    path: str
    module: str
    tree: ast.Module
    imports: dict[str, str]
    suppressions: dict[int, frozenset[str]]
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, display_path: str | None = None) -> "SourceFile":
        """Parse ``path``; raises :class:`SyntaxError` on broken source."""
        source = path.read_text(encoding="utf-8")
        display = display_path if display_path is not None else str(path)
        tree = ast.parse(source, filename=display)
        module = module_name_for(path)
        imports = _import_table(tree, module, is_package=path.name == "__init__.py")
        out = cls(
            path=display,
            module=module,
            tree=tree,
            imports=imports,
            suppressions=_suppressions(source),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                out.parents[child] = parent
        return out

    def resolve(self, node: ast.AST) -> str | None:
        """Fully-qualified dotted name of a ``Name``/``Attribute`` chain.

        ``Name`` resolves through the import table only — locally bound
        names stay ``None``, so ``self.rng.random()`` never masquerades as
        ``random.random()``.
        """
        if isinstance(node, ast.Name):
            return self.imports.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Parents of ``node``, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        if rules is None:
            return False
        return "*" in rules or finding.rule.upper() in rules


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`id` (``D001``-style) and implement :meth:`check`,
    yielding :class:`Finding`\\ s against an
    :class:`~repro.analysis.context.AnalysisContext`.  Rules register through
    :func:`repro.registry.register_rule`, so ``repro list`` shows them next
    to the other registries and ``repro analyze --rule`` resolves them by id.
    """

    id: str = ""

    def check(self, context: "AnalysisContext") -> Iterator[Finding]:  # noqa: F821
        raise NotImplementedError

    def finding(
        self, file: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=file.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
