"""Analysis driver: discover files, run rules, render reports.

One call — :func:`analyze_paths` — parses every ``.py`` file under the given
paths, builds the shared :class:`AnalysisContext`, evaluates the selected
rules from the ``RULES`` registry and returns an :class:`AnalysisReport`
with suppressions already applied.  :func:`execute` wraps that in the CLI
contract shared by ``repro analyze`` and ``python -m repro.analysis``:
text or ``--json`` output, exit 0 when clean, 1 on findings, 2 on usage
errors (unknown rule, missing path, same convention as the rest of the CLI).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence, TextIO

from repro.analysis.context import AnalysisConfig, AnalysisContext
from repro.analysis.model import Finding, Rule, SourceFile
from repro.registry import RULES, UnknownEntryError

JSON_SCHEMA_VERSION = 1


class AnalysisUsageError(ValueError):
    """Bad invocation: nonexistent path, unknown rule id, no files."""


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: tuple[Finding, ...]
    suppressed: tuple[Finding, ...]
    files_checked: int
    rules: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": JSON_SCHEMA_VERSION,
            "clean": self.clean,
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        noun = "file" if self.files_checked == 1 else "files"
        if self.findings:
            count = len(self.findings)
            lines.append(
                f"{count} finding{'s' if count != 1 else ''} "
                f"({self.files_checked} {noun} checked)"
            )
        else:
            summary = f"clean: {self.files_checked} {noun} checked"
            if self.suppressed:
                summary += f", {len(self.suppressed)} finding(s) suppressed"
            lines.append(summary)
        return "\n".join(lines) + "\n"


def _discover(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisUsageError(f"no such file or directory: {raw}")
    if not files:
        raise AnalysisUsageError("no Python files under the given paths")
    # De-duplicate while keeping order (a file named twice counts once).
    seen: set[Path] = set()
    unique = []
    for path in files:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _select_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    if rule_ids is None:
        classes = [entry.obj for entry in RULES.entries()]
    else:
        classes = []
        for rule_id in rule_ids:
            try:
                entry = RULES.get(rule_id)
            except UnknownEntryError as exc:
                raise AnalysisUsageError(str(exc)) from exc
            if entry.obj not in classes:
                classes.append(entry.obj)
    rules = [cls() for cls in classes]
    rules.sort(key=lambda rule: rule.id)
    return rules


def analyze_paths(
    paths: Sequence[str | Path],
    rules: Iterable[str] | None = None,
    config: AnalysisConfig | None = None,
) -> AnalysisReport:
    """Run the selected rules over every ``.py`` file under ``paths``."""
    config = AnalysisConfig.default() if config is None else config
    selected = _select_rules(rules)
    files: list[SourceFile] = []
    findings: list[Finding] = []
    for path in _discover(paths):
        try:
            files.append(SourceFile.parse(path, display_path=str(path)))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="E999",
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
    context = AnalysisContext(files, config)
    by_path = {file.path: file for file in files}
    suppressed: list[Finding] = []
    for rule in selected:
        for finding in rule.check(context):
            file = by_path.get(finding.path)
            if file is not None and file.suppressed(finding):
                suppressed.append(finding)
            else:
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return AnalysisReport(
        findings=tuple(findings),
        suppressed=tuple(suppressed),
        files_checked=len(files) + sum(1 for f in findings if f.rule == "E999"),
        rules=tuple(rule.id for rule in selected),
    )


def execute(
    paths: Sequence[str],
    rules: Iterable[str] | None = None,
    json_output: bool = False,
    stream: TextIO | None = None,
) -> int:
    """CLI-shaped entry point: print a report, return the exit code."""
    stream = sys.stdout if stream is None else stream
    try:
        report = analyze_paths(paths, rules=rules)
    except AnalysisUsageError as exc:
        print(f"repro analyze: error: {exc}", file=sys.stderr)
        return 2
    if json_output:
        json.dump(report.to_dict(), stream, indent=2)
        stream.write("\n")
    else:
        stream.write(report.render_text())
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static determinism & invariant linter for the repro tree.",
    )
    add_analyze_arguments(parser)
    return parser


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """The ``analyze`` argument set, shared with the ``repro`` CLI."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="ID",
        help="run only this rule (repeatable, e.g. --rule D001)",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return execute(args.paths, rules=args.rules, json_output=args.json)
