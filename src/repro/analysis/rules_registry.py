"""Registry-completeness rule R001.

The registries in :mod:`repro.registry` are *lazy*: a built-in entry is only
importable because its name appears in the matching ``_BUILTIN_*_MODULES``
table.  A module that calls ``@register_submitter("pbs")`` but is missing
from ``_BUILTIN_SUBMITTER_MODULES`` silently vanishes from ``repro list``
and every CLI lookup until something else happens to import it.  R001 makes
that drift a build failure: every registration site found in the analyzed
tree must be listed in the corresponding table, under the module that
actually performs the registration.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.model import Finding, Rule
from repro.registry import register_rule


@register_rule("r001")
class RegistryCompletenessRule(Rule):
    """every @register_* module is listed in its _BUILTIN_*_MODULES table"""

    id = "R001"

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for reg in context.registrations:
            table = context.registry_tables.get(reg.kind)
            if table is None:
                # No table of this kind in the analyzed set (e.g. a partial
                # tree without registry.py) — nothing to check against.
                continue
            table_name = f"_BUILTIN_{reg.kind.upper()}_MODULES"
            listed = table.get(reg.name.lower())
            if listed is None:
                yield self.finding(
                    reg.file,
                    reg.node,
                    f"@register_{reg.kind}({reg.name!r}) in {reg.module} is "
                    f"not listed in {table_name}; lazy lookup will never "
                    "import it",
                )
            elif listed != reg.module:
                yield self.finding(
                    reg.file,
                    reg.node,
                    f"{table_name} maps {reg.name!r} to {listed}, but the "
                    f"registration lives in {reg.module}",
                )
