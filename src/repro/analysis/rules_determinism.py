"""Determinism rules: wall-clock (D001), randomness (D002), environment (D003).

These enforce the conventions behind the repo's byte-identical-results
guarantee: real time is only observable through :mod:`repro.obs`, every
random stream is explicitly seeded, and the process environment is read
through :mod:`repro.config` alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.model import Finding, Rule, SourceFile
from repro.registry import register_rule

# Fully-qualified callables (and attributes) that observe the wall clock.
WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.datetime.fromtimestamp",
        "datetime.date.today",
    }
)

# Environment access points; reads and writes alike are confined to the
# allowlisted config module.
ENVIRON = frozenset(
    {"os.environ", "os.environb", "os.getenv", "os.putenv", "os.unsetenv"}
)

# numpy.random entry points that are fine *when called with a seed*; the
# seedless forms are flagged by the call check below.
_SEEDABLE_CTORS = frozenset({"random.Random", "numpy.random.RandomState"})
_NUMPY_SEED_SAFE = frozenset({"Generator", "SeedSequence", "PCG64", "Philox"})


def _wall_clock_refs(file: SourceFile) -> Iterator[tuple[ast.AST, str]]:
    for node in ast.walk(file.tree):
        if isinstance(node, (ast.Name, ast.Attribute)):
            resolved = file.resolve(node)
            if resolved in WALL_CLOCK:
                yield node, resolved


@register_rule("d001")
class WallClockRule(Rule):
    """no wall-clock reads outside repro.obs — time flows through obs spans"""

    id = "D001"

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for file in context.files:
            if context.config.allowed(self.id, file.module):
                continue
            for node, resolved in _wall_clock_refs(file):
                yield self.finding(
                    file,
                    node,
                    f"wall-clock access `{resolved}`; route timing through "
                    "repro.obs spans or telemetry.stopwatch()",
                )


@register_rule("d002")
class UnseededRandomnessRule(Rule):
    """no unseeded randomness — every RNG stream takes an explicit seed"""

    id = "D002"

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for file in context.files:
            if context.config.allowed(self.id, file.module):
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = file.resolve(node.func)
                if resolved is None:
                    continue
                message = self._diagnose(resolved, node)
                if message is not None:
                    yield self.finding(file, node, message)

    @staticmethod
    def _diagnose(resolved: str, call: ast.Call) -> str | None:
        unseeded = not call.args and not call.keywords
        if resolved in _SEEDABLE_CTORS:
            if unseeded:
                return f"`{resolved}()` without a seed; pass an explicit seed"
            return None
        if resolved.endswith(".default_rng"):
            if unseeded:
                return f"`{resolved}()` without a seed; pass an explicit seed"
            return None
        if resolved == "random.SystemRandom":
            return "`random.SystemRandom` draws OS entropy and can never be seeded"
        if resolved.startswith("random."):
            return (
                f"module-level `{resolved}()` uses the shared global RNG; "
                "use a seeded random.Random instance"
            )
        if resolved.startswith("numpy.random."):
            leaf = resolved.split(".")[-1]
            if leaf in _NUMPY_SEED_SAFE:
                return None
            return (
                f"legacy global `{resolved}()`; use "
                "numpy.random.default_rng(seed)"
            )
        return None


@register_rule("d003")
class EnvironReadRule(Rule):
    """no os.environ/os.getenv outside repro.config — one env chokepoint"""

    id = "D003"

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for file in context.files:
            if context.config.allowed(self.id, file.module):
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, (ast.Name, ast.Attribute)):
                    continue
                resolved = file.resolve(node)
                if resolved in ENVIRON:
                    yield self.finding(
                        file,
                        node,
                        f"environment access `{resolved}`; add a helper to "
                        "repro.config instead",
                    )
