"""Cross-file analysis context: config, registrations, registry tables.

The driver parses every file once, then builds one :class:`AnalysisContext`
shared by all rules.  The context carries the whole-program facts that no
single file can answer:

* every ``register_*`` registration site (decorator or direct call), for the
  registry-completeness rule R001;
* every ``_BUILTIN_*_MODULES`` dict literal, i.e. the lazy-registry tables
  those registrations must appear in;
* the closed event vocabulary (``EVENT_TYPES`` in ``obs/events.py``) that
  rule E001 checks emission sites against.

All of it is read off the ASTs — nothing is imported.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.analysis.model import SourceFile

# Registry kinds with a ``register_<kind>`` decorator and a matching
# ``_BUILTIN_<KIND>_MODULES`` table in repro.registry.
REGISTRY_KINDS = frozenset(
    {
        "strategy",
        "experiment",
        "recovery",
        "backend",
        "submitter",
        "arrival",
        "admission",
        "scale",
        "rule",
    }
)

_TABLE_RE = re.compile(r"^_BUILTIN_([A-Z]+)_MODULES$")


@dataclass(frozen=True)
class AnalysisConfig:
    """Per-rule module allowlists.

    ``allow_modules`` maps a rule id to module prefixes where the rule does
    not apply: ``repro.obs`` may read the wall clock (D001) and record wall
    times (S001) — it *is* the timing subsystem — and ``repro.config`` is
    the one sanctioned ``os.environ`` chokepoint (D003).
    """

    allow_modules: Mapping[str, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def default(cls) -> "AnalysisConfig":
        return cls(
            allow_modules={
                "D001": ("repro.obs",),
                "D003": ("repro.config",),
                "S001": ("repro.obs",),
            }
        )

    def allowed(self, rule_id: str, module: str) -> bool:
        """True when ``module`` is allowlisted for ``rule_id``."""
        for prefix in self.allow_modules.get(rule_id.upper(), ()):
            if module == prefix or module.startswith(prefix + "."):
                return True
        return False


@dataclass(frozen=True)
class Registration:
    """One ``@register_<kind>("name")`` site found in an analyzed file."""

    kind: str
    name: str
    file: SourceFile
    node: ast.AST

    @property
    def module(self) -> str:
        return self.file.module


def _registration_kind(file: SourceFile, func: ast.expr) -> str | None:
    """Registry kind of a ``register_*`` callee, or ``None``."""
    resolved = file.resolve(func)
    if resolved is None and isinstance(func, ast.Name):
        resolved = func.id
    if resolved is None:
        return None
    leaf = resolved.split(".")[-1]
    if not leaf.startswith("register_"):
        return None
    kind = leaf[len("register_") :]
    return kind if kind in REGISTRY_KINDS else None


def _collect_registrations(file: SourceFile) -> list[Registration]:
    found = []
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _registration_kind(file, node.func)
        if kind is None or not node.args:
            continue
        name = node.args[0]
        if not (isinstance(name, ast.Constant) and isinstance(name.value, str)):
            continue  # dynamic registration name; out of static reach
        found.append(Registration(kind=kind, name=name.value, file=file, node=node))
    return found


def _dict_of_str(node: ast.expr) -> dict[str, str] | None:
    if not isinstance(node, ast.Dict):
        return None
    out: dict[str, str] = {}
    for key, value in zip(node.keys, node.values):
        if not (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return None
        out[key.value.lower()] = value.value
    return out


class AnalysisContext:
    """Everything the rules see: parsed files, config, cross-file tables."""

    def __init__(self, files: list[SourceFile], config: AnalysisConfig):
        self.files = files
        self.config = config
        self.registrations: list[Registration] = []
        # kind -> {entry name -> providing module}, merged over all files.
        self.registry_tables: dict[str, dict[str, str]] = {}
        # kind -> the table's file/node, for anchoring table-side findings.
        self.table_sites: dict[str, tuple[SourceFile, ast.AST]] = {}
        self.event_types: frozenset[str] | None = None
        self.event_types_origin: str | None = None
        for file in files:
            self.registrations.extend(_collect_registrations(file))
            self._collect_tables(file)
            self._collect_event_types(file)

    def _collect_tables(self, file: SourceFile) -> None:
        for node in ast.walk(file.tree):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            match = _TABLE_RE.match(target.id)
            if match is None:
                continue
            table = _dict_of_str(node.value)
            if table is None:
                continue
            kind = match.group(1).lower()
            self.registry_tables.setdefault(kind, {}).update(table)
            self.table_sites.setdefault(kind, (file, node))

    def _collect_event_types(self, file: SourceFile) -> None:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target: ast.expr = node.targets[0]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target = node.target
                value = node.value
            else:
                continue
            if not (isinstance(target, ast.Name) and target.id == "EVENT_TYPES"):
                continue
            if not isinstance(value, ast.Dict):
                continue
            names = frozenset(
                key.value
                for key in value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            )
            if not names:
                continue
            existing = self.event_types or frozenset()
            self.event_types = existing | names
            if self.event_types_origin is None:
                self.event_types_origin = file.module
