"""Event-vocabulary rule E001.

:mod:`repro.obs.events` declares a *closed* vocabulary: ``EVENT_TYPES`` maps
every legal event type to its allowed field names, and ``validate_event``
rejects anything else at runtime.  E001 moves the first half of that check
to build time: every statically-visible emission site — ``tele.event("x",
...)`` hub calls and direct ``make_event("x", ...)`` constructions — must
name a type present in the vocabulary, so a typo'd or ad-hoc event type
fails CI instead of failing (or worse, silently passing) in a sink.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.model import Finding, Rule
from repro.registry import register_rule


def _literal_first_arg(call: ast.Call) -> ast.Constant | None:
    if call.args and isinstance(call.args[0], ast.Constant):
        arg = call.args[0]
        if isinstance(arg.value, str):
            return arg
    return None


@register_rule("e001")
class EventVocabularyRule(Rule):
    """every emitted event type appears in the closed EVENT_TYPES vocabulary"""

    id = "E001"

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        vocabulary = context.event_types
        if vocabulary is None:
            return  # no EVENT_TYPES declaration in the analyzed set
        origin = context.event_types_origin or "EVENT_TYPES"
        for file in context.files:
            if context.config.allowed(self.id, file.module):
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_emission(file, node):
                    continue
                arg = _literal_first_arg(node)
                if arg is None:
                    continue  # dynamic event type; runtime validation owns it
                if arg.value not in vocabulary:
                    yield self.finding(
                        file,
                        arg,
                        f"event type {arg.value!r} is not in the closed "
                        f"vocabulary declared by {origin}",
                    )

    @staticmethod
    def _is_emission(file, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "event":
            return True
        resolved = file.resolve(func)
        if resolved is None and isinstance(func, ast.Name):
            resolved = func.id
        return resolved is not None and (
            resolved == "make_event" or resolved.endswith(".make_event")
        )
