"""``python -m repro.analysis`` — run the static analyzer standalone."""

import sys

from repro.analysis.driver import main

if __name__ == "__main__":
    sys.exit(main())
