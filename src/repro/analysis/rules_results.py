"""Result-schema rule S001: wall-clock data stays under ``meta["timing"]``.

Result objects are part of the byte-identical-per-seed contract, so any
genuinely wall-clock-derived measurement must live in the one subtree
consumers know to ignore when comparing runs: ``meta["timing"]``.  S001
flags two shapes outside that subtree:

* a field on a ``@dataclass(frozen=True)`` result class whose name looks
  wall-clock-derived (``wall``/``timestamp``);
* a wall-looking string key written into a dict literal (or stored through
  a subscript) with no enclosing ``timing`` context.

Fields that merely *sound* like wall time but hold simulated/virtual time
(e.g. ``ResilienceResult.wall_time_s``) carry an inline
``# repro: allow(S001) <reason>`` pragma — the pragma is the documentation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.context import AnalysisContext
from repro.analysis.model import Finding, Rule, SourceFile
from repro.registry import register_rule

_WALL_NAME_RE = re.compile(r"wall|timestamp")


def _is_frozen_dataclass(file: SourceFile, cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        resolved = file.resolve(deco.func)
        if resolved is None and isinstance(deco.func, ast.Name):
            resolved = deco.func.id
        if resolved not in ("dataclass", "dataclasses.dataclass"):
            continue
        for kw in deco.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def _mentions_timing(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "timing" in sub.id:
            return True
        if isinstance(sub, ast.Attribute) and "timing" in sub.attr:
            return True
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and "timing" in sub.value
        ):
            return True
    return False


def _in_timing_context(file: SourceFile, node: ast.Dict) -> bool:
    """True when ``node`` sits under a ``timing`` key, name or argument."""
    child: ast.AST = node
    for anc in file.ancestors(node):
        if isinstance(anc, ast.Dict):
            for key, value in zip(anc.keys, anc.values):
                if (
                    value is child
                    and isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and "timing" in key.value
                ):
                    return True
        elif isinstance(anc, ast.keyword):
            if anc.arg is not None and "timing" in anc.arg:
                return True
        elif isinstance(anc, (ast.Assign, ast.AnnAssign)):
            targets = anc.targets if isinstance(anc, ast.Assign) else [anc.target]
            for target in targets:
                if _mentions_timing(target):
                    return True
        child = anc
    return False


@register_rule("s001")
class TimingIsolationRule(Rule):
    """wall-clock-derived result fields live only under meta["timing"]"""

    id = "S001"

    def check(self, context: AnalysisContext) -> Iterator[Finding]:
        for file in context.files:
            if context.config.allowed(self.id, file.module):
                continue
            yield from self._check_dataclass_fields(file)
            yield from self._check_dict_stores(file)

    def _check_dataclass_fields(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_frozen_dataclass(file, node):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                target = stmt.target
                if not isinstance(target, ast.Name):
                    continue
                if _WALL_NAME_RE.search(target.id):
                    yield self.finding(
                        file,
                        stmt,
                        f"frozen result dataclass {node.name} declares "
                        f"wall-clock-looking field {target.id!r}; wall-clock "
                        'measurements belong under meta["timing"] (if this '
                        "is virtual time, say so with a pragma)",
                    )

    def _check_dict_stores(self, file: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and _WALL_NAME_RE.search(key.value)
                        and not _in_timing_context(file, node)
                    ):
                        yield self.finding(
                            file,
                            key,
                            f"wall-clock-looking key {key.value!r} stored "
                            'outside a "timing" subtree',
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                        and _WALL_NAME_RE.search(target.slice.value)
                        and not _mentions_timing(target.value)
                    ):
                        yield self.finding(
                            file,
                            target,
                            f"wall-clock-looking key {target.slice.value!r} "
                            'stored outside a "timing" subtree',
                        )
