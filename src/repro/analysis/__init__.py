"""repro.analysis — AST-based determinism & invariant linter.

A dependency-free static pass over the source tree that machine-checks the
conventions behind the repo's reproducibility guarantee::

    python -m repro.analysis src          # or: repro analyze src
    repro analyze --rule D001 --json src

Rules (each a :class:`~repro.analysis.model.Rule` registered with
``@register_rule``, so ``repro list`` shows them):

* **D001** — no wall-clock reads outside :mod:`repro.obs`.
* **D002** — no unseeded randomness (global ``random.*``, seedless ctors).
* **D003** — no ``os.environ``/``os.getenv`` outside :mod:`repro.config`.
* **R001** — every ``@register_*`` module is listed in its
  ``_BUILTIN_*_MODULES`` table (lazy-registry drift).
* **E001** — emitted event types stay inside the closed ``EVENT_TYPES``
  vocabulary of :mod:`repro.obs.events`.
* **S001** — wall-clock-derived result data lives under ``meta["timing"]``.

Inline suppression: ``# repro: allow(D001) <reason>`` on the flagged line.
Analyzed code is parsed, never imported.
"""

from repro.analysis.context import AnalysisConfig, AnalysisContext
from repro.analysis.driver import (
    AnalysisReport,
    AnalysisUsageError,
    analyze_paths,
    execute,
    main,
)
from repro.analysis.model import Finding, Rule, SourceFile

# Importing the rule modules would defeat the registry's lazy loading; the
# RULES table in repro.registry names them, and the driver resolves it.

__all__ = [
    "AnalysisConfig",
    "AnalysisContext",
    "AnalysisReport",
    "AnalysisUsageError",
    "Finding",
    "Rule",
    "SourceFile",
    "analyze_paths",
    "execute",
    "main",
]
