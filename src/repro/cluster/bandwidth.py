"""Bandwidth and link-time models.

Communication time is modelled with the classic alpha-beta (latency +
bytes/bandwidth) model.  The paper reasons about three bandwidth tiers:

* device-local (no transfer),
* intra-node over NVSwitch (``b_intra`` in the paper's notation, ~400 GB/s on
  Cluster A),
* inter-node over NICs (``b_inter``, 200 Gb/s per NIC on Cluster A).

``b_intra`` / ``b_inter`` in the paper are *inverse* bandwidths (seconds per
byte); :class:`LinkModel` exposes both the bandwidth and the inverse so the
scheduling code can mirror the paper's formulas directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LinkModel:
    """An alpha-beta model of a single communication link.

    Parameters
    ----------
    bandwidth_bytes_per_s:
        Sustained bandwidth of the link in bytes/second.
    latency_s:
        Fixed per-message latency in seconds (the "alpha" term).
    """

    bandwidth_bytes_per_s: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        check_positive("bandwidth_bytes_per_s", self.bandwidth_bytes_per_s)
        check_non_negative("latency_s", self.latency_s)

    @property
    def inverse_bandwidth(self) -> float:
        """Seconds per byte — the paper's ``b_intra`` / ``b_inter`` notation."""
        return 1.0 / self.bandwidth_bytes_per_s

    def transfer_time(self, nbytes: float) -> float:
        """Time in seconds to move ``nbytes`` over this link."""
        check_non_negative("nbytes", nbytes)
        if nbytes == 0:
            return 0.0
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def scaled(self, factor: float) -> "LinkModel":
        """Return a copy of this link with bandwidth multiplied by ``factor``.

        Used to model sharing (factor < 1) or aggregation over several parallel
        links (factor > 1).
        """
        check_positive("factor", factor)
        return LinkModel(
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s * factor,
            latency_s=self.latency_s,
        )


@dataclass(frozen=True)
class BandwidthProfile:
    """The bandwidth hierarchy of one cluster.

    Attributes
    ----------
    intra_node:
        Link model for GPU-to-GPU transfers inside a node (NVSwitch/NVLink).
    nic:
        Link model of a *single* NIC for inter-node transfers.
    nics_per_node:
        Number of NICs installed per node.
    gpus_per_nic:
        How many GPUs share one NIC (Cluster A: 2, Clusters B/C: 1).
    """

    intra_node: LinkModel
    nic: LinkModel
    nics_per_node: int
    gpus_per_nic: int

    def __post_init__(self) -> None:
        check_positive("nics_per_node", self.nics_per_node)
        check_positive("gpus_per_nic", self.gpus_per_nic)

    @property
    def inter_node_aggregate(self) -> LinkModel:
        """Aggregate inter-node link when all NICs of a node are used together."""
        return self.nic.scaled(self.nics_per_node)

    @property
    def b_intra(self) -> float:
        """Inverse intra-node bandwidth (s/byte), the paper's ``b_intra``."""
        return self.intra_node.inverse_bandwidth

    @property
    def b_inter(self) -> float:
        """Inverse single-NIC inter-node bandwidth (s/byte), the paper's ``b_inter``."""
        return self.nic.inverse_bandwidth

    @property
    def bandwidth_gap(self) -> float:
        """Ratio of intra-node to single-NIC inter-node bandwidth.

        The paper cites a typical ~10x gap on modern GPU clusters; the gap is
        what makes the three-step routing of §3.3 profitable.
        """
        return self.intra_node.bandwidth_bytes_per_s / self.nic.bandwidth_bytes_per_s


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    check_non_negative("value", value)
    return value * 1e9 / 8.0


def gBps(value: float) -> float:
    """Convert gigabytes/second to bytes/second."""
    check_non_negative("value", value)
    return value * 1e9
