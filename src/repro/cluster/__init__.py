"""Cluster topology model: nodes, GPUs, NICs, and bandwidth hierarchy.

This subpackage is the hardware substrate the paper's evaluation runs on.  The
real clusters (A800/H800/H200 nodes connected by NVSwitch intra-node and
RoCE/CX7 NICs inter-node) are replaced by an explicit topology description with
the same structure: per-node device lists, per-NIC bandwidth, GPU-to-NIC
affinity, and intra-node switch bandwidth.  Every scheduling decision Zeppelin
makes depends only on this structural information.
"""

from repro.cluster.topology import GPU, NIC, Node, Cluster
from repro.cluster.bandwidth import LinkModel, BandwidthProfile
from repro.cluster.presets import (
    cluster_a,
    cluster_b,
    cluster_c,
    make_cluster,
    CLUSTER_PRESETS,
)

__all__ = [
    "GPU",
    "NIC",
    "Node",
    "Cluster",
    "LinkModel",
    "BandwidthProfile",
    "cluster_a",
    "cluster_b",
    "cluster_c",
    "make_cluster",
    "CLUSTER_PRESETS",
]
