"""Cluster topology: GPUs, NICs, nodes, and global rank mapping.

The topology object answers the structural questions Zeppelin's layers ask:

* which node does a global rank live on (zone classification, Alg. 1/2),
* which NIC serves a given GPU (routing layer, §3.3),
* which GPUs share a NIC (the Cluster A 2-GPUs-per-NIC affinity that motivates
  proxy ranks),
* what link connects two ranks (intra-node NVSwitch vs inter-node NIC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.cluster.bandwidth import BandwidthProfile, LinkModel
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class GPU:
    """A single accelerator.

    Attributes
    ----------
    global_rank:
        Rank of this GPU across the whole cluster (0-based, row-major by node).
    node_id:
        Index of the node hosting this GPU.
    local_rank:
        Index of this GPU within its node.
    nic_id:
        Global index of the NIC this GPU is affined to.
    device_type:
        Device model name, e.g. ``"A800"``; used by the compute cost model.
    peak_flops:
        Peak dense bf16 throughput in FLOP/s.
    memory_bytes:
        HBM capacity in bytes.
    """

    global_rank: int
    node_id: int
    local_rank: int
    nic_id: int
    device_type: str
    peak_flops: float
    memory_bytes: float

    def __post_init__(self) -> None:
        check_non_negative("global_rank", self.global_rank)
        check_non_negative("node_id", self.node_id)
        check_non_negative("local_rank", self.local_rank)
        check_non_negative("nic_id", self.nic_id)
        check_positive("peak_flops", self.peak_flops)
        check_positive("memory_bytes", self.memory_bytes)


@dataclass(frozen=True)
class NIC:
    """A network interface card attached to a node.

    Attributes
    ----------
    nic_id:
        Global NIC index across the cluster.
    node_id:
        Node hosting the NIC.
    local_index:
        Index of the NIC within its node.
    link:
        Alpha-beta model of the NIC's inter-node bandwidth.
    gpu_local_ranks:
        Local ranks of the GPUs affined to this NIC.
    """

    nic_id: int
    node_id: int
    local_index: int
    link: LinkModel
    gpu_local_ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        check_non_negative("nic_id", self.nic_id)
        check_non_negative("node_id", self.node_id)
        check_non_negative("local_index", self.local_index)
        if not self.gpu_local_ranks:
            raise ValueError("a NIC must serve at least one GPU")


@dataclass(frozen=True)
class Node:
    """One server: a set of GPUs connected by NVSwitch plus its NICs."""

    node_id: int
    gpus: tuple[GPU, ...]
    nics: tuple[NIC, ...]
    intra_node_link: LinkModel

    def __post_init__(self) -> None:
        check_non_negative("node_id", self.node_id)
        if not self.gpus:
            raise ValueError("a node must contain at least one GPU")
        if not self.nics:
            raise ValueError("a node must contain at least one NIC")

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    @property
    def num_nics(self) -> int:
        return len(self.nics)

    def gpu_by_local_rank(self, local_rank: int) -> GPU:
        """Return the GPU with the given local rank."""
        for gpu in self.gpus:
            if gpu.local_rank == local_rank:
                return gpu
        raise KeyError(f"node {self.node_id} has no local rank {local_rank}")

    def nic_for_local_rank(self, local_rank: int) -> NIC:
        """Return the NIC affined to the GPU with the given local rank."""
        for nic in self.nics:
            if local_rank in nic.gpu_local_ranks:
                return nic
        raise KeyError(
            f"no NIC on node {self.node_id} is affined to local rank {local_rank}"
        )


@dataclass(frozen=True)
class Cluster:
    """The full training cluster.

    A cluster is a homogeneous collection of nodes described by a
    :class:`~repro.cluster.bandwidth.BandwidthProfile`.  Ranks are numbered
    row-major by node: global rank = ``node_id * gpus_per_node + local_rank``.
    """

    name: str
    nodes: tuple[Node, ...]
    profile: BandwidthProfile
    description: str = ""
    _rank_index: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a cluster must contain at least one node")
        sizes = {node.num_gpus for node in self.nodes}
        if len(sizes) != 1:
            raise ValueError("all nodes must have the same number of GPUs")
        index: dict[int, GPU] = {}
        for node in self.nodes:
            for gpu in node.gpus:
                if gpu.global_rank in index:
                    raise ValueError(f"duplicate global rank {gpu.global_rank}")
                index[gpu.global_rank] = gpu
        expected = set(range(len(index)))
        if set(index) != expected:
            raise ValueError("global ranks must be contiguous starting at 0")
        object.__setattr__(self, "_rank_index", index)

    # -- sizes -------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def gpus_per_node(self) -> int:
        return self.nodes[0].num_gpus

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    # -- lookups -----------------------------------------------------------

    def gpu(self, global_rank: int) -> GPU:
        """Return the GPU with the given global rank."""
        try:
            return self._rank_index[global_rank]
        except KeyError:
            raise KeyError(
                f"rank {global_rank} out of range for world size {self.world_size}"
            ) from None

    def node_of(self, global_rank: int) -> Node:
        """Return the node hosting the given global rank."""
        return self.nodes[self.gpu(global_rank).node_id]

    def nic_of(self, global_rank: int) -> NIC:
        """Return the NIC affined to the given global rank."""
        gpu = self.gpu(global_rank)
        return self.node_of(global_rank).nic_for_local_rank(gpu.local_rank)

    def ranks_on_node(self, node_id: int) -> tuple[int, ...]:
        """Global ranks hosted on ``node_id``, in local-rank order."""
        node = self.nodes[node_id]
        return tuple(
            gpu.global_rank for gpu in sorted(node.gpus, key=lambda g: g.local_rank)
        )

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """True if two global ranks live on the same node."""
        return self.gpu(rank_a).node_id == self.gpu(rank_b).node_id

    def same_nic(self, rank_a: int, rank_b: int) -> bool:
        """True if two global ranks share the same NIC (Cluster A affinity)."""
        return (
            self.same_node(rank_a, rank_b)
            and self.nic_of(rank_a).nic_id == self.nic_of(rank_b).nic_id
        )

    def link_between(self, rank_a: int, rank_b: int) -> LinkModel | None:
        """Link model for a point-to-point transfer between two ranks.

        Returns ``None`` for a transfer from a rank to itself (no link needed),
        the intra-node link when both ranks share a node, and the single-NIC
        inter-node link otherwise.
        """
        if rank_a == rank_b:
            return None
        if self.same_node(rank_a, rank_b):
            return self.profile.intra_node
        return self.profile.nic

    def iter_ranks(self) -> Iterator[int]:
        """Iterate over global ranks in order."""
        return iter(range(self.world_size))

    # -- derived quantities --------------------------------------------------

    @property
    def peak_flops_per_gpu(self) -> float:
        """Peak FLOP/s of a single GPU (homogeneous clusters only)."""
        return self.nodes[0].gpus[0].peak_flops

    @property
    def gpu_memory_bytes(self) -> float:
        """HBM capacity of a single GPU in bytes."""
        return self.nodes[0].gpus[0].memory_bytes

    @property
    def device_type(self) -> str:
        """Device model name of the cluster's GPUs."""
        return self.nodes[0].gpus[0].device_type

    def describe(self) -> str:
        """One-line human readable summary of the cluster."""
        prof = self.profile
        return (
            f"{self.name}: {self.num_nodes} nodes x {self.gpus_per_node} "
            f"{self.device_type} GPUs, {prof.nics_per_node} NICs/node "
            f"({prof.nic.bandwidth_bytes_per_s * 8 / 1e9:.0f} Gb/s each), "
            f"intra-node {prof.intra_node.bandwidth_bytes_per_s / 1e9:.0f} GB/s"
        )
