"""Cluster presets matching the paper's evaluation testbeds (§5).

* **Cluster A** — 8x NVIDIA A800-80G per node, NVSwitch with 400 GB/s intra-node
  bandwidth, 4 RoCE NICs of 200 Gb/s each, every NIC shared by 2 GPUs.
* **Cluster B** — 8x NVIDIA H800 per node, 8 RoCE NICs (one per GPU).
* **Cluster C** — 8x NVIDIA H200 per node, 8 CX7 NICs of 400 Gb/s each
  (one-to-one GPU-NIC mapping).

Peak FLOP/s figures are the published dense BF16 numbers for each part; they
only matter through the compute/communication *ratios* they induce, which is
what drives zone boundaries and speedups.
"""

from __future__ import annotations

from repro.cluster.bandwidth import BandwidthProfile, LinkModel, gBps, gbps
from repro.cluster.topology import GPU, NIC, Cluster, Node
from repro.utils.validation import check_positive

# Published dense BF16 peak throughput (FLOP/s).
_DEVICE_PEAK_FLOPS = {
    "A800": 312e12,
    "H800": 990e12,
    "H200": 990e12,
}

# HBM capacity per device (bytes).
_DEVICE_MEMORY = {
    "A800": 80e9,
    "H800": 80e9,
    "H200": 141e9,
}

# Default per-message latencies.
_INTRA_NODE_LATENCY_S = 3e-6
_INTER_NODE_LATENCY_S = 10e-6


def make_cluster(
    name: str,
    num_nodes: int,
    gpus_per_node: int = 8,
    device_type: str = "A800",
    nics_per_node: int = 4,
    nic_gbps: float = 200.0,
    intra_node_gBps: float = 400.0,
    description: str = "",
) -> Cluster:
    """Build a homogeneous cluster.

    Parameters
    ----------
    name:
        Cluster name used in experiment output.
    num_nodes:
        Number of nodes.
    gpus_per_node:
        GPUs per node (the paper's ``P``).
    device_type:
        One of ``"A800"``, ``"H800"``, ``"H200"``.
    nics_per_node:
        NICs installed in each node.  GPUs are assigned to NICs contiguously,
        so ``gpus_per_node // nics_per_node`` GPUs share one NIC.
    nic_gbps:
        Per-NIC bandwidth in Gb/s.
    intra_node_gBps:
        NVSwitch bandwidth in GB/s.
    """
    check_positive("num_nodes", num_nodes)
    check_positive("gpus_per_node", gpus_per_node)
    check_positive("nics_per_node", nics_per_node)
    if device_type not in _DEVICE_PEAK_FLOPS:
        raise ValueError(
            f"unknown device type {device_type!r}; expected one of "
            f"{sorted(_DEVICE_PEAK_FLOPS)}"
        )
    if gpus_per_node % nics_per_node != 0:
        raise ValueError("gpus_per_node must be divisible by nics_per_node")

    gpus_per_nic = gpus_per_node // nics_per_node
    intra_link = LinkModel(
        bandwidth_bytes_per_s=gBps(intra_node_gBps), latency_s=_INTRA_NODE_LATENCY_S
    )
    nic_link = LinkModel(
        bandwidth_bytes_per_s=gbps(nic_gbps), latency_s=_INTER_NODE_LATENCY_S
    )
    profile = BandwidthProfile(
        intra_node=intra_link,
        nic=nic_link,
        nics_per_node=nics_per_node,
        gpus_per_nic=gpus_per_nic,
    )

    peak = _DEVICE_PEAK_FLOPS[device_type]
    memory = _DEVICE_MEMORY[device_type]

    nodes = []
    nic_counter = 0
    for node_id in range(num_nodes):
        gpus = []
        nics = []
        for nic_local in range(nics_per_node):
            local_ranks = tuple(
                nic_local * gpus_per_nic + i for i in range(gpus_per_nic)
            )
            nics.append(
                NIC(
                    nic_id=nic_counter,
                    node_id=node_id,
                    local_index=nic_local,
                    link=nic_link,
                    gpu_local_ranks=local_ranks,
                )
            )
            nic_counter += 1
        for local_rank in range(gpus_per_node):
            nic_local = local_rank // gpus_per_nic
            gpus.append(
                GPU(
                    global_rank=node_id * gpus_per_node + local_rank,
                    node_id=node_id,
                    local_rank=local_rank,
                    nic_id=nics[nic_local].nic_id,
                    device_type=device_type,
                    peak_flops=peak,
                    memory_bytes=memory,
                )
            )
        nodes.append(
            Node(
                node_id=node_id,
                gpus=tuple(gpus),
                nics=tuple(nics),
                intra_node_link=intra_link,
            )
        )

    return Cluster(
        name=name, nodes=tuple(nodes), profile=profile, description=description
    )


def cluster_a(num_nodes: int = 2) -> Cluster:
    """Cluster A: 8x A800-80G, NVSwitch 400 GB/s, 4x 200 Gb/s RoCE NICs per node."""
    return make_cluster(
        name="ClusterA",
        num_nodes=num_nodes,
        gpus_per_node=8,
        device_type="A800",
        nics_per_node=4,
        nic_gbps=200.0,
        intra_node_gBps=400.0,
        description="A800 nodes, 2 GPUs share each 200 Gb/s NIC",
    )


def cluster_b(num_nodes: int = 2) -> Cluster:
    """Cluster B: 8x H800, 8 RoCE NICs per node (one per GPU)."""
    return make_cluster(
        name="ClusterB",
        num_nodes=num_nodes,
        gpus_per_node=8,
        device_type="H800",
        nics_per_node=8,
        nic_gbps=200.0,
        intra_node_gBps=400.0,
        description="H800 nodes, one 200 Gb/s NIC per GPU",
    )


def cluster_c(num_nodes: int = 2) -> Cluster:
    """Cluster C: 8x H200, 8x 400 Gb/s CX7 NICs per node (one per GPU)."""
    return make_cluster(
        name="ClusterC",
        num_nodes=num_nodes,
        gpus_per_node=8,
        device_type="H200",
        nics_per_node=8,
        nic_gbps=400.0,
        intra_node_gBps=900.0,
        description="H200 nodes, one 400 Gb/s CX7 NIC per GPU",
    )


CLUSTER_PRESETS = {
    "A": cluster_a,
    "B": cluster_b,
    "C": cluster_c,
}
