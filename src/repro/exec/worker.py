"""The shared sweep worker: one :class:`SweepPoint` in, one result out.

Every backend funnels through :func:`execute_payload`, a module-level,
picklable function so process pools can ship it to child workers.  The worker
resolves each point's session through a :class:`SessionPool`, which builds one
:class:`~repro.api.Session` per distinct configuration (cluster, model,
dataset...) and reuses it — so all points sharing a configuration also share
its sampled batches and per-(strategy, batch, phase) plan cache, exactly like
repeated :meth:`Session.compare` calls do.  Because the engine's
:class:`~repro.sim.compile.CompiledPlan` is cached on each plan object, that
sharing also amortises plan compilation: only the first point simulating a
given (strategy, batch, phase) pays the compile, every other point goes
straight to the hot loop.  Simulation itself is batched too: a point's
measurement funnels through :mod:`repro.sim.batch`, so the iterations of
plans sharing a structure within the pool execute as lanes of one
lane-parallel event loop instead of N sequential ones.
"""

from __future__ import annotations

import contextlib
from typing import Any, Mapping

from repro.api import Session, SessionConfig
from repro.exec.spec import SweepPoint
from repro.obs.core import TELEMETRY_OFF, Telemetry, telemetry_scope
from repro.results import ResilienceResult, RunResult


class SessionPool:
    """Build-once, reuse-everywhere store of sessions keyed by configuration.

    With a ``root`` session the pool resolves configurations through
    :meth:`Session.derive`, so sweeps launched from a session share its
    existing batch/plan caches.  Without one (the per-process default pool)
    it keeps its own family of sessions.
    """

    def __init__(self, root: Session | None = None):
        self._root = root
        self._sessions: dict[tuple[Any, ...], Session] = {}

    def get(self, config: SessionConfig) -> Session:
        if self._root is not None:
            return self._root.derive(**config.to_dict())
        key = config.cache_key()
        session = self._sessions.get(key)
        if session is None:
            session = Session(config)
            self._sessions[key] = session
        return session

    def __len__(self) -> int:
        return len(self._sessions)


# Default pool of the process; child workers of the process backend each grow
# their own copy, giving per-worker session and plan reuse across points.
_DEFAULT_POOL = SessionPool()


def execute_point(
    point: SweepPoint,
    pool: SessionPool | None = None,
    telemetry: Telemetry = TELEMETRY_OFF,
) -> RunResult | ResilienceResult:
    """Execute one sweep point and return its structured result.

    ``telemetry`` is observational only: it times the strategy execution
    (an ``execute`` span, nested under the driver's ``sweep/point`` span
    when one is open) and counts executed points, without touching the
    result.  While the point runs, an enabled hub is also installed as the
    ambient default so the batched simulation kernel's ``batch_simulate``
    events (:mod:`repro.sim.batch` — the point's iterations simulate as
    lanes over shared plan structures within this pool) land on the same
    stream.
    """
    pool = pool if pool is not None else _DEFAULT_POOL
    session = pool.get(SessionConfig(**point.session_fields()))
    strategy = point.get("strategy")
    if strategy is None:
        raise ValueError(f"sweep point has no 'strategy' field: {point!r}")
    kwargs = dict(point.get("strategy_kwargs") or {})
    telemetry.counter("points_executed")
    scope = (
        telemetry_scope(telemetry) if telemetry.enabled else contextlib.nullcontext()
    )
    with scope, telemetry.span("execute", strategy=strategy):
        return session.run(
            strategy,
            label=point.get("label"),
            perturbation=point.get("perturbation"),
            recovery=point.get("recovery", "checkpoint_restart"),
            num_iterations=point.get("num_iterations", 32),
            **kwargs,
        )


def execute_payload(
    payload: Mapping[str, Any],
    pool: SessionPool | None = None,
    telemetry: Telemetry = TELEMETRY_OFF,
) -> dict[str, Any]:
    """Picklable worker entry point: point dict in, result dict out.

    Both serial and process backends go through this function, so every
    result crosses the same ``to_dict()`` boundary regardless of backend —
    a serial and a process run of the same grid produce identical
    :class:`~repro.exec.result.SweepResult`\\ s.
    """
    return execute_point(
        SweepPoint(dict(payload)), pool=pool, telemetry=telemetry
    ).to_dict()
