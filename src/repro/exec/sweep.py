"""The sweep driver: expand a spec, consult the cache, fan out, collect.

:func:`run_sweep` is the single execution path behind
:meth:`Session.compare`, :meth:`Session.sweep`, the experiment modules and
the ``repro sweep`` CLI subcommand.  It expands the grid, short-circuits
cached points, hands the misses to the selected backend and reassembles
everything — cached and fresh — into a :class:`SweepResult` in expansion
order, with cache/backend/timing observability in ``meta``.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Mapping

from repro.exec import worker as _worker
from repro.exec.backends import ExecutionBackend
from repro.exec.cache import ResultCache, as_cache, point_key
from repro.exec.result import SweepResult
from repro.exec.spec import SweepSpec
from repro.exec.worker import SessionPool
from repro.registry import get_backend
from repro.results import result_from_dict


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    jobs: int = 1,
    options: "Mapping[str, Any] | None" = None,
) -> ExecutionBackend:
    """Backend instance from a name, an instance, or ``None``.

    ``None`` selects ``serial`` for one job and ``process`` for several, so
    ``--jobs 4`` alone is enough to parallelise.  ``options`` are extra
    constructor keywords for backends resolved by name (the ``cluster``
    backend's ``batch_system``/``batch_options``/``workdir``...); passing
    them alongside an already-built instance is a usage error.
    """
    if isinstance(backend, ExecutionBackend):
        if options:
            raise ValueError(
                "backend options were given alongside an already-constructed "
                f"backend instance ({backend.name!r}); pass them to its "
                "constructor instead"
            )
        return backend
    if backend is None:
        backend = "process" if jobs > 1 else "serial"
    return get_backend(backend).obj(jobs=jobs, **dict(options or {}))


def run_sweep(
    spec: SweepSpec,
    *,
    backend: "str | ExecutionBackend | None" = None,
    jobs: int = 1,
    cache: "bool | str | Path | ResultCache | None" = False,
    pool: SessionPool | None = None,
    backend_options: "Mapping[str, Any] | None" = None,
) -> SweepResult:
    """Execute every point of ``spec`` and collect a :class:`SweepResult`.

    Parameters
    ----------
    spec:
        The declarative grid to expand.
    backend:
        Backend name or instance; ``None`` picks ``serial``/``process`` by
        ``jobs``.
    jobs:
        Worker count for backends that parallelise.
    cache:
        ``False`` (default) disables caching; ``True`` uses the default
        ``.repro_cache`` directory (or ``$REPRO_CACHE_DIR``); a path or
        :class:`ResultCache` selects an explicit store.
    pool:
        Optional :class:`SessionPool` for in-process execution — sweeps
        launched from a :class:`Session` pass a pool rooted there so its
        batch/plan caches are reused.  Process workers always use their own
        per-process pool.
    backend_options:
        Extra constructor keywords for a backend resolved by name, e.g.
        ``run_sweep(spec, backend="cluster", jobs=50,
        backend_options={"batch_system": "slurm", "workdir": "/nfs/sweep"})``.
    """
    start = time.perf_counter()
    points = spec.points()
    backend_obj = resolve_backend(backend, jobs=jobs, options=backend_options)
    cache_obj = as_cache(cache)

    result_dicts: list[dict[str, Any] | None] = [None] * len(points)
    hits = 0
    keys: list[str | None] = [None] * len(points)
    if cache_obj is not None:
        for i, point in enumerate(points):
            keys[i] = point_key(point)
            cached = cache_obj.get(keys[i])
            if cached is not None:
                result_dicts[i] = cached
                hits += 1

    pending = [i for i in range(len(points)) if result_dicts[i] is None]
    if pending:
        payloads = [points[i].to_dict() for i in pending]
        executed = backend_obj.map(
            payloads, lambda payload: _worker.execute_payload(payload, pool=pool)
        )
        for i, result in zip(pending, executed):
            result_dicts[i] = result
            if cache_obj is not None and keys[i] is not None:
                cache_obj.put(keys[i], points[i].to_dict(), result)

    results = tuple(result_from_dict(d) for d in result_dicts)
    meta = {
        "backend": backend_obj.name,
        "jobs": backend_obj.jobs,
        "num_points": len(points),
        "cache_enabled": cache_obj is not None,
        "cache_hits": hits,
        "cache_misses": len(pending),
        "executed_points": len(pending),
        "wall_time_s": round(time.perf_counter() - start, 6),
    }
    # Backend-specific observability (e.g. the cluster backend's per-round
    # job/timing/cache stats) rides along; driver keys take precedence.
    for key, value in backend_obj.observability().items():
        meta.setdefault(key, value)
    return SweepResult(points=points, results=results, meta=meta)
