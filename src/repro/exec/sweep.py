"""The sweep driver: expand a spec, consult the cache, fan out, collect.

:func:`run_sweep` is the single execution path behind
:meth:`Session.compare`, :meth:`Session.sweep`, the experiment modules and
the ``repro sweep`` CLI subcommand.  It expands the grid, short-circuits
cached points, hands the misses to the selected backend and reassembles
everything — cached and fresh — into a :class:`SweepResult` in expansion
order, with cache/backend observability in ``meta``.  Before fan-out the
driver also collapses points whose execution identity (canonical JSON, tags
excluded) is the same — tagged replicas of one configuration execute once
and share the result, with the collapsed count reported as
``meta["deduped"]``.

Wall-clock observability is kept apart from everything else: every
wall-time measurement lands under the ``meta["timing"]`` subtree (and only
there), so identity-sensitive consumers can drop one key to get
deterministic, byte-comparable sweep JSON.  Timing is measured through
:mod:`repro.obs` spans; with a telemetry hub attached (``telemetry=``, or
the ambient hub installed by the CLI's ``--telemetry``), the driver also
emits sweep/point lifecycle and cache hit/miss events.
"""

from __future__ import annotations

import itertools
from pathlib import Path
from typing import Any, Mapping

from repro.exec import worker as _worker
from repro.exec.backends import ExecutionBackend
from repro.exec.cache import ResultCache, as_cache, point_key
from repro.exec.result import SweepResult
from repro.exec.spec import SweepSpec
from repro.exec.worker import SessionPool
from repro.obs.core import TELEMETRY_OFF, Telemetry, as_telemetry
from repro.registry import get_backend
from repro.results import result_from_dict


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    jobs: int = 1,
    options: "Mapping[str, Any] | None" = None,
) -> ExecutionBackend:
    """Backend instance from a name, an instance, or ``None``.

    ``None`` selects ``serial`` for one job and ``process`` for several, so
    ``--jobs 4`` alone is enough to parallelise.  ``options`` are extra
    constructor keywords for backends resolved by name (the ``cluster``
    backend's ``batch_system``/``batch_options``/``workdir``...); passing
    them alongside an already-built instance is a usage error.
    """
    if isinstance(backend, ExecutionBackend):
        if options:
            raise ValueError(
                "backend options were given alongside an already-constructed "
                f"backend instance ({backend.name!r}); pass them to its "
                "constructor instead"
            )
        return backend
    if backend is None:
        backend = "process" if jobs > 1 else "serial"
    return get_backend(backend).obj(jobs=jobs, **dict(options or {}))


def run_sweep(
    spec: SweepSpec,
    *,
    backend: "str | ExecutionBackend | None" = None,
    jobs: int = 1,
    cache: "bool | str | Path | ResultCache | None" = False,
    pool: SessionPool | None = None,
    backend_options: "Mapping[str, Any] | None" = None,
    telemetry: "Telemetry | str | Path | None" = None,
    dedup: bool = True,
) -> SweepResult:
    """Execute every point of ``spec`` and collect a :class:`SweepResult`.

    Parameters
    ----------
    spec:
        The declarative grid to expand.
    backend:
        Backend name or instance; ``None`` picks ``serial``/``process`` by
        ``jobs``.
    jobs:
        Worker count for backends that parallelise.
    cache:
        ``False`` (default) disables caching; ``True`` uses the default
        ``.repro_cache`` directory (or ``$REPRO_CACHE_DIR``); a path or
        :class:`ResultCache` selects an explicit store.
    pool:
        Optional :class:`SessionPool` for in-process execution — sweeps
        launched from a :class:`Session` pass a pool rooted there so its
        batch/plan caches are reused.  Process workers always use their own
        per-process pool.
    backend_options:
        Extra constructor keywords for a backend resolved by name, e.g.
        ``run_sweep(spec, backend="cluster", jobs=50,
        backend_options={"batch_system": "slurm", "workdir": "/nfs/sweep"})``.
    telemetry:
        A :class:`~repro.obs.Telemetry` hub, a JSONL path, or ``None`` (the
        ambient hub — off unless installed).  Purely observational: results
        are byte-identical with telemetry on or off.
    dedup:
        Collapse points with identical execution identity before fan-out
        (default).  ``False`` ships every uncached point to a worker —
        useful when the fan-out itself is the point, e.g. load-testing a
        backend.  Results are identical either way.
    """
    tele = as_telemetry(telemetry)
    # Wall time is always measured through an obs span; stopwatch() hands
    # back a measuring hub even when telemetry is off, so meta["timing"]
    # stays populated.
    stopwatch = tele.stopwatch()
    points = spec.points()
    backend_obj = resolve_backend(backend, jobs=jobs, options=backend_options)
    backend_obj.telemetry = tele
    cache_obj = as_cache(cache)
    tele.event(
        "sweep_start", backend=backend_obj.name, num_points=len(points)
    )

    with stopwatch.span("sweep", backend=backend_obj.name) as sweep_span:
        result_dicts: list[dict[str, Any] | None] = [None] * len(points)
        hits = 0
        keys: list[str | None] = [None] * len(points)
        if cache_obj is not None:
            for i, point in enumerate(points):
                keys[i] = point_key(point)
                cached = cache_obj.get(keys[i])
                if cached is not None:
                    result_dicts[i] = cached
                    hits += 1
                    tele.event("cache_hit", scope="sweep", index=i)
                else:
                    tele.event("cache_miss", scope="sweep", index=i)
            tele.counter("sweep_cache_hits", hits)
            tele.counter("sweep_cache_misses", len(points) - hits)

        pending = [i for i in range(len(points)) if result_dicts[i] is None]
        unique: list[int] = []
        duplicate_of: dict[int, int] = {}
        if pending:
            # Driver-side dedup: points with identical execution identity
            # (canonical JSON — tags excluded) collapse to one payload
            # before fan-out, so tagged replicas never ship to a worker
            # just to resolve via the shared cache.
            if dedup:
                first_by_identity: dict[str, int] = {}
                for i in pending:
                    identity = points[i].canonical_json()
                    first = first_by_identity.get(identity)
                    if first is None:
                        first_by_identity[identity] = i
                        unique.append(i)
                    else:
                        duplicate_of[i] = first
            else:
                unique = list(pending)
            payloads = [points[i].to_dict() for i in unique]
            if tele.enabled:
                # Per-point lifecycle for backends that execute in-process
                # (serial; process/cluster backends run the module-level
                # worker in children and are observed at round/job level).
                position = itertools.count()

                def run_one(payload: Mapping[str, Any]) -> dict[str, Any]:
                    index = unique[next(position)]
                    tele.event("point_start", index=index)
                    with stopwatch.span("point") as span:
                        result = _worker.execute_payload(
                            payload, pool=pool, telemetry=tele
                        )
                    tele.event(
                        "point_finish", index=index, dur_s=round(span.elapsed_s, 6)
                    )
                    return result
            else:

                def run_one(payload: Mapping[str, Any]) -> dict[str, Any]:
                    return _worker.execute_payload(payload, pool=pool)

            executed = backend_obj.map(payloads, run_one)
            for i, result in zip(unique, executed):
                result_dicts[i] = result
                if cache_obj is not None and keys[i] is not None:
                    cache_obj.put(keys[i], points[i].to_dict(), result)
            # Fan the executed results back out to the collapsed replicas.
            for i, first in duplicate_of.items():
                result_dicts[i] = result_dicts[first]

        results = tuple(result_from_dict(d) for d in result_dicts)

    timing: dict[str, Any] = {"wall_time_s": round(sweep_span.elapsed_s, 6)}
    meta = {
        "backend": backend_obj.name,
        "jobs": backend_obj.jobs,
        "num_points": len(points),
        "cache_enabled": cache_obj is not None,
        "cache_hits": hits,
        "cache_misses": len(pending),
        "executed_points": len(unique),
        "deduped": len(duplicate_of),
        "timing": timing,
    }
    # Backend-specific observability (e.g. the cluster backend's per-round
    # job/cache stats) rides along; driver keys take precedence, and a
    # backend's own wall-clock measurements merge into the timing subtree.
    for key, value in backend_obj.observability().items():
        if key == "timing":
            for timing_key, timing_value in value.items():
                timing.setdefault(timing_key, timing_value)
        else:
            meta.setdefault(key, value)
    tele.event(
        "sweep_finish",
        backend=backend_obj.name,
        num_points=len(points),
        executed=len(unique),
        dur_s=timing["wall_time_s"],
    )
    backend_obj.telemetry = TELEMETRY_OFF
    return SweepResult(points=points, results=results, meta=meta)
