"""Content-hash result cache for sweep points.

Each cached entry is one simulated point, keyed by the SHA-256 of the point's
canonical JSON (:meth:`SweepPoint.canonical_json` — execution-relevant fields
only, sorted keys) salted with a code-version string, and stored as a small
JSON file under ``.repro_cache/``.  Re-running a sweep with one axis changed
therefore touches only the new points; bumping ``repro.__version__`` or
:data:`CACHE_SCHEMA_VERSION` invalidates every entry at once.

The default cache directory is ``.repro_cache`` in the working directory,
overridable with the ``REPRO_CACHE_DIR`` environment variable or an explicit
path.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any

# DEFAULT_CACHE_DIR is re-exported for back-compat; the value lives with the
# env knob it pairs with (REPRO_CACHE_DIR) in repro.config.
from repro.config import DEFAULT_CACHE_DIR as DEFAULT_CACHE_DIR
from repro.exec.spec import SweepPoint

# Bump when the result schema or simulation semantics change in a way the
# package version does not capture (e.g. during development).
CACHE_SCHEMA_VERSION = 1


def cache_salt() -> str:
    """Code-version salt mixed into every cache key.

    Includes the resolved default remapping solver: ``REPRO_REMAP_SOLVER``
    can change simulated placements, so flipping it must never surface a
    result cached under the other solver.
    """
    import repro
    from repro.config import remap_solver

    return f"{repro.__version__}/{CACHE_SCHEMA_VERSION}/remap={remap_solver()}"


def point_key(point: SweepPoint, salt: str | None = None) -> str:
    """Content hash identifying a point's simulation outcome."""
    salt = cache_salt() if salt is None else salt
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\n")
    digest.update(point.canonical_json().encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """File-per-entry result cache under a root directory."""

    def __init__(self, root: str | Path | None = None):
        if root is None:
            from repro.config import cache_dir

            root = cache_dir()
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """The cached result dict for ``key``, or ``None`` on a miss.

        Unreadable, corrupt or structurally-wrong entries count as misses
        (and will be overwritten by the next :meth:`put`) — with many nodes
        sharing one cache directory over a network mount, a racing or
        interrupted writer must only ever cost a re-simulation, never a
        wrong result.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
            result = entry["result"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        if not isinstance(result, dict):
            return None
        return result

    def put(self, key: str, point: dict[str, Any], result: dict[str, Any]) -> None:
        """Store one point's result; racing writers are safe.

        The entry is written to a uniquely-named temporary file (pid alone
        is not unique once many nodes share the directory) and published
        with an atomic ``os.replace``, so readers see either the old entry,
        the new one, or nothing — never a partial write.  Concurrent writers
        of the same key overwrite each other with identical content.  The
        cache is best-effort: a failed write (full disk, revoked mount) is
        swallowed and simply stays a miss.
        """
        entry = {"salt": cache_salt(), "point": point, "result": result}
        path = self._path(key)
        tmp = self.root / f".{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with tmp.open("w", encoding="utf-8") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


def as_cache(cache: "bool | str | Path | ResultCache | None") -> ResultCache | None:
    """Normalise the ``cache=`` argument of the sweep driver."""
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
