"""Job and result files exchanged between the driver and batch workers.

A *job file* is a JSON document holding a chunk of ``execute_payload`` dicts;
a *result file* is the worker's answer, one result dict per payload plus
worker-side cache statistics.  Both live under the cluster backend's
``--workdir`` (a network mount every batch node can see) and both carry the
same schema/version salting as :mod:`repro.exec.cache`: a header with a
``schema`` number and the :func:`~repro.exec.cache.cache_salt` string.  A
driver therefore refuses to consume job or result files produced by a
different code version, exactly as the point cache refuses stale entries.

Writes are atomic (write-to-temp + ``os.replace``), so a result file either
does not exist yet or is complete — pollers never observe half-written JSON
over the mount.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.exec.cache import cache_salt

# Bump when the job/result file layout changes incompatibly.
JOBFILE_SCHEMA_VERSION = 1

_JOB_KIND = "repro-cluster-job"
_RESULT_KIND = "repro-cluster-result"


class JobFileError(ValueError):
    """A job or result file is malformed or from an incompatible version."""


def write_json_atomic(path: "str | Path", payload: Mapping[str, Any]) -> Path:
    """Write ``payload`` as JSON so readers only ever see a complete file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp"
    try:
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # only on failure; os.replace consumed it otherwise
            tmp.unlink(missing_ok=True)
    return path


def _header(kind: str) -> dict[str, Any]:
    return {"kind": kind, "schema": JOBFILE_SCHEMA_VERSION, "salt": cache_salt()}


def _check_header(doc: Any, kind: str, path: Path) -> None:
    if not isinstance(doc, Mapping) or doc.get("kind") != kind:
        raise JobFileError(f"{path} is not a {kind} file")
    if doc.get("schema") != JOBFILE_SCHEMA_VERSION:
        raise JobFileError(
            f"{path} has schema {doc.get('schema')!r}, "
            f"this code expects {JOBFILE_SCHEMA_VERSION}"
        )
    if doc.get("salt") != cache_salt():
        raise JobFileError(
            f"{path} was written by code version {doc.get('salt')!r}, "
            f"this is {cache_salt()!r} — regenerate the job"
        )


def write_jobfile(
    path: "str | Path",
    payloads: Sequence[Mapping[str, Any]],
    *,
    cache_dir: "str | Path | None" = None,
) -> Path:
    """Serialise one job's payload chunk (plus the shared point-cache dir)."""
    doc = {
        **_header(_JOB_KIND),
        "cache_dir": None if cache_dir is None else str(cache_dir),
        "payloads": [dict(p) for p in payloads],
    }
    return write_json_atomic(path, doc)


def read_jobfile(path: "str | Path") -> dict[str, Any]:
    """Load and validate a job file; raises :class:`JobFileError` if unusable."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise JobFileError(f"cannot read job file {path}: {exc}") from exc
    _check_header(doc, _JOB_KIND, path)
    payloads = doc.get("payloads")
    if not isinstance(payloads, list) or not all(
        isinstance(p, Mapping) for p in payloads
    ):
        raise JobFileError(f"{path} has no payload list")
    return {"cache_dir": doc.get("cache_dir"), "payloads": payloads}


def result_path_for(jobfile: "str | Path") -> Path:
    """Where the worker writes its results for ``jobfile``."""
    jobfile = Path(jobfile)
    return jobfile.with_name(jobfile.name.replace(".json", "") + ".result.json")


def write_results(
    path: "str | Path",
    results: Sequence[Mapping[str, Any]],
    stats: Mapping[str, Any] | None = None,
) -> Path:
    """Serialise one job's result dicts (atomically — see module docstring)."""
    doc = {
        **_header(_RESULT_KIND),
        "results": [dict(r) for r in results],
        "stats": dict(stats or {}),
    }
    return write_json_atomic(path, doc)


def read_results(
    path: "str | Path", expected: int | None = None
) -> "dict[str, Any] | None":
    """The result document at ``path``, or ``None`` if not (yet) usable.

    Unlike :func:`read_jobfile`, an unreadable or truncated result file is
    *not* an error: polling treats it as "not finished" and the job is
    eventually timed out and resubmitted.  A version/schema mismatch still
    raises — results from foreign code versions must never be consumed.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    _check_header(doc, _RESULT_KIND, path)
    results = doc.get("results")
    if not isinstance(results, list) or not all(
        isinstance(r, Mapping) for r in results
    ):
        return None
    if expected is not None and len(results) != expected:
        return None
    stats = doc.get("stats")
    return {
        "results": results,
        "stats": dict(stats) if isinstance(stats, Mapping) else {},
    }
