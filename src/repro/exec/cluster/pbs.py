"""PBS/Torque batch-system submitter: ``qsub`` / ``qstat`` / ``qdel``.

Drives a PBS-family scheduler the same way :mod:`.submitters` drives slurm
and sge: the worker command is submitted directly (PBS Pro's
``qsub [options] -- executable args`` form, no job-script file), stdout and
stderr are joined into the job's log file (``-j oe``), and the job id
printed by ``qsub`` (e.g. ``1234.pbsserver``) is the polling handle.
Site-specific needs — queues, resource selections — pass through verbatim
via ``--batch-options`` (e.g. ``--batch-options="-q long -l mem=16gb"``).

Lives in its own module (rather than ``submitters.py``) deliberately: it is
the live demonstration that registry rule R001 holds for a newly added
module — ``pbs`` appears in ``_BUILTIN_SUBMITTER_MODULES`` pointing here,
and ``repro analyze`` fails the build if that pairing ever drifts.
"""

from __future__ import annotations

import subprocess
from typing import Any

from repro.exec.cluster.submitters import ClusterJob, Submitter
from repro.registry import register_submitter


@register_submitter(
    "pbs", description="submit worker jobs with qsub (PBS/Torque, -- direct mode)"
)
class PbsSubmitter(Submitter):
    """Drive PBS/Torque via ``qsub --`` / ``qstat`` / ``qdel``.

    Stdout/stderr are joined into the job's log file here (``-j oe -o``);
    do not pass ``-o``/``-e``/``-j`` through ``--batch-options``.
    """

    name = "pbs"

    def submit(self, job: ClusterJob) -> str:
        argv = [
            "qsub",
            "-N", job.name,
            "-j", "oe",
            "-o", str(job.log_path),
        ]
        if self.workdir is not None:
            argv += ["-d", str(self.workdir)]
        argv += self._extra_options()
        argv += ["--", *job.command()]
        # qsub prints the job id ("1234.server") on the last stdout line.
        out = self._run(argv).strip().splitlines()
        return out[-1].strip()

    def is_running(self, handle: Any) -> bool:
        # qstat exits non-zero once the job has left the queue (finished
        # jobs need -x to be visible at all), so success means alive.
        try:
            self._run(["qstat", str(handle)])
        except (subprocess.CalledProcessError, OSError):
            return False
        return True

    def cancel(self, handle: Any) -> None:
        try:
            self._run(["qdel", str(handle)])
        except (subprocess.CalledProcessError, OSError):
            pass
