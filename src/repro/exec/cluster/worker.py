"""The batch-node worker: ``python -m repro.exec.cluster.worker JOBFILE``.

A batch node needs nothing but the installed ``repro`` package and the
network workdir: the worker reads one job file, executes its payloads
through the same :func:`~repro.exec.worker.execute_payload` entry every
other backend uses (one :class:`~repro.exec.worker.SessionPool` per worker,
so payloads sharing a configuration share batches and compiled plans), and
atomically writes one result file next to the job file.

Each payload is first looked up in the shared point cache the job file
names (the ``$REPRO_CACHE_DIR`` network mount) and every fresh result is
written back to it, point by point.  That per-point write discipline is
what makes resubmission and the backend's shrinking rounds cheap: a job
killed halfway leaves its finished points in the cache, so whichever job
covers those payloads next gets them as hits and only computes the tail.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.exec.cache import ResultCache, point_key
from repro.exec.cluster.jobfile import read_jobfile, result_path_for, write_results
from repro.exec.spec import SweepPoint
from repro.exec.worker import SessionPool, execute_payload


def run_jobfile(jobfile: str, out: "str | None" = None) -> dict[str, Any]:
    """Execute one job file and write its result file; returns the stats."""
    job = read_jobfile(jobfile)
    out_path = result_path_for(jobfile) if out is None else out
    cache = None if job["cache_dir"] is None else ResultCache(job["cache_dir"])
    pool = SessionPool()
    results: list[dict[str, Any]] = []
    executed = 0
    cache_hits = 0
    for payload in job["payloads"]:
        key = None
        if cache is not None:
            key = point_key(SweepPoint(dict(payload)))
            cached = cache.get(key)
            if cached is not None:
                results.append(cached)
                cache_hits += 1
                continue
        result = execute_payload(payload, pool=pool)
        executed += 1
        if cache is not None and key is not None:
            cache.put(key, dict(payload), result)
        results.append(result)
    stats = {
        "payloads": len(results),
        "executed": executed,
        "cache_hits": cache_hits,
    }
    write_results(out_path, results, stats)
    return stats


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.exec.cluster.worker",
        description="execute one repro cluster job file on a batch node",
    )
    parser.add_argument("jobfile", help="job file written by the cluster backend")
    parser.add_argument(
        "--out",
        default=None,
        help="result file path (default: JOBFILE with a .result.json suffix)",
    )
    args = parser.parse_args(argv)
    stats = run_jobfile(args.jobfile, args.out)
    print(
        f"{args.jobfile}: {stats['payloads']} payloads, "
        f"{stats['executed']} executed, {stats['cache_hits']} cache hits"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
