"""The ``cluster`` execution backend: partis-style rounds over a batch system.

``map()`` splits the payloads over ``jobs`` workers, serialises each chunk
to a job file under the (network) workdir, submits the lot through the
selected :mod:`submitter <repro.exec.cluster.submitters>`, and collects the
partial results.  Payloads whose jobs failed past their resubmission budget
carry over to the next round, re-split over ~1.6x fewer, larger jobs —
partis's hierarchical merge discipline.  Because every worker writes each
finished point into the shared point cache (``$REPRO_CACHE_DIR``, pointed
at the mount), the payloads a later round re-covers are cache hits: later,
larger rounds are no slower than early ones.

Per-round observability (job counts, resubmissions, worker execute/hit
counts, wall time) lands in :attr:`SweepResult.meta <repro.exec.result.SweepResult.meta>`
via :meth:`ClusterBackend.observability`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Sequence

from repro.exec.backends import ExecutionBackend, Payload, Worker
from repro.exec.cache import DEFAULT_CACHE_DIR
from repro.exec.cluster.jobfile import result_path_for, write_jobfile
from repro.exec.cluster.submitters import ClusterJob, Submitter, run_jobs
from repro.registry import get_submitter, register_backend

# Worker count divisor between consecutive rounds (partis reduces ~1.6x).
SHRINK_FACTOR = 1.6


def _chunks(indices: Sequence[int], jobs: int) -> list[tuple[int, ...]]:
    """Split ``indices`` into at most ``jobs`` contiguous, near-equal chunks."""
    jobs = min(jobs, len(indices))
    size, remainder = divmod(len(indices), jobs)
    out = []
    start = 0
    for j in range(jobs):
        width = size + (1 if j < remainder else 0)
        out.append(tuple(indices[start : start + width]))
        start += width
    return out


@register_backend(
    "cluster",
    description="batch-system fan-out (slurm/sge/fake) over a shared workdir",
)
class ClusterBackend(ExecutionBackend):
    """Fan payloads out over a batch system in shrinking rounds.

    Parameters
    ----------
    jobs:
        Workers in the first round (later rounds shrink by
        :data:`SHRINK_FACTOR`).
    batch_system:
        Submitter registry name: ``slurm``, ``sge``, or ``fake`` (local
        subprocesses, the CI/single-host default).
    batch_options:
        Extra scheduler options passed through verbatim, e.g.
        ``"--partition=long --mem=16G"``.
    workdir:
        Directory for job/result/log files.  With a real batch system this
        must be a network mount every node can see; default is a fresh local
        temporary directory (fine for ``fake``), removed again on success.
    cache_dir:
        Shared point cache for the workers; defaults to ``$REPRO_CACHE_DIR``
        or, if unset, a ``point_cache/`` directory inside the workdir.
    timeout_s / poll_interval_s / max_resubmits:
        Per-job timeout, result-poll cadence, and in-round resubmission
        budget (see :func:`~repro.exec.cluster.submitters.run_jobs`).
    submitter:
        An explicit :class:`Submitter` instance, overriding ``batch_system``
        (used by tests; normal callers select by name).
    """

    name = "cluster"

    def __init__(
        self,
        jobs: int = 1,
        *,
        batch_system: str = "fake",
        batch_options: str = "",
        workdir: "str | Path | None" = None,
        cache_dir: "str | Path | None" = None,
        timeout_s: float | None = None,
        poll_interval_s: float = 0.1,
        max_resubmits: int = 1,
        submitter: "Submitter | None" = None,
    ):
        super().__init__(jobs=jobs)
        self.batch_system = submitter.name if submitter is not None else batch_system
        self.batch_options = batch_options
        self.workdir = None if workdir is None else Path(workdir)
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.timeout_s = timeout_s
        self.poll_interval_s = poll_interval_s
        self.max_resubmits = max_resubmits
        self._submitter = submitter
        self._last_run: dict[str, Any] = {}

    def _make_submitter(self, workdir: Path) -> Submitter:
        if self._submitter is not None:
            return self._submitter
        cls = get_submitter(self.batch_system).obj
        return cls(batch_options=self.batch_options, workdir=workdir)

    def map(self, payloads: Sequence[Payload], worker: Worker) -> list[dict]:
        if not payloads:
            self._last_run = {}
            return []
        auto_workdir = self.workdir is None
        workdir = (
            Path(tempfile.mkdtemp(prefix="repro-cluster-"))
            if auto_workdir
            else self.workdir
        )
        workdir.mkdir(parents=True, exist_ok=True)
        cache_dir = self.cache_dir
        if cache_dir is None:
            env_dir = os.environ.get("REPRO_CACHE_DIR")
            cache_dir = (
                Path(env_dir) if env_dir else workdir / "point_cache"
            )
        submitter = self._make_submitter(workdir)

        results: list[dict | None] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        num_jobs = min(self.jobs, len(payloads))
        rounds: list[dict[str, Any]] = []
        total_resubmissions = 0
        round_index = 0

        while pending:
            round_index += 1
            round_start = time.perf_counter()
            jobs = []
            for j, chunk in enumerate(_chunks(pending, num_jobs)):
                jobfile = workdir / f"r{round_index:02d}_j{j:03d}.json"
                write_jobfile(
                    jobfile,
                    [payloads[i] for i in chunk],
                    cache_dir=cache_dir,
                )
                # A reused workdir may hold a result file from an earlier
                # sweep; completion is defined by its presence, so clear it.
                result_path_for(jobfile).unlink(missing_ok=True)
                jobs.append(
                    ClusterJob(
                        name=f"repro-r{round_index:02d}-j{j:03d}",
                        jobfile=jobfile,
                        result_file=result_path_for(jobfile),
                        log_path=jobfile.with_suffix(".log"),
                        num_payloads=len(chunk),
                        payload_indices=chunk,
                    )
                )
            outcome = run_jobs(
                submitter,
                jobs,
                timeout_s=self.timeout_s,
                poll_interval_s=self.poll_interval_s,
                max_resubmits=self.max_resubmits,
            )
            executed = 0
            cache_hits = 0
            done: set[int] = set()
            for job in outcome["completed"]:
                for index, result in zip(job.payload_indices, job.result["results"]):
                    results[index] = result
                    done.add(index)
                stats = job.result["stats"]
                executed += int(stats.get("executed", 0))
                cache_hits += int(stats.get("cache_hits", 0))
            total_resubmissions += outcome["resubmissions"]
            rounds.append(
                {
                    "round": round_index,
                    "jobs": len(jobs),
                    "payloads": len(pending),
                    "completed_jobs": len(outcome["completed"]),
                    "failed_jobs": len(outcome["failed"]),
                    "resubmissions": outcome["resubmissions"],
                    "worker_executed": executed,
                    "worker_cache_hits": cache_hits,
                    "wall_time_s": round(time.perf_counter() - round_start, 6),
                }
            )
            pending = [i for i in pending if i not in done]
            if pending:
                if num_jobs == 1:
                    errors = "; ".join(
                        job.last_error or "unknown failure"
                        for job in outcome["failed"]
                    )
                    raise RuntimeError(
                        f"cluster sweep failed: {len(pending)} payloads still "
                        f"unfinished after {round_index} rounds down to one "
                        f"worker (workdir kept at {workdir}): {errors}"
                    )
                # partis discipline: fewer, larger jobs each retry round.
                num_jobs = max(1, min(num_jobs - 1, int(num_jobs / SHRINK_FACTOR)))

        self._last_run = {
            "batch_system": self.batch_system,
            "workdir": str(workdir),
            "point_cache_dir": str(cache_dir),
            "rounds": rounds,
            "resubmissions": total_resubmissions,
        }
        if auto_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        return results

    def observability(self) -> dict[str, Any]:
        """Per-round job/timing/cache metadata of the last :meth:`map` call."""
        return dict(self._last_run)
