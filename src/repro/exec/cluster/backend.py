"""The ``cluster`` execution backend: partis-style rounds over a batch system.

``map()`` splits the payloads over ``jobs`` workers, serialises each chunk
to a job file under the (network) workdir, submits the lot through the
selected :mod:`submitter <repro.exec.cluster.submitters>`, and collects the
partial results.  Payloads whose jobs failed past their resubmission budget
carry over to the next round, re-split over fewer, larger jobs — partis's
hierarchical merge discipline, with the next round's job count sized from
the per-point wall time observed in the round just finished (falling back
to a fixed ~1.6x shrink when the round produced no timing signal).  Because
every worker writes each finished point into the shared point cache
(``$REPRO_CACHE_DIR``, pointed at the mount), the payloads a later round
re-covers are cache hits: later, larger rounds are no slower than early
ones.

Per-round observability (job counts, resubmissions, worker execute/hit
counts) lands in :attr:`SweepResult.meta <repro.exec.result.SweepResult.meta>`
via :meth:`ClusterBackend.observability`; per-round wall times live apart
under its ``timing`` key (merged into ``meta["timing"]`` by the driver) so
the rest of the meta is deterministic.  With a telemetry hub installed by
the sweep driver, every round and every job submit/complete/fail/resubmit/
cancel becomes a structured event (:mod:`repro.obs.events`), and
``progress=True`` (CLI ``--progress``) prints a live per-round status line
to stderr.
"""

from __future__ import annotations

import shutil
import sys
import tempfile
from pathlib import Path
from typing import Any, Sequence

from repro.config import cache_dir_override
from repro.exec.backends import ExecutionBackend, Payload, Worker
from repro.exec.cluster.jobfile import result_path_for, write_jobfile
from repro.exec.cluster.submitters import ClusterJob, Submitter, run_jobs
from repro.registry import get_submitter, register_backend

# Worker count divisor between consecutive rounds (partis reduces ~1.6x).
# Used directly when a round produced no timing signal; otherwise the next
# round is sized adaptively from the observed per-point wall time (see
# :func:`_adaptive_jobs`).
SHRINK_FACTOR = 1.6

# Floor for the per-job wall time the adaptive sizing aims at: chunks small
# enough to finish faster than this are dominated by scheduler latency, so
# the estimate never targets jobs shorter than it.
MIN_JOB_WALL_S = 1.0


def _adaptive_jobs(
    pending: int,
    completed_payloads: int,
    completed_jobs: int,
    round_wall_s: float,
    prev_jobs: int,
) -> int:
    """Size the next retry round from the previous round's observed rate.

    Estimates the per-point wall time of the previous round (its wall time
    was set by the slowest of ``completed_jobs`` roughly equal chunks, so
    one point costs about ``wall * jobs / payloads``), then picks the job
    count whose chunks of the ``pending`` remainder each take about
    ``SHRINK_FACTOR`` times the previous round's wall time — fewer, larger
    jobs, but proportioned to the actual work left instead of a fixed
    divisor.  Falls back to the fixed shrink when the previous round
    yielded no signal (nothing completed, or zero measured wall time).

    The result is always clamped into ``[1, prev_jobs - 1]``: rounds must
    strictly shrink so the escalation terminates at one worker no matter
    what the timing data says.
    """
    shrunk = max(1, min(prev_jobs - 1, int(prev_jobs / SHRINK_FACTOR)))
    if completed_payloads <= 0 or completed_jobs <= 0 or round_wall_s <= 0.0:
        return shrunk
    per_point_s = round_wall_s * completed_jobs / completed_payloads
    target_job_s = max(SHRINK_FACTOR * round_wall_s, MIN_JOB_WALL_S)
    estimate = int(pending * per_point_s / target_job_s)
    return max(1, min(prev_jobs - 1, estimate))


def _chunks(indices: Sequence[int], jobs: int) -> list[tuple[int, ...]]:
    """Split ``indices`` into at most ``jobs`` contiguous, near-equal chunks."""
    jobs = min(jobs, len(indices))
    size, remainder = divmod(len(indices), jobs)
    out = []
    start = 0
    for j in range(jobs):
        width = size + (1 if j < remainder else 0)
        out.append(tuple(indices[start : start + width]))
        start += width
    return out


@register_backend(
    "cluster",
    description="batch-system fan-out (slurm/sge/fake) over a shared workdir",
)
class ClusterBackend(ExecutionBackend):
    """Fan payloads out over a batch system in shrinking rounds.

    Parameters
    ----------
    jobs:
        Workers in the first round (later rounds shrink by
        :data:`SHRINK_FACTOR`).
    batch_system:
        Submitter registry name: ``slurm``, ``sge``, or ``fake`` (local
        subprocesses, the CI/single-host default).
    batch_options:
        Extra scheduler options passed through verbatim, e.g.
        ``"--partition=long --mem=16G"``.
    workdir:
        Directory for job/result/log files.  With a real batch system this
        must be a network mount every node can see; default is a fresh local
        temporary directory (fine for ``fake``), removed again on success.
    cache_dir:
        Shared point cache for the workers; defaults to ``$REPRO_CACHE_DIR``
        or, if unset, a ``point_cache/`` directory inside the workdir.
    timeout_s / poll_interval_s / max_resubmits:
        Per-job timeout, result-poll cadence, and in-round resubmission
        budget (see :func:`~repro.exec.cluster.submitters.run_jobs`).
    progress:
        Opt-in live status: print one line per completed job and per round
        to stderr (CLI ``--progress``).  Output only — never enters results.
    submitter:
        An explicit :class:`Submitter` instance, overriding ``batch_system``
        (used by tests; normal callers select by name).
    """

    name = "cluster"

    def __init__(
        self,
        jobs: int = 1,
        *,
        batch_system: str = "fake",
        batch_options: str = "",
        workdir: "str | Path | None" = None,
        cache_dir: "str | Path | None" = None,
        timeout_s: float | None = None,
        poll_interval_s: float = 0.1,
        max_resubmits: int = 1,
        progress: bool = False,
        submitter: "Submitter | None" = None,
    ):
        super().__init__(jobs=jobs)
        self.batch_system = submitter.name if submitter is not None else batch_system
        self.batch_options = batch_options
        self.workdir = None if workdir is None else Path(workdir)
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.timeout_s = timeout_s
        self.poll_interval_s = poll_interval_s
        self.max_resubmits = max_resubmits
        self.progress = progress
        self._submitter = submitter
        self._last_run: dict[str, Any] = {}

    def _make_submitter(self, workdir: Path) -> Submitter:
        if self._submitter is not None:
            return self._submitter
        cls = get_submitter(self.batch_system).obj
        return cls(batch_options=self.batch_options, workdir=workdir)

    def map(self, payloads: Sequence[Payload], worker: Worker) -> list[dict]:
        if not payloads:
            self._last_run = {}
            return []
        auto_workdir = self.workdir is None
        workdir = (
            Path(tempfile.mkdtemp(prefix="repro-cluster-"))
            if auto_workdir
            else self.workdir
        )
        workdir.mkdir(parents=True, exist_ok=True)
        cache_dir = self.cache_dir
        if cache_dir is None:
            env_dir = cache_dir_override()
            cache_dir = (
                Path(env_dir) if env_dir else workdir / "point_cache"
            )
        submitter = self._make_submitter(workdir)

        results: list[dict | None] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        num_jobs = min(self.jobs, len(payloads))
        rounds: list[dict[str, Any]] = []
        round_wall_times: list[float] = []
        total_resubmissions = 0
        round_index = 0
        tele = self.telemetry
        # Round wall time always flows through an obs span, telemetry or not.
        stopwatch = tele.stopwatch()

        while pending:
            round_index += 1
            jobs = []
            for j, chunk in enumerate(_chunks(pending, num_jobs)):
                jobfile = workdir / f"r{round_index:02d}_j{j:03d}.json"
                write_jobfile(
                    jobfile,
                    [payloads[i] for i in chunk],
                    cache_dir=cache_dir,
                )
                # A reused workdir may hold a result file from an earlier
                # sweep; completion is defined by its presence, so clear it.
                result_path_for(jobfile).unlink(missing_ok=True)
                jobs.append(
                    ClusterJob(
                        name=f"repro-r{round_index:02d}-j{j:03d}",
                        jobfile=jobfile,
                        result_file=result_path_for(jobfile),
                        log_path=jobfile.with_suffix(".log"),
                        num_payloads=len(chunk),
                        payload_indices=chunk,
                    )
                )
            tele.event(
                "round_start",
                round=round_index,
                jobs=len(jobs),
                payloads=len(pending),
            )
            on_job_done = (
                self._progress_line(round_index, len(jobs)) if self.progress else None
            )
            with stopwatch.span("cluster_round", round=round_index) as round_span:
                outcome = run_jobs(
                    submitter,
                    jobs,
                    timeout_s=self.timeout_s,
                    poll_interval_s=self.poll_interval_s,
                    max_resubmits=self.max_resubmits,
                    telemetry=tele,
                    on_job_done=on_job_done,
                )
            executed = 0
            cache_hits = 0
            done: set[int] = set()
            for job in outcome["completed"]:
                for index, result in zip(job.payload_indices, job.result["results"]):
                    results[index] = result
                    done.add(index)
                stats = job.result["stats"]
                executed += int(stats.get("executed", 0))
                cache_hits += int(stats.get("cache_hits", 0))
            total_resubmissions += outcome["resubmissions"]
            round_wall_time = round(round_span.elapsed_s, 6)
            round_wall_times.append(round_wall_time)
            rounds.append(
                {
                    "round": round_index,
                    "jobs": len(jobs),
                    "payloads": len(pending),
                    "completed_jobs": len(outcome["completed"]),
                    "failed_jobs": len(outcome["failed"]),
                    "resubmissions": outcome["resubmissions"],
                    "worker_executed": executed,
                    "worker_cache_hits": cache_hits,
                }
            )
            tele.event(
                "round_finish",
                round=round_index,
                completed_jobs=len(outcome["completed"]),
                failed_jobs=len(outcome["failed"]),
                resubmissions=outcome["resubmissions"],
                dur_s=round_wall_time,
            )
            tele.counter("cluster_jobs_completed", len(outcome["completed"]))
            tele.counter("cluster_worker_executed", executed)
            tele.counter("cluster_worker_cache_hits", cache_hits)
            if self.progress:
                print(
                    f"[cluster r{round_index:02d}: "
                    f"{len(outcome['completed'])}/{len(jobs)} jobs, "
                    f"{len(done)}/{len(pending)} payloads, "
                    f"{outcome['resubmissions']} resubmits, "
                    f"{round_wall_time:.1f}s]",
                    file=sys.stderr,
                )
            pending = [i for i in pending if i not in done]
            if pending:
                if num_jobs == 1:
                    errors = "; ".join(
                        job.last_error or "unknown failure"
                        for job in outcome["failed"]
                    )
                    raise RuntimeError(
                        f"cluster sweep failed: {len(pending)} payloads still "
                        f"unfinished after {round_index} rounds down to one "
                        f"worker (workdir kept at {workdir}): {errors}"
                    )
                # partis discipline: fewer, larger jobs each retry round,
                # sized from the round we just observed when it produced a
                # timing signal.
                num_jobs = _adaptive_jobs(
                    len(pending),
                    len(done),
                    len(outcome["completed"]),
                    round_wall_time,
                    num_jobs,
                )

        self._last_run = {
            "batch_system": self.batch_system,
            "workdir": str(workdir),
            "point_cache_dir": str(cache_dir),
            "rounds": rounds,
            "resubmissions": total_resubmissions,
            # Wall-clock stays out of the rounds themselves so everything
            # else in meta is deterministic; the sweep driver merges this
            # into meta["timing"].
            "timing": {"round_wall_times_s": round_wall_times},
        }
        if auto_workdir:
            shutil.rmtree(workdir, ignore_errors=True)
        return results

    @staticmethod
    def _progress_line(round_index: int, total_jobs: int):
        """A ``run_jobs`` completion callback printing live status to stderr."""

        def on_job_done(job: ClusterJob, done: int) -> None:
            print(
                f"[cluster r{round_index:02d}: job {job.name} done "
                f"({done}/{total_jobs})]",
                file=sys.stderr,
            )

        return on_job_done

    def observability(self) -> dict[str, Any]:
        """Per-round job/cache metadata of the last :meth:`map` call.

        Wall-clock measurements are isolated under the ``timing`` key, which
        the sweep driver folds into ``meta["timing"]``.
        """
        return dict(self._last_run)
