"""Batch-system submitters: slurm, sge, and a CI-testable fake.

A submitter knows how to launch one :class:`ClusterJob` (a worker command
over one job file), poll whether it is still alive, and cancel it.  Real
schedulers are driven through command templates — ``sbatch``/``squeue``/
``scancel`` for slurm, ``qsub``/``qstat``/``qdel`` for sge — with user
extras passed through verbatim via ``--batch-options`` (partis-style, e.g.
``--batch-options="--partition=long --mem=16G"``).  The ``fake`` submitter
runs the identical worker command in local subprocesses, so the whole
cluster path is exercisable on a laptop and in CI without a scheduler.

:func:`run_jobs` is the shared driver: it submits a batch of jobs, polls
their result files, enforces a per-job timeout, and resubmits failed or
timed-out jobs a bounded number of times.  Job completion is defined by the
result file — a job whose process exited without writing a usable result
file is failed, whatever the scheduler thinks.

New submitters subclass :class:`Submitter`, register with
``@register_submitter("name")`` and are then selectable via
``--batch-system name`` (add the module to ``_BUILTIN_SUBMITTER_MODULES``
in :mod:`repro.registry` for lazy discovery).
"""

from __future__ import annotations

import os
import shlex
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.config import worker_environ
from repro.exec.cluster.jobfile import read_results
from repro.obs.core import TELEMETRY_OFF, Telemetry
from repro.registry import register_submitter


def worker_command(
    jobfile: "str | Path", result_file: "str | Path | None" = None
) -> list[str]:
    """The command a batch node runs: only the installed package is needed."""
    argv = [sys.executable, "-m", "repro.exec.cluster.worker", str(jobfile)]
    if result_file is not None:
        argv += ["--out", str(result_file)]
    return argv


@dataclass
class ClusterJob:
    """One submitted unit of work: a worker command over one job file."""

    name: str
    jobfile: Path
    result_file: Path
    log_path: Path
    num_payloads: int
    payload_indices: tuple[int, ...] = ()
    attempts: int = 0
    handle: Any = None
    submitted_at: float = 0.0
    result: "dict[str, Any] | None" = field(default=None, repr=False)
    last_error: str | None = None

    def command(self) -> list[str]:
        return worker_command(self.jobfile, self.result_file)


class Submitter:
    """Base class for batch-system submitters."""

    name = "abstract"

    def __init__(self, batch_options: str = "", workdir: "Path | None" = None):
        self.batch_options = batch_options
        self.workdir = None if workdir is None else Path(workdir)

    def _extra_options(self) -> list[str]:
        """User pass-through options, shell-split (``--batch-options``)."""
        return shlex.split(self.batch_options) if self.batch_options else []

    def _run(self, argv: Sequence[str]) -> str:
        """Run a scheduler command, returning stdout; raises on failure."""
        completed = subprocess.run(
            list(argv), capture_output=True, text=True, check=True
        )
        return completed.stdout

    # -- scheduler interface ----------------------------------------------------

    def submit(self, job: ClusterJob) -> Any:
        """Launch ``job``; returns an opaque handle for polling/cancelling."""
        raise NotImplementedError

    def is_running(self, handle: Any) -> bool:
        """Whether the scheduler still considers the job queued or running."""
        raise NotImplementedError

    def cancel(self, handle: Any) -> None:
        """Best-effort kill; a failed cancel of a dead job is not an error."""
        raise NotImplementedError

    def finish(self, handle: Any) -> None:
        """Called once a job's result has been collected; release resources.

        Completion is defined by the result file, so the scheduler may still
        consider the job alive for a moment — real schedulers need nothing
        here, the fake submitter reaps its local subprocess.
        """


@register_submitter(
    "slurm", description="submit worker jobs with sbatch (--batch-options extras)"
)
class SlurmSubmitter(Submitter):
    """Drive slurm via ``sbatch --parsable`` / ``squeue`` / ``scancel``."""

    name = "slurm"

    def submit(self, job: ClusterJob) -> str:
        argv = [
            "sbatch",
            "--parsable",
            f"--job-name={job.name}",
            f"--output={job.log_path}",
            f"--error={job.log_path}",
        ]
        if self.workdir is not None:
            argv.append(f"--chdir={self.workdir}")
        argv += self._extra_options()
        argv += ["--wrap", shlex.join(job.command())]
        # --parsable prints "jobid[;cluster]" on the last line.
        out = self._run(argv).strip().splitlines()
        return out[-1].split(";")[0].strip()

    def is_running(self, handle: str) -> bool:
        try:
            out = self._run(["squeue", "-h", "-j", str(handle), "-o", "%T"])
        except (subprocess.CalledProcessError, OSError):
            return False
        return bool(out.strip())

    def cancel(self, handle: str) -> None:
        try:
            self._run(["scancel", str(handle)])
        except (subprocess.CalledProcessError, OSError):
            pass


@register_submitter(
    "sge", description="submit worker jobs with qsub (--batch-options extras)"
)
class SgeSubmitter(Submitter):
    """Drive sge via ``qsub -terse`` / ``qstat`` / ``qdel``.

    Stdout/stderr locations are set here (joined into the job's log file);
    do not pass ``-o``/``-e`` through ``--batch-options``.
    """

    name = "sge"

    def submit(self, job: ClusterJob) -> str:
        argv = [
            "qsub",
            "-terse",
            "-b", "y",
            "-j", "y",
            "-o", str(job.log_path),
            "-N", job.name,
        ]
        if self.workdir is not None:
            argv += ["-wd", str(self.workdir)]
        argv += self._extra_options()
        argv += job.command()
        out = self._run(argv).strip().splitlines()
        return out[-1].strip()

    def is_running(self, handle: str) -> bool:
        try:
            self._run(["qstat", "-j", str(handle)])
        except (subprocess.CalledProcessError, OSError):
            return False
        return True

    def cancel(self, handle: str) -> None:
        try:
            self._run(["qdel", str(handle)])
        except (subprocess.CalledProcessError, OSError):
            pass


class _FakeHandle:
    """A locally-queued or running worker subprocess."""

    def __init__(self, command: list[str], log_path: Path):
        self.command = command
        self.log_path = log_path
        self.proc: "subprocess.Popen[bytes] | None" = None
        self.cancelled = False


@register_submitter(
    "fake",
    description="run worker jobs in local subprocesses (testing / single host)",
)
class FakeSubmitter(Submitter):
    """A local 'scheduler': jobs run as subprocesses of the driver.

    Everything else — job files, the worker entry point, polling, timeouts,
    resubmission — is byte-identical to the real schedulers, which is what
    makes the cluster backend testable in CI.  A bounded number of jobs run
    concurrently (``max_concurrent``, default the CPU count); the rest queue,
    exactly as a busy batch system would hold them pending.
    """

    name = "fake"

    def __init__(
        self,
        batch_options: str = "",
        workdir: "Path | None" = None,
        max_concurrent: int | None = None,
    ):
        super().__init__(batch_options, workdir)
        if max_concurrent is None:
            max_concurrent = max(2, os.cpu_count() or 2)
        self.max_concurrent = max_concurrent
        self._queue: list[_FakeHandle] = []
        self._running: list[_FakeHandle] = []

    def _worker_env(self) -> dict[str, str]:
        """Child env with the parent's repro package importable."""
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env = worker_environ()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            pkg_root if not existing else os.pathsep.join([pkg_root, existing])
        )
        return env

    def _pump(self) -> None:
        """Reap finished processes and launch queued jobs into free slots."""
        self._running = [h for h in self._running if h.proc.poll() is None]
        while self._queue and len(self._running) < self.max_concurrent:
            handle = self._queue.pop(0)
            handle.log_path.parent.mkdir(parents=True, exist_ok=True)
            with handle.log_path.open("ab") as log:
                handle.proc = subprocess.Popen(
                    handle.command,
                    stdout=log,
                    stderr=log,
                    cwd=self.workdir,
                    env=self._worker_env(),
                )
            self._running.append(handle)

    def submit(self, job: ClusterJob) -> _FakeHandle:
        handle = _FakeHandle(job.command(), job.log_path)
        self._queue.append(handle)
        self._pump()
        return handle

    def is_running(self, handle: _FakeHandle) -> bool:
        self._pump()
        if handle.cancelled:
            return False
        if handle.proc is None:
            return handle in self._queue
        return handle.proc.poll() is None

    def cancel(self, handle: _FakeHandle) -> None:
        handle.cancelled = True
        if handle.proc is None:
            if handle in self._queue:
                self._queue.remove(handle)
        elif handle.proc.poll() is None:
            handle.proc.kill()
            handle.proc.wait()
        self._pump()

    def finish(self, handle: _FakeHandle) -> None:
        # The result file is written before the worker exits, so give the
        # process a moment to end on its own before resorting to kill.
        if handle.proc is not None and handle.proc.poll() is None:
            try:
                handle.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                handle.proc.kill()
                handle.proc.wait()
        elif handle.proc is None and handle in self._queue:
            self._queue.remove(handle)
        self._pump()


def _log_tail(job: ClusterJob, lines: int = 5) -> str:
    try:
        text = job.log_path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return "<no log>"
    tail = text.strip().splitlines()[-lines:]
    return " | ".join(tail) if tail else "<empty log>"


def run_jobs(
    submitter: Submitter,
    jobs: Sequence[ClusterJob],
    *,
    timeout_s: float | None = None,
    poll_interval_s: float = 0.1,
    max_resubmits: int = 1,
    telemetry: Telemetry = TELEMETRY_OFF,
    on_job_done: "Callable[[ClusterJob, int], None] | None" = None,
) -> dict[str, Any]:
    """Submit ``jobs``, poll to completion, resubmit failures (bounded).

    A job *completes* when its result file parses cleanly with the expected
    payload count (writes are atomic, so this is unambiguous).  A job *fails*
    when the scheduler no longer runs it and no usable result exists, or when
    ``timeout_s`` elapses since (re)submission — timed-out jobs are cancelled
    first.  Each job is resubmitted at most ``max_resubmits`` times; jobs
    that exhaust their budget are returned as failed for the caller (the
    round loop of :class:`~repro.exec.cluster.backend.ClusterBackend`) to
    re-split over the next, smaller round.

    ``telemetry`` receives one structured event per lifecycle transition
    (``job_submit``/``job_complete``/``job_fail``/``job_resubmit``/
    ``job_cancel``); ``on_job_done(job, completed_count)`` is invoked after
    every completion (the backend's live progress line).

    Returns ``{"completed": [...], "failed": [...], "resubmissions": n}``;
    completed jobs carry their parsed result document in ``job.result``.
    """
    # Timeout arithmetic goes through an obs clock (D001): an enabled hub
    # even when telemetry is off, so there is exactly one timing code path.
    clock = telemetry.stopwatch().now
    pending = list(jobs)
    for job in pending:
        job.handle = submitter.submit(job)
        job.submitted_at = clock()
        telemetry.event("job_submit", job=job.name, attempt=job.attempts)
    completed: list[ClusterJob] = []
    failed: list[ClusterJob] = []
    resubmissions = 0

    def _complete(job: ClusterJob) -> None:
        submitter.finish(job.handle)
        completed.append(job)
        pending.remove(job)
        telemetry.event(
            "job_complete", job=job.name, payloads=job.num_payloads
        )
        if on_job_done is not None:
            on_job_done(job, len(completed))

    def _finish_or_retry(job: ClusterJob, reason: str) -> None:
        nonlocal resubmissions
        if job.attempts < max_resubmits:
            job.attempts += 1
            resubmissions += 1
            job.handle = submitter.submit(job)
            job.submitted_at = clock()
            telemetry.event("job_resubmit", job=job.name, attempt=job.attempts)
        else:
            job.last_error = f"{reason}: {_log_tail(job)}"
            failed.append(job)
            pending.remove(job)
            telemetry.event("job_fail", job=job.name, reason=reason)

    while pending:
        progressed = False
        for job in list(pending):
            doc = read_results(job.result_file, expected=job.num_payloads)
            if doc is not None:
                job.result = doc
                _complete(job)
                progressed = True
                continue
            if (
                timeout_s is not None
                and clock() - job.submitted_at > timeout_s
            ):
                submitter.cancel(job.handle)
                telemetry.event(
                    "job_cancel", job=job.name, reason=f"timeout after {timeout_s}s"
                )
                _finish_or_retry(job, f"timed out after {timeout_s}s")
                progressed = True
            elif not submitter.is_running(job.handle):
                # The worker may have published its result between our read
                # and the liveness check — re-read before declaring failure.
                doc = read_results(job.result_file, expected=job.num_payloads)
                if doc is not None:
                    job.result = doc
                    _complete(job)
                else:
                    _finish_or_retry(job, "exited without writing a result file")
                progressed = True
        if pending and not progressed:
            time.sleep(poll_interval_s)

    return {
        "completed": completed,
        "failed": failed,
        "resubmissions": resubmissions,
    }
