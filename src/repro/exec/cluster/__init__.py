"""Batch-system sweep execution over a shared network cache.

This package fans :func:`~repro.exec.worker.execute_payload` calls out over
slurm/sge-style batch systems, partis-style: payload chunks are serialised to
JSON job files under a network ``--workdir``, submitted with pass-through
``--batch-options``, and collected in rounds whose worker count shrinks
~1.6x while the shared ``$REPRO_CACHE_DIR`` point cache makes re-executed
points cache hits — so later, larger rounds are no slower than early ones.

Layers:

* :mod:`repro.exec.cluster.jobfile` — versioned job/result file (de)serialisation.
* :mod:`repro.exec.cluster.submitters` — the ``@register_submitter`` registry
  (``slurm``, ``sge``, and a CI-testable ``fake`` local-subprocess submitter)
  plus the shared polling/timeout/resubmission driver.
* :mod:`repro.exec.cluster.worker` — the batch-node entry point
  (``python -m repro.exec.cluster.worker JOBFILE``).
* :mod:`repro.exec.cluster.backend` — the ``cluster`` execution backend
  (``@register_backend("cluster")``) implementing the rounds discipline.
"""

from repro.exec.cluster.backend import ClusterBackend
from repro.exec.cluster.jobfile import (
    JOBFILE_SCHEMA_VERSION,
    JobFileError,
    read_jobfile,
    read_results,
    result_path_for,
    write_jobfile,
    write_results,
)
from repro.exec.cluster.submitters import (
    ClusterJob,
    FakeSubmitter,
    SgeSubmitter,
    SlurmSubmitter,
    Submitter,
    run_jobs,
    worker_command,
)

__all__ = [
    "ClusterBackend",
    "ClusterJob",
    "FakeSubmitter",
    "JOBFILE_SCHEMA_VERSION",
    "JobFileError",
    "SgeSubmitter",
    "SlurmSubmitter",
    "Submitter",
    "read_jobfile",
    "read_results",
    "result_path_for",
    "run_jobs",
    "worker_command",
    "write_jobfile",
    "write_results",
]
