"""Declarative sweep grids: :class:`SweepSpec` and :class:`SweepPoint`.

A :class:`SweepSpec` names the axes of a parameter sweep (strategies, cluster
presets, model specs, sequence-length distributions, perturbation configs...)
and expands to a deterministic sequence of :class:`SweepPoint`\\ s — the
cartesian product of the axes, with three escape hatches so grids need not be
full cross-products:

* ``zip_axes`` — groups of axes iterated in lockstep (e.g. the (model,
  context, gpus) triples of Fig. 8's bar groups),
* ``where`` — a predicate dropping unwanted combinations, and
* ``derived`` — per-point computed fields (e.g. ``total_context`` from a
  fixed tokens-per-GPU times the ``num_gpus`` axis), materialised into the
  point so caching and remote execution see plain values.

Expansion order is deterministic: axes nest in declaration order with the
rightmost axis fastest; a zip group occupies the slot of its first axis.
Points are plain frozen mappings — :mod:`repro.exec.worker` interprets the
well-known session/run fields, everything else rides along as inert tags.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from types import MappingProxyType
from typing import Any, Callable, Iterator, Mapping, Sequence

# Point fields consumed when building the Session a point executes under.
SESSION_FIELDS = (
    "model",
    "cluster_preset",
    "num_gpus",
    "dataset",
    "total_context",
    "tensor_parallel",
    "num_steps",
    "seed",
)

# Point fields consumed by Session.run() for the point's measurement.
RUN_FIELDS = (
    "strategy",
    "strategy_kwargs",
    "label",
    "perturbation",
    "recovery",
    "num_iterations",
)

_EXECUTION_FIELDS = frozenset(SESSION_FIELDS) | frozenset(RUN_FIELDS)


def _canonical(value: Any) -> Any:
    """Normalise a point value into canonical JSON-safe form."""
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"sweep point values must be JSON-representable, got {type(value).__name__}: "
        f"{value!r}"
    )


@dataclass(frozen=True)
class SweepPoint:
    """One expanded cell of a sweep: an immutable axis-name -> value mapping.

    The well-known fields (:data:`SESSION_FIELDS`, :data:`RUN_FIELDS`) drive
    execution; any other key is a tag that is carried through to the results
    but does not affect execution or the cache identity.
    """

    values: Mapping[str, Any]

    def __post_init__(self) -> None:
        if not isinstance(self.values, MappingProxyType):
            object.__setattr__(self, "values", MappingProxyType(dict(self.values)))

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def __contains__(self, key: str) -> bool:
        return key in self.values

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    def keys(self):
        return self.values.keys()

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-safe dict of every field (tags included)."""
        return {k: _canonical(v) for k, v in self.values.items()}

    def session_fields(self) -> dict[str, Any]:
        """The subset of fields that select the planning session."""
        return {k: self.values[k] for k in SESSION_FIELDS if k in self.values}

    def run_fields(self) -> dict[str, Any]:
        """The subset of fields that configure the measurement."""
        return {k: self.values[k] for k in RUN_FIELDS if k in self.values}

    def tags(self) -> dict[str, Any]:
        """Fields that ride along without affecting execution."""
        return {
            k: v for k, v in self.values.items() if k not in _EXECUTION_FIELDS
        }

    def canonical_json(self) -> str:
        """Canonical JSON of the execution-relevant fields (tags excluded).

        This string is the point's content identity: equal canonical JSON
        means equal simulation outcome, so it is what the result cache hashes.
        """
        payload = {
            k: _canonical(v)
            for k, v in self.values.items()
            if k in _EXECUTION_FIELDS
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"SweepPoint({inner})"


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep grid.

    Attributes
    ----------
    axes:
        Axis name -> sequence of values.  Declaration order is nesting order
        (rightmost fastest), so row ordering is part of the spec.
    base:
        Constant fields merged into every point (overridden by axes).
    zip_axes:
        Groups of axis names iterated in lockstep instead of crossed; all
        axes of a group must have equal length.
    where:
        Optional predicate over the fully-assembled point values (base, axes
        and derived fields); combinations it rejects are dropped.
    derived:
        Field name -> function of the point values, evaluated per point after
        axis assignment and materialised into the point.
    """

    axes: Mapping[str, Sequence[Any]]
    base: Mapping[str, Any] = field(default_factory=dict)
    zip_axes: tuple[tuple[str, ...], ...] = ()
    where: Callable[[Mapping[str, Any]], bool] | None = None
    derived: Mapping[str, Callable[[Mapping[str, Any]], Any]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        for name, values in self.axes.items():
            if isinstance(values, str):
                raise ValueError(
                    f"axis {name!r} is a bare string {values!r}; wrap single "
                    f"values in a sequence: ({values!r},)"
                )
        axes = {str(k): tuple(v) for k, v in self.axes.items()}
        if not axes:
            raise ValueError("a sweep needs at least one axis")
        for name, values in axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        object.__setattr__(self, "axes", MappingProxyType(axes))
        object.__setattr__(
            self, "base", MappingProxyType(dict(self.base))
        )
        zip_groups = tuple(tuple(group) for group in self.zip_axes)
        seen: set[str] = set()
        for group in zip_groups:
            if len(group) < 2:
                raise ValueError("a zip group needs at least two axes")
            lengths = set()
            for name in group:
                if name not in axes:
                    raise ValueError(f"zip group names unknown axis {name!r}")
                if name in seen:
                    raise ValueError(f"axis {name!r} appears in two zip groups")
                seen.add(name)
                lengths.add(len(axes[name]))
            if len(lengths) != 1:
                raise ValueError(
                    f"zipped axes {group} have mismatched lengths {sorted(lengths)}"
                )
        object.__setattr__(self, "zip_axes", zip_groups)
        derived = dict(self.derived)
        for name in derived:
            if name in axes or name in self.base:
                raise ValueError(
                    f"derived field {name!r} collides with an axis or base field"
                )
        object.__setattr__(self, "derived", MappingProxyType(derived))

    # -- expansion ---------------------------------------------------------------

    def _slots(self) -> list[tuple[tuple[str, ...], list[tuple[Any, ...]]]]:
        """Iteration slots: zipped groups collapse into their first axis' slot."""
        group_of = {name: group for group in self.zip_axes for name in group}
        slots: list[tuple[tuple[str, ...], list[tuple[Any, ...]]]] = []
        placed: set[str] = set()
        for name in self.axes:
            if name in placed:
                continue
            group = group_of.get(name, (name,))
            values = list(zip(*(self.axes[n] for n in group)))
            slots.append((group, values))
            placed.update(group)
        return slots

    def points(self) -> tuple[SweepPoint, ...]:
        """Expand the grid to its points, in deterministic order."""
        slots = self._slots()
        names = [slot[0] for slot in slots]
        points = []
        for combo in product(*(slot[1] for slot in slots)):
            values = dict(self.base)
            for group, assignment in zip(names, combo):
                values.update(zip(group, assignment))
            for field_name, fn in self.derived.items():
                values[field_name] = fn(values)
            if self.where is not None and not self.where(values):
                continue
            points.append(SweepPoint(values))
        return tuple(points)

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.points())

    def __len__(self) -> int:
        return len(self.points())

    def describe(self) -> str:
        """One-line summary of the grid shape."""
        axes = " x ".join(f"{name}[{len(vals)}]" for name, vals in self.axes.items())
        return f"SweepSpec({axes} -> {len(self)} points)"
