"""Structured sweep results: point configs + per-point run results + meta.

:class:`SweepResult` pairs every expanded :class:`~repro.exec.spec.SweepPoint`
with its :class:`~repro.results.RunResult` /
:class:`~repro.results.ResilienceResult`, carries an observability ``meta``
mapping (backend, jobs, cache hits/misses, wall time), and offers the
accessors experiment tables are derived from: :meth:`column`, :meth:`pivot`
and :meth:`groups`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Iterator, Mapping, Sequence

from repro.exec.spec import SweepPoint
from repro.results import CompareResult, ResilienceResult, RunResult


@dataclass(frozen=True)
class SweepResult:
    """All points of one sweep with their results, in expansion order.

    Attributes
    ----------
    points:
        The expanded grid points, in execution order.
    results:
        One result per point, aligned with ``points``.
    meta:
        Execution metadata: ``backend``, ``jobs``, ``num_points``,
        ``cache_enabled``, ``cache_hits``, ``cache_misses``,
        ``executed_points``, plus a ``timing`` subtree holding every
        wall-clock measurement (``wall_time_s``, and the cluster backend's
        ``round_wall_times_s``).  Only ``timing`` is non-deterministic, so
        ``to_dict(include_timing=False)`` yields byte-comparable documents.
    """

    points: tuple[SweepPoint, ...]
    results: "tuple[RunResult | ResilienceResult, ...]"
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.points) != len(self.results):
            raise ValueError(
                f"{len(self.points)} points but {len(self.results)} results"
            )
        if not isinstance(self.meta, MappingProxyType):
            object.__setattr__(self, "meta", MappingProxyType(dict(self.meta)))

    # -- access -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> "Iterator[tuple[SweepPoint, RunResult | ResilienceResult]]":
        return iter(zip(self.points, self.results))

    def column(self, name: str) -> list[Any]:
        """One value per point: an axis value or a result attribute.

        Point fields win on name collisions (``strategy`` reads the axis,
        which equals the result's key anyway).
        """
        out = []
        for point, result in self:
            if name in point:
                out.append(point[name])
            elif hasattr(result, name):
                out.append(getattr(result, name))
            else:
                raise KeyError(
                    f"{name!r} is neither a point field nor a result attribute"
                )
        return out

    def groups(
        self, *axes: str
    ) -> "list[tuple[tuple[Any, ...], SweepResult]]":
        """Partition into sub-results by the given axes, first-seen order.

        Each group key is the tuple of the axes' values; each group is itself
        a :class:`SweepResult` (sharing this result's meta), so per-cell
        comparisons fall out of :meth:`to_compare`.
        """
        if not axes:
            raise ValueError("groups() needs at least one axis name")
        order: list[tuple[Any, ...]] = []
        buckets: dict[tuple[Any, ...], list[int]] = {}
        for i, point in enumerate(self.points):
            key = tuple(point[a] for a in axes)
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(i)
        return [
            (
                key,
                SweepResult(
                    points=tuple(self.points[i] for i in buckets[key]),
                    results=tuple(self.results[i] for i in buckets[key]),
                    meta=self.meta,
                ),
            )
            for key in order
        ]

    def pivot(
        self,
        index: str | Sequence[str],
        columns: str,
        values: str = "tokens_per_second",
    ) -> dict[Any, dict[Any, Any]]:
        """Nested mapping ``index value -> column value -> cell value``.

        ``index`` may be one axis name or a sequence (keys become tuples).
        Duplicate (index, column) cells raise — the grid axes must identify
        points uniquely for a pivot to be meaningful.
        """
        index_axes = (index,) if isinstance(index, str) else tuple(index)
        cell_values = self.column(values)
        table: dict[Any, dict[Any, Any]] = {}
        for (point, _), value in zip(self, cell_values):
            key: Any = tuple(point[a] for a in index_axes)
            if isinstance(index, str):
                key = key[0]
            col = point[columns]
            row = table.setdefault(key, {})
            if col in row:
                raise ValueError(
                    f"duplicate pivot cell ({key!r}, {col!r}); "
                    "add more index axes"
                )
            row[col] = value
        return table

    def to_compare(
        self, baseline: str | None = None, config: Mapping[str, Any] | None = None
    ) -> CompareResult:
        """Wrap the results as a :class:`CompareResult`.

        ``config`` defaults to the session fields of the first point (useful
        when the group shares one configuration, as sweep cells do).
        """
        if config is None:
            config = self.points[0].session_fields() if self.points else {}
        return CompareResult(
            runs=self.results,
            baseline=(baseline or "").lower(),
            config=config,
        )

    # -- serialisation ----------------------------------------------------------

    def to_dict(self, include_timing: bool = True) -> dict[str, Any]:
        """Plain-dict form; ``include_timing=False`` drops ``meta["timing"]``.

        Wall-clock lives only under the ``timing`` key, so dropping it is
        all it takes to make two sweeps of the same grid byte-comparable.
        """
        meta = dict(self.meta)
        if not include_timing:
            meta.pop("timing", None)
        return {
            "meta": meta,
            "points": [p.to_dict() for p in self.points],
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(
        self, indent: int | None = None, include_timing: bool = True
    ) -> str:
        return json.dumps(
            self.to_dict(include_timing=include_timing), indent=indent
        )
