"""Declarative sweep execution: specs, backends, caching, structured results.

The experiment surface of the repo is built on this package: a frozen
:class:`SweepSpec` declares a grid (axes of strategies, cluster presets,
models, datasets, perturbation configs — with ``zip``/``where``/``derived``
support so grids need not be full cross-products), a pluggable backend
registry executes its points (``serial`` in-process, ``process`` via
``multiprocessing``, ``cluster`` over slurm/sge-style batch systems — see
:mod:`repro.exec.cluster`; register more with
:func:`~repro.registry.register_backend`), a content-hash result cache under
``.repro_cache/`` short-circuits already-simulated points, and everything
lands in a :class:`SweepResult` with per-point results and execution meta.

Quickstart::

    from repro.exec import SweepSpec, run_sweep

    spec = SweepSpec(
        base={"model": "3b", "num_steps": 1},
        axes={
            "dataset": ("arxiv", "github"),
            "num_gpus": (16, 32),
            "strategy": ("te_cp", "zeppelin"),
        },
        derived={"total_context": lambda v: 4096 * v["num_gpus"]},
    )
    sweep = run_sweep(spec, jobs=4, cache=True)
    print(sweep.pivot(("dataset", "num_gpus"), "strategy"))
    print(sweep.meta)  # backend, cache hits/misses, wall time
"""

from repro.exec.backends import ExecutionBackend, ProcessBackend, SerialBackend
from repro.exec.cache import ResultCache, cache_salt, point_key
from repro.exec.cluster import ClusterBackend
from repro.exec.result import SweepResult
from repro.exec.spec import RUN_FIELDS, SESSION_FIELDS, SweepPoint, SweepSpec
from repro.exec.sweep import resolve_backend, run_sweep
from repro.exec.worker import SessionPool, execute_payload, execute_point

__all__ = [
    "ClusterBackend",
    "ExecutionBackend",
    "ProcessBackend",
    "ResultCache",
    "RUN_FIELDS",
    "SESSION_FIELDS",
    "SerialBackend",
    "SessionPool",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "cache_salt",
    "execute_payload",
    "execute_point",
    "point_key",
    "resolve_backend",
    "run_sweep",
]
