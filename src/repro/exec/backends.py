"""Pluggable sweep execution backends.

A backend maps a list of point payloads to a list of result dicts, in order.
Backends register with ``@register_backend`` and are selected by name (CLI
``--backend``/``--jobs``), so new execution substrates (a thread pool, a job
queue, a remote cluster) plug in without touching the sweep driver:

1. Subclass :class:`ExecutionBackend` and implement ``map(payloads, worker)``.
2. Decorate it with ``@register_backend("my_backend", description="...")``.
3. Import the module (or add it to ``_BUILTIN_BACKEND_MODULES`` in
   :mod:`repro.registry` for lazy discovery).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Mapping, Sequence

from repro.exec.worker import execute_payload
from repro.obs.core import TELEMETRY_OFF, Telemetry
from repro.registry import register_backend

Payload = Mapping[str, Any]
Worker = Callable[[Payload], dict]


class ExecutionBackend:
    """Base class for sweep execution backends.

    :attr:`telemetry` is installed by the sweep driver for the duration of
    one :meth:`map` call; backends with internal structure worth observing
    (the cluster backend's rounds and job lifecycle) emit events through it.
    It defaults to the no-op hub, so backends may use it unconditionally.
    """

    name = "abstract"
    telemetry: Telemetry = TELEMETRY_OFF

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def map(self, payloads: Sequence[Payload], worker: Worker) -> list[dict]:
        """Execute every payload, returning result dicts in payload order.

        ``worker`` is the in-process worker closure (it may carry a session
        pool); backends that cross a process boundary fall back to the
        module-level :func:`~repro.exec.worker.execute_payload`.
        """
        raise NotImplementedError

    def observability(self) -> "dict[str, Any]":
        """Extra metadata about the last :meth:`map` call for ``SweepResult.meta``.

        Backends with execution structure worth surfacing (the ``cluster``
        backend's rounds, for instance) override this; keys must not collide
        with the sweep driver's own meta keys.
        """
        return {}


@register_backend(
    "serial", description="in-process sequential execution (default)"
)
class SerialBackend(ExecutionBackend):
    """Run every point sequentially in the calling process."""

    name = "serial"

    def map(self, payloads: Sequence[Payload], worker: Worker) -> list[dict]:
        return [worker(payload) for payload in payloads]


@register_backend(
    "process", description="parallel execution via a multiprocessing pool (--jobs N)"
)
class ProcessBackend(ExecutionBackend):
    """Fan points out over a ``multiprocessing`` pool of ``jobs`` workers.

    Child workers run the module-level worker against their own per-process
    session pool, so each worker still reuses sessions and plan caches across
    the points it executes.  Results come back in point order.
    """

    name = "process"

    @staticmethod
    def chunksize(num_payloads: int, jobs: int) -> int:
        """Points handed to a worker per pool task.

        ``chunksize=1`` on a 10k-point grid is pure IPC overhead; one chunk
        per worker starves the pool when point costs are skewed.  Aim for
        ~4 chunks per worker, capped so a single chunk never holds a large
        slice of the grid hostage behind one slow worker.  ``pool.map``
        returns results in submission order for any chunksize, so ordering
        and determinism are unaffected.
        """
        return max(1, min(32, -(-num_payloads // (jobs * 4))))

    def map(self, payloads: Sequence[Payload], worker: Worker) -> list[dict]:
        jobs = min(self.jobs, len(payloads))
        if jobs <= 1:
            return [worker(payload) for payload in payloads]
        # The platform default start method: fork on Linux (cheap, inherits
        # runtime registrations), spawn where fork is unsafe or unavailable
        # (macOS, Windows).  On spawn platforms, strategies/backends
        # registered at runtime (e.g. in a __main__ block) must be importable
        # by child processes to be visible there.
        ctx = multiprocessing.get_context(multiprocessing.get_start_method())
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(
                execute_payload,
                [dict(p) for p in payloads],
                chunksize=self.chunksize(len(payloads), jobs),
            )
