"""Command-line interface for the Zeppelin reproduction.

Five subcommands:

* ``run`` — measure one strategy on one configuration, optionally under
  faults (:mod:`repro.dynamics`)::

      python -m repro run zeppelin --model 7b --gpus 16
      python -m repro run zeppelin --mttf 60 --recovery elastic --json

* ``compare`` — run one evaluation cell (model, cluster, dataset, context,
  scale) and print the throughput of the selected strategies side by side::

      python -m repro compare --model 7b --dataset arxiv --gpus 16 --context-k 64

  ``--json`` emits the structured :class:`~repro.results.CompareResult`
  instead of the table.  The dynamics flags (``--mttf``,
  ``--straggler-frac``, ``--recovery``...) switch the comparison to goodput
  under the identical perturbation schedule for every strategy.

* ``experiment`` — regenerate one of the paper's tables/figures by name::

      python -m repro experiment fig11
      python -m repro experiment fig13_resilience --json

* ``dynamics`` — show the registered recovery policies and perturbation knobs.

* ``list`` — show every registered model, dataset, strategy and experiment
  (with descriptions), straight from the registries.

A single ``--seed`` drives every stochastic path — batch sampling *and* the
perturbation schedule — so any run is reproducible from one flag.

Strategies, experiments and recovery policies are resolved through
:mod:`repro.registry`; anything registered with ``@register_strategy`` /
``@register_experiment`` / ``@register_recovery`` shows up here without
touching this module.  The same functionality is available programmatically
through :class:`repro.api.Session`.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from typing import Any, Sequence

from repro.api import DEFAULT_COMPARISON, Session, SessionConfig
from repro.registry import (
    RegistryError,
    available_experiments,
    available_recoveries,
    available_strategies,
    experiment_entries,
    get_experiment,
    recovery_entries,
    strategy_entries,
)
from repro.utils.tables import render_table
from repro.utils.validation import check_positive

# Exit code for configuration errors (bad GPU count, unknown model/dataset...).
CONFIG_ERROR_EXIT_CODE = 2


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    """Evaluation-cell flags shared by ``run`` and ``compare``."""
    parser.add_argument("--model", default="7b", help="model preset (3b/7b/13b/30b/8x550m)")
    parser.add_argument("--cluster", default="A", choices=["A", "B", "C"], help="cluster preset")
    parser.add_argument("--gpus", type=int, default=16, help="total GPUs (multiple of 8)")
    parser.add_argument("--dataset", default="arxiv", help="length distribution name")
    parser.add_argument("--context-k", type=int, default=64, help="total context in k tokens")
    parser.add_argument("--tensor-parallel", type=int, default=1, help="TP degree")
    parser.add_argument("--steps", type=int, default=2, help="batches to average over")
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for all stochastic paths (batch sampling and dynamics)",
    )


def _add_dynamics_args(parser: argparse.ArgumentParser) -> None:
    """Fault/variability-injection flags shared by ``run`` and ``compare``."""
    group = parser.add_argument_group(
        "dynamics", "fault & variability injection (see `repro dynamics`)"
    )
    group.add_argument(
        "--mttf",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-node mean time to failure; enables node failures",
    )
    group.add_argument(
        "--max-failures", type=int, default=2, help="cap on injected node failures"
    )
    group.add_argument(
        "--straggler-frac",
        type=float,
        default=0.0,
        help="fraction of GPUs that are persistent stragglers",
    )
    group.add_argument(
        "--straggler-slowdown",
        type=float,
        default=0.7,
        help="mean speed factor of straggler GPUs",
    )
    group.add_argument(
        "--nic-degrade-frac",
        type=float,
        default=0.0,
        help="fraction of NICs that degrade during the run",
    )
    group.add_argument(
        "--nic-degrade-factor",
        type=float,
        default=0.5,
        help="bandwidth factor of a degraded NIC",
    )
    group.add_argument(
        "--recovery",
        default="checkpoint_restart",
        choices=list(available_recoveries()),
        help="recovery policy applied on node failure",
    )
    group.add_argument(
        "--iterations",
        type=int,
        default=32,
        help="training iterations simulated in a resilience run",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zeppelin reproduction: strategy comparison and paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="measure one strategy, optionally under injected faults"
    )
    run.add_argument(
        "strategy", choices=list(available_strategies()), help="strategy to run"
    )
    _add_config_args(run)
    _add_dynamics_args(run)
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the structured result as JSON instead of a table",
    )

    compare = sub.add_parser("compare", help="compare strategies on one configuration")
    _add_config_args(compare)
    _add_dynamics_args(compare)
    compare.add_argument(
        "--strategies",
        nargs="+",
        default=list(DEFAULT_COMPARISON),
        choices=list(available_strategies()),
        help="strategies to compare (first is the speedup baseline)",
    )
    compare.add_argument(
        "--baseline",
        default=None,
        help="strategy to normalise speedups against (default: first listed)",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the structured CompareResult as JSON instead of a table",
    )

    experiment = sub.add_parser("experiment", help="regenerate one paper table/figure")
    experiment.add_argument(
        "name", choices=list(available_experiments()), help="experiment identifier"
    )
    experiment.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's sampling/dynamics seed (if it takes one)",
    )
    experiment.add_argument(
        "--json",
        action="store_true",
        help="emit the structured ExperimentResult as JSON instead of a table",
    )

    sub.add_parser(
        "dynamics", help="list recovery policies and perturbation model knobs"
    )
    sub.add_parser(
        "list", help="list registered models, datasets, strategies and experiments"
    )
    return parser


def _config_error(exc: Exception) -> int:
    """Print a one-line configuration error and return the error exit code."""
    message = exc.args[0] if exc.args else str(exc)
    print(f"error: {message}", file=sys.stderr)
    return CONFIG_ERROR_EXIT_CODE


def _session_config(args: argparse.Namespace) -> SessionConfig:
    return SessionConfig(
        model=args.model,
        cluster_preset=args.cluster,
        num_gpus=args.gpus,
        dataset=args.dataset,
        total_context=args.context_k * 1024,
        tensor_parallel=args.tensor_parallel,
        num_steps=args.steps,
        seed=args.seed,
    )


def _perturbation(args: argparse.Namespace):
    """The PerturbationConfig implied by the dynamics flags, or ``None``."""
    from repro.dynamics.models import PerturbationConfig

    config = PerturbationConfig(
        mttf_s=args.mttf,
        max_failures=args.max_failures,
        straggler_frac=args.straggler_frac,
        straggler_slowdown=args.straggler_slowdown,
        nic_degrade_frac=args.nic_degrade_frac,
        nic_degrade_factor=args.nic_degrade_factor,
    )
    return None if config.is_null else config


def _build_session(args: argparse.Namespace) -> tuple[Session, Any] | int:
    """Build and validate the session and perturbation, or return the
    config-error exit code.

    Only configuration validation runs inside the try: building the session,
    materialising the batches and constructing the perturbation surface every
    bad-input error (GPU count, unknown model/cluster/dataset, out-of-range
    dynamics knobs).  Bugs during the actual measurement should propagate as
    tracebacks, not masquerade as config errors.
    """
    try:
        session = Session(_session_config(args))
        session.batches
        check_positive("iterations", args.iterations)
        perturbation = _perturbation(args)
    except (ValueError, KeyError) as exc:
        return _config_error(exc)
    return session, perturbation


def run_run(args: argparse.Namespace) -> int:
    """Execute the ``run`` subcommand."""
    built = _build_session(args)
    if isinstance(built, int):
        return built
    session, perturbation = built
    result = session.run(
        args.strategy,
        perturbation=perturbation,
        recovery=args.recovery,
        num_iterations=args.iterations,
    )
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(session.cluster.describe())
    data = result.to_dict()
    data.pop("config", None)
    data.pop("perturbation", None)
    rows = [[key, value] for key, value in data.items()]
    print(render_table(["field", "value"], rows))
    return 0


def run_compare(args: argparse.Namespace) -> int:
    """Execute the ``compare`` subcommand."""
    if args.baseline is not None and args.baseline.lower() not in [
        s.lower() for s in args.strategies
    ]:
        return _config_error(
            ValueError(
                f"baseline {args.baseline!r} is not among the compared "
                f"strategies: {args.strategies}"
            )
        )
    built = _build_session(args)
    if isinstance(built, int):
        return built
    session, perturbation = built
    result = session.compare(
        tuple(args.strategies),
        baseline=args.baseline,
        perturbation=perturbation,
        recovery=args.recovery,
        num_iterations=args.iterations,
    )
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(session.cluster.describe())
    rows = [
        [r["strategy"], round(r["tokens_per_second"]), f"{r['speedup']:.2f}x"]
        for r in result.rows()
    ]
    rate = "goodput" if perturbation is not None else "tokens/second"
    print(render_table(["strategy", rate, "speedup"], rows))
    return 0


def run_experiment(args: argparse.Namespace) -> int:
    """Execute the ``experiment`` subcommand."""
    entry = get_experiment(args.name)
    kwargs = {}
    if args.seed is not None:
        if "seed" not in inspect.signature(entry.obj).parameters:
            return _config_error(
                ValueError(f"experiment {args.name!r} does not take a seed")
            )
        kwargs["seed"] = args.seed
    if args.json:
        print(entry.obj(**kwargs).to_json(indent=2))
        return 0
    if kwargs:
        from repro.experiments.common import print_result

        print_result(entry.obj(**kwargs))
        return 0
    # The table path runs the module's ``main()`` so experiments keep any
    # auxiliary output they print beyond the result table (e.g. fig5's zone
    # thresholds); modules without one fall back to printing the table.
    module = importlib.import_module(entry.module)
    main_fn = getattr(module, "main", None)
    if main_fn is not None:
        main_fn()
    else:
        print(entry.obj().to_text())
        print()
    return 0


def run_dynamics(args: argparse.Namespace) -> int:
    """Execute the ``dynamics`` subcommand."""
    from repro.dynamics.models import PerturbationConfig

    print("recovery policies:")
    for entry in recovery_entries():
        print(f"  {entry.name:<20} {entry.description}")
    print()
    print("perturbation knobs (PerturbationConfig defaults):")
    defaults = PerturbationConfig()
    for field_name, value in defaults.to_dict().items():
        print(f"  {field_name:<20} {value}")
    print()
    print("CLI: repro run/compare --mttf S --straggler-frac F --recovery NAME ...")
    return 0


def run_list(args: argparse.Namespace) -> int:
    """Execute the ``list`` subcommand."""
    from repro.data.distributions import available_distributions
    from repro.model.spec import available_models

    print("models:   ", ", ".join(available_models()))
    print("datasets: ", ", ".join(available_distributions()))
    print("strategies:")
    for entry in strategy_entries():
        print(f"  {entry.name:<12} {entry.description}")
    print("experiments:")
    for entry in experiment_entries():
        print(f"  {entry.name:<16} {entry.description}")
    print("recovery policies:")
    for entry in recovery_entries():
        print(f"  {entry.name:<20} {entry.description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": run_run,
        "compare": run_compare,
        "experiment": run_experiment,
        "dynamics": run_dynamics,
        "list": run_list,
    }
    try:
        return handlers[args.command](args)
    except RegistryError as exc:
        return _config_error(exc)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
