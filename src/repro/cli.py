"""Command-line interface for the Zeppelin reproduction.

Two subcommands:

* ``compare`` — run one evaluation cell (model, cluster, dataset, context,
  scale) and print the throughput of the selected strategies side by side::

      python -m repro compare --model 7b --dataset arxiv --gpus 16 --context-k 64

* ``experiment`` — regenerate one of the paper's tables/figures by name::

      python -m repro experiment fig11
      python -m repro experiment table3

The same functionality is available programmatically through
:class:`repro.training.runner.TrainingRun` and :mod:`repro.experiments`.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Sequence

from repro.training.runner import STRATEGY_NAMES, TrainingRun, TrainingRunConfig
from repro.training.throughput import speedup_table
from repro.utils.tables import render_table

# Experiment name -> module (one per paper figure/table).
EXPERIMENT_MODULES = {
    "fig1": "repro.experiments.fig01_length_distributions",
    "fig3": "repro.experiments.fig03_attention_cost_breakdown",
    "fig5": "repro.experiments.fig05_zone_boundaries",
    "fig8": "repro.experiments.fig08_end_to_end",
    "fig9": "repro.experiments.fig09_scalability",
    "fig10": "repro.experiments.fig10_cluster_comparison",
    "fig11": "repro.experiments.fig11_ablation",
    "fig12": "repro.experiments.fig12_timeline",
    "table2": "repro.experiments.table2_dataset_distributions",
    "table3": "repro.experiments.table3_cost_distribution",
}


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zeppelin reproduction: strategy comparison and paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="compare strategies on one configuration")
    compare.add_argument("--model", default="7b", help="model preset (3b/7b/13b/30b/8x550m)")
    compare.add_argument("--cluster", default="A", choices=["A", "B", "C"], help="cluster preset")
    compare.add_argument("--gpus", type=int, default=16, help="total GPUs (multiple of 8)")
    compare.add_argument("--dataset", default="arxiv", help="length distribution name")
    compare.add_argument("--context-k", type=int, default=64, help="total context in k tokens")
    compare.add_argument("--tensor-parallel", type=int, default=1, help="TP degree")
    compare.add_argument("--steps", type=int, default=2, help="batches to average over")
    compare.add_argument("--seed", type=int, default=0, help="batch sampling seed")
    compare.add_argument(
        "--strategies",
        nargs="+",
        default=["te_cp", "llama_cp", "hybrid_dp", "zeppelin"],
        choices=list(STRATEGY_NAMES),
        help="strategies to compare (first is the speedup baseline)",
    )

    experiment = sub.add_parser("experiment", help="regenerate one paper table/figure")
    experiment.add_argument(
        "name", choices=sorted(EXPERIMENT_MODULES), help="experiment identifier"
    )

    list_cmd = sub.add_parser("list", help="list available models, datasets and experiments")
    del list_cmd
    return parser


def run_compare(args: argparse.Namespace) -> int:
    """Execute the ``compare`` subcommand."""
    config = TrainingRunConfig(
        model=args.model,
        cluster_preset=args.cluster,
        num_gpus=args.gpus,
        dataset=args.dataset,
        total_context=args.context_k * 1024,
        tensor_parallel=args.tensor_parallel,
        num_steps=args.steps,
        seed=args.seed,
    )
    run = TrainingRun(config)
    print(run.cluster.describe())
    reports = [run.run_strategy(name) for name in args.strategies]
    rows = [
        [r["strategy"], round(r["tokens_per_second"]), f"{r['speedup']:.2f}x"]
        for r in speedup_table(reports)
    ]
    print(render_table(["strategy", "tokens/second", "speedup"], rows))
    return 0


def run_experiment(args: argparse.Namespace) -> int:
    """Execute the ``experiment`` subcommand."""
    module = importlib.import_module(EXPERIMENT_MODULES[args.name])
    module.main()
    return 0


def run_list() -> int:
    """Execute the ``list`` subcommand."""
    from repro.data.distributions import available_distributions
    from repro.model.spec import available_models

    print("models:     ", ", ".join(available_models()))
    print("datasets:   ", ", ".join(available_distributions()))
    print("strategies: ", ", ".join(STRATEGY_NAMES))
    print("experiments:", ", ".join(sorted(EXPERIMENT_MODULES)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "compare":
        return run_compare(args)
    if args.command == "experiment":
        return run_experiment(args)
    if args.command == "list":
        return run_list()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
