"""Command-line interface for the Zeppelin reproduction.

Three subcommands:

* ``compare`` — run one evaluation cell (model, cluster, dataset, context,
  scale) and print the throughput of the selected strategies side by side::

      python -m repro compare --model 7b --dataset arxiv --gpus 16 --context-k 64

  ``--json`` emits the structured :class:`~repro.results.CompareResult`
  instead of the table.

* ``experiment`` — regenerate one of the paper's tables/figures by name::

      python -m repro experiment fig11
      python -m repro experiment table3 --json

* ``list`` — show every registered model, dataset, strategy and experiment
  (with descriptions), straight from the registries.

Strategies and experiments are resolved through :mod:`repro.registry`;
anything registered with ``@register_strategy`` / ``@register_experiment``
shows up here without touching this module.  The same functionality is
available programmatically through :class:`repro.api.Session`.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Sequence

from repro.api import DEFAULT_COMPARISON, Session, SessionConfig
from repro.registry import (
    RegistryError,
    available_experiments,
    available_strategies,
    experiment_entries,
    get_experiment,
    strategy_entries,
)
from repro.utils.tables import render_table

# Exit code for configuration errors (bad GPU count, unknown model/dataset...).
CONFIG_ERROR_EXIT_CODE = 2


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zeppelin reproduction: strategy comparison and paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="compare strategies on one configuration")
    compare.add_argument("--model", default="7b", help="model preset (3b/7b/13b/30b/8x550m)")
    compare.add_argument("--cluster", default="A", choices=["A", "B", "C"], help="cluster preset")
    compare.add_argument("--gpus", type=int, default=16, help="total GPUs (multiple of 8)")
    compare.add_argument("--dataset", default="arxiv", help="length distribution name")
    compare.add_argument("--context-k", type=int, default=64, help="total context in k tokens")
    compare.add_argument("--tensor-parallel", type=int, default=1, help="TP degree")
    compare.add_argument("--steps", type=int, default=2, help="batches to average over")
    compare.add_argument("--seed", type=int, default=0, help="batch sampling seed")
    compare.add_argument(
        "--strategies",
        nargs="+",
        default=list(DEFAULT_COMPARISON),
        choices=list(available_strategies()),
        help="strategies to compare (first is the speedup baseline)",
    )
    compare.add_argument(
        "--baseline",
        default=None,
        help="strategy to normalise speedups against (default: first listed)",
    )
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the structured CompareResult as JSON instead of a table",
    )

    experiment = sub.add_parser("experiment", help="regenerate one paper table/figure")
    experiment.add_argument(
        "name", choices=list(available_experiments()), help="experiment identifier"
    )
    experiment.add_argument(
        "--json",
        action="store_true",
        help="emit the structured ExperimentResult as JSON instead of a table",
    )

    sub.add_parser(
        "list", help="list registered models, datasets, strategies and experiments"
    )
    return parser


def _config_error(exc: Exception) -> int:
    """Print a one-line configuration error and return the error exit code."""
    message = exc.args[0] if exc.args else str(exc)
    print(f"error: {message}", file=sys.stderr)
    return CONFIG_ERROR_EXIT_CODE


def run_compare(args: argparse.Namespace) -> int:
    """Execute the ``compare`` subcommand."""
    if args.baseline is not None and args.baseline.lower() not in [
        s.lower() for s in args.strategies
    ]:
        return _config_error(
            ValueError(
                f"baseline {args.baseline!r} is not among the compared "
                f"strategies: {args.strategies}"
            )
        )
    # Only configuration validation runs inside the try: building the session
    # and materialising the batches surface every bad-input error (GPU count,
    # unknown model/cluster/dataset).  Bugs during the actual measurement
    # should propagate as tracebacks, not masquerade as config errors.
    try:
        config = SessionConfig(
            model=args.model,
            cluster_preset=args.cluster,
            num_gpus=args.gpus,
            dataset=args.dataset,
            total_context=args.context_k * 1024,
            tensor_parallel=args.tensor_parallel,
            num_steps=args.steps,
            seed=args.seed,
        )
        session = Session(config)
        session.batches
    except (ValueError, KeyError) as exc:
        return _config_error(exc)
    result = session.compare(tuple(args.strategies), baseline=args.baseline)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(session.cluster.describe())
    rows = [
        [r["strategy"], round(r["tokens_per_second"]), f"{r['speedup']:.2f}x"]
        for r in result.rows()
    ]
    print(render_table(["strategy", "tokens/second", "speedup"], rows))
    return 0


def run_experiment(args: argparse.Namespace) -> int:
    """Execute the ``experiment`` subcommand."""
    entry = get_experiment(args.name)
    if args.json:
        print(entry.obj().to_json(indent=2))
        return 0
    # The table path runs the module's ``main()`` so experiments keep any
    # auxiliary output they print beyond the result table (e.g. fig5's zone
    # thresholds); modules without one fall back to printing the table.
    module = importlib.import_module(entry.module)
    main_fn = getattr(module, "main", None)
    if main_fn is not None:
        main_fn()
    else:
        print(entry.obj().to_text())
        print()
    return 0


def run_list(args: argparse.Namespace) -> int:
    """Execute the ``list`` subcommand."""
    from repro.data.distributions import available_distributions
    from repro.model.spec import available_models

    print("models:   ", ", ".join(available_models()))
    print("datasets: ", ", ".join(available_distributions()))
    print("strategies:")
    for entry in strategy_entries():
        print(f"  {entry.name:<12} {entry.description}")
    print("experiments:")
    for entry in experiment_entries():
        print(f"  {entry.name:<12} {entry.description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "compare": run_compare,
        "experiment": run_experiment,
        "list": run_list,
    }
    try:
        return handlers[args.command](args)
    except RegistryError as exc:
        return _config_error(exc)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
