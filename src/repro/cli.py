"""Command-line interface for the Zeppelin reproduction.

Ten subcommands:

* ``run`` — measure one strategy on one configuration, optionally under
  faults (:mod:`repro.dynamics`)::

      python -m repro run zeppelin --model 7b --gpus 16
      python -m repro run zeppelin --mttf 60 --recovery elastic --json

* ``compare`` — run one evaluation cell (model, cluster, dataset, context,
  scale) and print the throughput of the selected strategies side by side::

      python -m repro compare --model 7b --dataset arxiv --gpus 16 --context-k 64

  ``--json`` emits the structured :class:`~repro.results.CompareResult`
  instead of the table.  The dynamics flags (``--mttf``,
  ``--straggler-frac``, ``--recovery``...) switch the comparison to goodput
  under the identical perturbation schedule for every strategy.

* ``sweep`` — declare a (clusters x gpus x contexts x datasets x strategies)
  grid and execute it through :mod:`repro.exec`, with backend fan-out and
  result caching::

      python -m repro sweep --gpus 16 32 --datasets arxiv github --jobs 4

  ``--batch-system slurm|sge|pbs|fake`` switches to the ``cluster`` backend
  (:mod:`repro.exec.cluster`): sweep points are serialised to job files
  under a network ``--workdir``, submitted with pass-through
  ``--batch-options``, and collected in shrinking rounds over the shared
  ``$REPRO_CACHE_DIR`` point cache::

      python -m repro sweep --batch-system slurm --jobs 50 \\
          --workdir /nfs/$USER/sweep --batch-options="--partition=long"

* ``experiment`` — regenerate one of the paper's tables/figures by name
  (module-basename aliases like ``fig09_scalability`` also work)::

      python -m repro experiment fig11
      python -m repro experiment fig09_scalability --jobs 4

  ``--backend``/``--jobs`` fan the experiment's sweep out over a backend;
  the result cache is on by default here and ``--no-cache`` disables it.

* ``trace`` — simulate one strategy's layer plan and export the execution
  timeline as Chrome-trace JSON (``chrome://tracing`` / Perfetto)::

      python -m repro trace zeppelin --model 3b --out timeline.json

* ``serve`` — drive an online serving workload (seeded open- or closed-loop
  arrivals, admission queue with SLO-aware shedding, request batching,
  optional telemetry-driven autoscaling) over the simulator and report
  throughput, goodput, latency percentiles, shed counts and cache
  behaviour.  Flags assemble a :class:`repro.serve.ServeSpec`::

      python -m repro serve --rate 5 --duration 60 --seed 0 --json
      python -m repro serve --mix zeppelin=3 te_cp=1 --admission priority
      python -m repro serve --arrival closed --clients 64 --slo 2 \\
          --admission slo_aware --scale-policy queue_depth --max-gpus 64

* ``obs`` — summarise a telemetry log written by ``--telemetry``::

      python -m repro obs report telemetry.jsonl

* ``dynamics`` — show the registered recovery policies and perturbation knobs.

* ``analyze`` — run the static determinism & invariant linter
  (:mod:`repro.analysis`) over the source tree; exits 1 on findings::

      python -m repro analyze src
      python -m repro analyze --rule D001 --json src

* ``list`` — show every registered model, dataset, strategy, experiment,
  recovery policy, execution backend, batch submitter, arrival process,
  admission policy and analysis rule (with descriptions), straight from the
  registries.

A single ``--seed`` drives every stochastic path — batch sampling *and* the
perturbation schedule — so any run is reproducible from one flag.  The
``run``/``compare``/``sweep``/``experiment``/``serve`` subcommands accept
``--telemetry PATH``: structured events (:mod:`repro.obs`) stream to a JSONL
file while the command runs, without changing any result byte.

Strategies, experiments, recovery policies and execution backends are
resolved through :mod:`repro.registry`; anything registered with
``@register_strategy`` / ``@register_experiment`` / ``@register_recovery`` /
``@register_backend`` shows up here without touching this module.  The same
functionality is available programmatically through
:class:`repro.api.Session` and :mod:`repro.exec`.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from typing import Any, Sequence

from repro.api import DEFAULT_COMPARISON, Session, SessionConfig
from repro.obs.core import Telemetry, telemetry_scope
from repro.registry import (
    RegistryError,
    admission_entries,
    arrival_entries,
    available_admissions,
    available_arrivals,
    available_scales,
    available_backends,
    available_experiments,
    available_recoveries,
    available_strategies,
    available_submitters,
    backend_entries,
    experiment_aliases,
    experiment_entries,
    get_experiment,
    recovery_entries,
    scale_entries,
    rule_entries,
    strategy_entries,
    submitter_entries,
)
from repro.utils.tables import render_table
from repro.utils.validation import check_positive

# Exit code for configuration errors (bad GPU count, unknown model/dataset...).
CONFIG_ERROR_EXIT_CODE = 2


def _add_telemetry_arg(parser: argparse.ArgumentParser) -> None:
    """The ``--telemetry PATH`` flag (observational JSONL event stream)."""
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream structured telemetry events to a JSONL file "
        "(summarise with `repro obs report PATH`; results are unaffected)",
    )


def _add_config_args(parser: argparse.ArgumentParser) -> None:
    """Evaluation-cell flags shared by ``run`` and ``compare``."""
    parser.add_argument("--model", default="7b", help="model preset (3b/7b/13b/30b/8x550m)")
    parser.add_argument("--cluster", default="A", choices=["A", "B", "C"], help="cluster preset")
    parser.add_argument("--gpus", type=int, default=16, help="total GPUs (multiple of 8)")
    parser.add_argument("--dataset", default="arxiv", help="length distribution name")
    parser.add_argument("--context-k", type=int, default=64, help="total context in k tokens")
    parser.add_argument("--tensor-parallel", type=int, default=1, help="TP degree")
    parser.add_argument("--steps", type=int, default=2, help="batches to average over")
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for all stochastic paths (batch sampling and dynamics)",
    )


def _add_dynamics_args(parser: argparse.ArgumentParser) -> None:
    """Fault/variability-injection flags shared by ``run`` and ``compare``."""
    group = parser.add_argument_group(
        "dynamics", "fault & variability injection (see `repro dynamics`)"
    )
    group.add_argument(
        "--mttf",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-node mean time to failure; enables node failures",
    )
    group.add_argument(
        "--max-failures", type=int, default=2, help="cap on injected node failures"
    )
    group.add_argument(
        "--straggler-frac",
        type=float,
        default=0.0,
        help="fraction of GPUs that are persistent stragglers",
    )
    group.add_argument(
        "--straggler-slowdown",
        type=float,
        default=0.7,
        help="mean speed factor of straggler GPUs",
    )
    group.add_argument(
        "--nic-degrade-frac",
        type=float,
        default=0.0,
        help="fraction of NICs that degrade during the run",
    )
    group.add_argument(
        "--nic-degrade-factor",
        type=float,
        default=0.5,
        help="bandwidth factor of a degraded NIC",
    )
    group.add_argument(
        "--recovery",
        default="checkpoint_restart",
        choices=list(available_recoveries()),
        help="recovery policy applied on node failure",
    )
    group.add_argument(
        "--iterations",
        type=int,
        default=32,
        help="training iterations simulated in a resilience run",
    )


def _add_backend_args(parser: argparse.ArgumentParser, for_experiment: bool = False) -> None:
    """Sweep-execution flags shared by ``sweep`` and ``experiment``."""
    group = parser.add_argument_group(
        "execution", "sweep backend and result cache (see `repro list`)"
    )
    group.add_argument(
        "--backend",
        default=None,
        choices=list(available_backends()),
        help="execution backend (default: serial, or process when --jobs > 1; "
        "--batch-system implies cluster)",
    )
    group.add_argument(
        "--jobs",
        type=int,
        default=None if for_experiment else 1,
        help="parallel workers for backends that fan out",
    )
    group.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-hash result cache (.repro_cache/)",
    )
    group.add_argument(
        "--batch-system",
        default=None,
        choices=list(available_submitters()),
        help="cluster-backend submitter (slurm/sge/pbs, or fake for local "
        "subprocesses); implies --backend cluster",
    )
    group.add_argument(
        "--batch-options",
        default=None,
        metavar="OPTS",
        help='extra scheduler options passed through verbatim, e.g. '
        '--batch-options="--partition=long --mem=16G"',
    )
    group.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="cluster-backend job/result directory; must be a network mount "
        "all batch nodes see (default: a local temporary directory)",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="cluster backend: print a live per-job/per-round status line "
        "to stderr (output only, never enters results)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zeppelin reproduction: strategy comparison and paper experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="measure one strategy, optionally under injected faults"
    )
    run.add_argument(
        "strategy", choices=list(available_strategies()), help="strategy to run"
    )
    _add_config_args(run)
    _add_dynamics_args(run)
    _add_telemetry_arg(run)
    run.add_argument(
        "--json",
        action="store_true",
        help="emit the structured result as JSON instead of a table",
    )

    compare = sub.add_parser("compare", help="compare strategies on one configuration")
    _add_config_args(compare)
    _add_dynamics_args(compare)
    compare.add_argument(
        "--strategies",
        nargs="+",
        default=list(DEFAULT_COMPARISON),
        choices=list(available_strategies()),
        help="strategies to compare (first is the speedup baseline)",
    )
    compare.add_argument(
        "--baseline",
        default=None,
        help="strategy to normalise speedups against (default: first listed)",
    )
    _add_telemetry_arg(compare)
    compare.add_argument(
        "--json",
        action="store_true",
        help="emit the structured CompareResult as JSON instead of a table",
    )

    sweep = sub.add_parser(
        "sweep", help="execute a declarative strategy/cluster/dataset grid"
    )
    sweep.add_argument("--model", default="7b", help="model preset (3b/7b/13b/30b/8x550m)")
    sweep.add_argument(
        "--clusters",
        nargs="+",
        default=["A"],
        choices=["A", "B", "C"],
        help="cluster preset axis",
    )
    sweep.add_argument(
        "--gpus", nargs="+", type=int, default=[16], help="GPU-count axis (multiples of 8)"
    )
    sweep.add_argument(
        "--context-k", nargs="+", type=int, default=[64], help="total-context axis (k tokens)"
    )
    sweep.add_argument(
        "--datasets", nargs="+", default=["arxiv"], help="length-distribution axis"
    )
    sweep.add_argument(
        "--strategies",
        nargs="+",
        default=list(DEFAULT_COMPARISON),
        choices=list(available_strategies()),
        help="strategy axis",
    )
    sweep.add_argument("--tensor-parallel", type=int, default=1, help="TP degree")
    sweep.add_argument("--steps", type=int, default=2, help="batches to average over")
    sweep.add_argument(
        "--seed", type=int, default=0, help="seed for all stochastic paths"
    )
    _add_dynamics_args(sweep)
    _add_backend_args(sweep)
    _add_telemetry_arg(sweep)
    sweep.add_argument(
        "--json",
        action="store_true",
        help="emit the structured SweepResult (points, results, meta) as JSON",
    )

    experiment = sub.add_parser("experiment", help="regenerate one paper table/figure")
    experiment.add_argument(
        "name",
        choices=list(available_experiments()) + sorted(experiment_aliases()),
        metavar="name",
        help="experiment identifier (run `repro list` for the catalogue; "
        "module-basename aliases such as fig09_scalability also work)",
    )
    experiment.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's sampling/dynamics seed (if it takes one)",
    )
    _add_backend_args(experiment, for_experiment=True)
    _add_telemetry_arg(experiment)
    experiment.add_argument(
        "--json",
        action="store_true",
        help="emit the structured ExperimentResult as JSON instead of a table",
    )

    trace = sub.add_parser(
        "trace", help="export one strategy's simulated timeline as Chrome-trace JSON"
    )
    trace.add_argument(
        "strategy", choices=list(available_strategies()), help="strategy to trace"
    )
    _add_config_args(trace)
    trace.add_argument(
        "--phase",
        default="forward",
        choices=["forward", "backward"],
        help="which layer pass to trace",
    )
    trace.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write Chrome-trace JSON here and print a summary "
        "(default: print the JSON to stdout)",
    )

    serve = sub.add_parser(
        "serve", help="drive a serving workload over the simulator"
    )
    _add_config_args(serve)
    serving = serve.add_argument_group(
        "serving", "traffic shape, admission and autoscaling (see `repro list`)"
    )
    serving.add_argument(
        "--rate",
        type=float,
        default=10.0,
        help="mean arrival rate in requests per virtual second",
    )
    serving.add_argument(
        "--duration",
        type=float,
        default=60.0,
        help="arrival window in virtual seconds (the queue then drains)",
    )
    serving.add_argument(
        "--mix",
        nargs="+",
        default=None,
        metavar="STRATEGY[=WEIGHT]",
        help="request mix cells, e.g. --mix zeppelin=3 te_cp=1 "
        "(default: the standard comparison, equal weights)",
    )
    serving.add_argument(
        "--arrival",
        default="poisson",
        choices=list(available_arrivals()),
        help="arrival process drawing the request schedule",
    )
    serving.add_argument(
        "--trace-file",
        default=None,
        metavar="FILE",
        help="JSON list of arrival timestamps (required for --arrival trace)",
    )
    serving.add_argument(
        "--admission",
        default="fifo",
        choices=list(available_admissions()),
        help="admission policy ordering the request queue",
    )
    serving.add_argument(
        "--concurrency",
        type=int,
        default=4,
        help="maximum concurrent batch executions",
    )
    serving.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="maximum requests coalesced into one execution",
    )
    serving.add_argument(
        "--clients",
        type=int,
        default=32,
        help="closed-loop pool size (used by --arrival closed)",
    )
    serving.add_argument(
        "--think-time",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="mean closed-loop think time (used by --arrival closed)",
    )
    serving.add_argument(
        "--coalesce",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="deadline-capped batching window: hold a dispatch up to this "
        "long to coalesce same-cell arrivals (never past SLO slack)",
    )
    serving.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="SECONDS",
        help="latency objective; goodput counts only requests meeting it, "
        "and slo_aware admission sheds predicted misses",
    )
    serving.add_argument(
        "--scale-policy",
        default=None,
        choices=list(available_scales()),
        help="autoscale the virtual cluster with load (default: fixed size)",
    )
    serving.add_argument(
        "--min-gpus",
        type=int,
        default=None,
        help="autoscale floor in GPUs (default: the session's --gpus)",
    )
    serving.add_argument(
        "--max-gpus",
        type=int,
        default=None,
        help="autoscale ceiling in GPUs (default: the session's --gpus)",
    )
    serving.add_argument(
        "--no-request-cache",
        action="store_true",
        help="disable the in-run result cache (every batch simulates)",
    )
    _add_telemetry_arg(serve)
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit the structured ServeResult as JSON instead of a table",
    )

    obs = sub.add_parser(
        "obs", help="summarise a telemetry JSONL log written by --telemetry"
    )
    obs.add_argument("action", choices=["report"], help="obs action")
    obs.add_argument("path", metavar="PATH", help="telemetry JSONL file")

    analyze = sub.add_parser(
        "analyze",
        help="run the static determinism & invariant linter (repro.analysis)",
    )
    from repro.analysis.driver import add_analyze_arguments

    add_analyze_arguments(analyze)

    sub.add_parser(
        "dynamics", help="list recovery policies and perturbation model knobs"
    )
    sub.add_parser(
        "list",
        help="list registered models, datasets, strategies, experiments, "
        "recovery policies, execution backends, batch submitters, arrival "
        "processes, admission policies and analysis rules",
    )
    return parser


def _config_error(exc: Exception) -> int:
    """Print a one-line configuration error and return the error exit code."""
    message = exc.args[0] if exc.args else str(exc)
    print(f"error: {message}", file=sys.stderr)
    return CONFIG_ERROR_EXIT_CODE


def _session_config(args: argparse.Namespace) -> SessionConfig:
    return SessionConfig(
        model=args.model,
        cluster_preset=args.cluster,
        num_gpus=args.gpus,
        dataset=args.dataset,
        total_context=args.context_k * 1024,
        tensor_parallel=args.tensor_parallel,
        num_steps=args.steps,
        seed=args.seed,
    )


def _backend_selection(
    args: argparse.Namespace,
) -> "tuple[str | None, dict[str, Any] | None]":
    """The (backend, backend_options) implied by the execution flags.

    ``--batch-system`` alone is enough to select the cluster backend
    (partis-style); the batch flags with any *other* explicit backend are a
    configuration error.  Raises ``ValueError`` for the caller's config-error
    handling.
    """
    backend = args.backend
    if backend is None and args.batch_system is not None:
        backend = "cluster"
    batch_flags = (
        args.batch_system is not None
        or args.batch_options is not None
        or args.workdir is not None
        or args.progress
    )
    if batch_flags and backend != "cluster":
        raise ValueError(
            "--batch-system/--batch-options/--workdir/--progress apply only "
            "to the cluster backend (pass --backend cluster or "
            "--batch-system NAME)"
        )
    if backend != "cluster":
        return backend, None
    options: dict[str, Any] = {
        "batch_system": args.batch_system if args.batch_system else "fake"
    }
    if args.batch_options is not None:
        options["batch_options"] = args.batch_options
    if args.workdir is not None:
        options["workdir"] = args.workdir
    if args.progress:
        options["progress"] = True
    return backend, options


def _perturbation(args: argparse.Namespace):
    """The PerturbationConfig implied by the dynamics flags, or ``None``."""
    from repro.dynamics.models import PerturbationConfig

    config = PerturbationConfig(
        mttf_s=args.mttf,
        max_failures=args.max_failures,
        straggler_frac=args.straggler_frac,
        straggler_slowdown=args.straggler_slowdown,
        nic_degrade_frac=args.nic_degrade_frac,
        nic_degrade_factor=args.nic_degrade_factor,
    )
    return None if config.is_null else config


def _build_session(args: argparse.Namespace) -> tuple[Session, Any] | int:
    """Build and validate the session and perturbation, or return the
    config-error exit code.

    Only configuration validation runs inside the try: building the session,
    materialising the batches and constructing the perturbation surface every
    bad-input error (GPU count, unknown model/cluster/dataset, out-of-range
    dynamics knobs).  Bugs during the actual measurement should propagate as
    tracebacks, not masquerade as config errors.
    """
    try:
        session = Session(_session_config(args))
        session.batches
        check_positive("iterations", args.iterations)
        perturbation = _perturbation(args)
    except (ValueError, KeyError) as exc:
        return _config_error(exc)
    return session, perturbation


def run_run(args: argparse.Namespace) -> int:
    """Execute the ``run`` subcommand."""
    built = _build_session(args)
    if isinstance(built, int):
        return built
    session, perturbation = built
    result = session.run(
        args.strategy,
        perturbation=perturbation,
        recovery=args.recovery,
        num_iterations=args.iterations,
    )
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(session.cluster.describe())
    data = result.to_dict()
    data.pop("config", None)
    data.pop("perturbation", None)
    rows = [[key, value] for key, value in data.items()]
    print(render_table(["field", "value"], rows))
    return 0


def run_compare(args: argparse.Namespace) -> int:
    """Execute the ``compare`` subcommand."""
    if args.baseline is not None and args.baseline.lower() not in [
        s.lower() for s in args.strategies
    ]:
        return _config_error(
            ValueError(
                f"baseline {args.baseline!r} is not among the compared "
                f"strategies: {args.strategies}"
            )
        )
    built = _build_session(args)
    if isinstance(built, int):
        return built
    session, perturbation = built
    result = session.compare(
        tuple(args.strategies),
        baseline=args.baseline,
        perturbation=perturbation,
        recovery=args.recovery,
        num_iterations=args.iterations,
    )
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(session.cluster.describe())
    rows = [
        [r["strategy"], round(r["tokens_per_second"]), f"{r['speedup']:.2f}x"]
        for r in result.rows()
    ]
    rate = "goodput" if perturbation is not None else "tokens/second"
    print(render_table(["strategy", rate, "speedup"], rows))
    return 0


def run_sweep_cmd(args: argparse.Namespace) -> int:
    """Execute the ``sweep`` subcommand."""
    from repro.data.distributions import available_distributions
    from repro.exec import SweepSpec, run_sweep
    from repro.model.spec import get_model

    try:
        get_model(args.model)
        for gpus in args.gpus:
            check_positive("num_gpus", gpus)
            if gpus % 8 != 0:
                raise ValueError("num_gpus must be a multiple of 8 (8-GPU nodes)")
        for context_k in args.context_k:
            check_positive("total_context", context_k * 1024)
        check_positive("tensor_parallel", args.tensor_parallel)
        known = set(available_distributions())
        for dataset in args.datasets:
            if dataset not in known:
                raise ValueError(
                    f"unknown dataset {dataset!r}; available: {', '.join(sorted(known))}"
                )
        check_positive("steps", args.steps)
        check_positive("iterations", args.iterations)
        if args.jobs < 1:
            raise ValueError("--jobs must be >= 1")
        backend, backend_options = _backend_selection(args)
        perturbation = _perturbation(args)
    except (ValueError, KeyError) as exc:
        return _config_error(exc)

    spec = SweepSpec(
        base={
            "model": args.model,
            "tensor_parallel": args.tensor_parallel,
            "num_steps": args.steps,
            "seed": args.seed,
            "strategy_kwargs": {},
            "label": None,
            "perturbation": None if perturbation is None else perturbation.to_dict(),
            "recovery": args.recovery,
            "num_iterations": args.iterations,
        },
        axes={
            "cluster_preset": tuple(args.clusters),
            "num_gpus": tuple(args.gpus),
            "total_context": tuple(k * 1024 for k in args.context_k),
            "dataset": tuple(args.datasets),
            "strategy": tuple(args.strategies),
        },
    )
    result = run_sweep(
        spec,
        backend=backend,
        jobs=args.jobs,
        cache=not args.no_cache,
        backend_options=backend_options,
    )
    if args.json:
        print(result.to_json(indent=2))
        return 0
    rate = "goodput" if perturbation is not None else "tokens/second"
    rows = [
        [
            point["cluster_preset"],
            point["num_gpus"],
            f"{point['total_context'] // 1024}k",
            point["dataset"],
            point["strategy"],
            round(res.tokens_per_second),
        ]
        for point, res in result
    ]
    print(render_table(["cluster", "gpus", "context", "dataset", "strategy", rate], rows))
    meta = result.meta
    print(
        f"[{meta['num_points']} points via {meta['backend']} backend "
        f"(jobs={meta['jobs']}): {meta['cache_hits']} cached, "
        f"{meta['executed_points']} executed in "
        f"{meta['timing']['wall_time_s']:.2f}s]"
    )
    if "rounds" in meta:
        hits = sum(r["worker_cache_hits"] for r in meta["rounds"])
        print(
            f"[cluster: {meta['batch_system']} batch system, "
            f"{len(meta['rounds'])} round(s), "
            f"{sum(r['jobs'] for r in meta['rounds'])} jobs, "
            f"{meta['resubmissions']} resubmissions, "
            f"{hits} worker cache hits]"
        )
    return 0


def run_trace(args: argparse.Namespace) -> int:
    """Execute the ``trace`` subcommand."""
    from repro.sim.engine import Simulator
    from repro.sim.trace import summarize_trace

    built = _build_session_config_only(args)
    if isinstance(built, int):
        return built
    session = built
    strategy = session.strategy(args.strategy)
    plan = strategy.plan_layer(session.batches[0], phase=args.phase)
    sim_result = Simulator(record_trace=True).run(plan)
    trace = sim_result.trace
    process_name = (
        f"{args.strategy} {args.phase} layer — {args.model}, "
        f"{args.gpus} GPUs, cluster {args.cluster}"
    )
    payload = trace.to_chrome_json(indent=2, process_name=process_name)
    if args.out is None:
        print(payload)
        return 0
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(payload)
    summary = summarize_trace(trace)
    print(f"wrote {args.out} ({len(trace.spans)} spans)")
    print("open in chrome://tracing or https://ui.perfetto.dev")
    rows = [
        ["makespan_ms", round(sim_result.makespan_s * 1000, 3)],
        ["attention_ms", round(summary["total_attention_s"] * 1000, 3)],
        ["intra_comm_ms", round(summary["total_intra_comm_s"] * 1000, 3)],
        ["inter_comm_ms", round(summary["total_inter_comm_s"] * 1000, 3)],
    ]
    print(render_table(["metric", "value"], rows))
    return 0


def _build_session_config_only(args: argparse.Namespace) -> Session | int:
    """Session for subcommands without dynamics flags, or the error code."""
    try:
        session = Session(_session_config(args))
        session.batches
    except (ValueError, KeyError) as exc:
        return _config_error(exc)
    return session


def run_experiment(args: argparse.Namespace) -> int:
    """Execute the ``experiment`` subcommand."""
    entry = get_experiment(args.name)
    params = inspect.signature(entry.obj).parameters
    kwargs = {}
    if args.seed is not None:
        if "seed" not in params:
            return _config_error(
                ValueError(f"experiment {args.name!r} does not take a seed")
            )
        kwargs["seed"] = args.seed
    # Sweep-execution flags forward only to experiments built on repro.exec;
    # default values stay silent so plain experiments keep working.
    supports_exec = "use_cache" in params
    if supports_exec:
        if args.jobs is not None and args.jobs < 1:
            return _config_error(ValueError("--jobs must be >= 1"))
        try:
            backend, backend_options = _backend_selection(args)
        except ValueError as exc:
            return _config_error(exc)
        kwargs["use_cache"] = not args.no_cache
        if backend_options is not None:
            # Experiments forward `backend` verbatim to run_sweep, which
            # accepts instances — so the cluster flags need no per-experiment
            # plumbing: hand over a fully-constructed backend.
            from repro.exec.sweep import resolve_backend

            kwargs["backend"] = resolve_backend(
                backend, jobs=args.jobs or 1, options=backend_options
            )
        elif backend is not None:
            kwargs["backend"] = backend
        if args.jobs is not None:
            kwargs["jobs"] = args.jobs
    elif (
        args.backend is not None
        or args.jobs is not None
        or args.no_cache
        or args.batch_system is not None
        or args.batch_options is not None
        or args.workdir is not None
    ):
        return _config_error(
            ValueError(
                f"experiment {args.name!r} does not support sweep execution "
                "flags (--backend/--jobs/--no-cache/--batch-system/"
                "--batch-options/--workdir)"
            )
        )
    if args.json:
        print(entry.obj(**kwargs).to_json(indent=2))
        return 0
    if kwargs:
        from repro.experiments.common import print_result

        print_result(entry.obj(**kwargs))
        return 0
    # The table path runs the module's ``main()`` so experiments keep any
    # auxiliary output they print beyond the result table (e.g. fig5's zone
    # thresholds); modules without one fall back to printing the table.
    module = importlib.import_module(entry.module)
    main_fn = getattr(module, "main", None)
    if main_fn is not None:
        main_fn()
    else:
        print(entry.obj().to_text())
        print()
    return 0


def _parse_mix(entries: "Sequence[str] | None") -> "dict[str, float] | None":
    """Parse ``--mix`` entries (``strategy`` or ``strategy=weight``)."""
    if entries is None:
        return None
    known = [s.lower() for s in available_strategies()]
    mix: dict[str, float] = {}
    for entry in entries:
        name, _, weight = entry.partition("=")
        name = name.lower()
        if name not in known:
            raise ValueError(
                f"unknown strategy {name!r} in --mix; available: {', '.join(known)}"
            )
        mix[name] = float(weight) if weight else 1.0
    return mix


def run_serve_cmd(args: argparse.Namespace) -> int:
    """Execute the ``serve`` subcommand: flags become one ServeSpec."""
    import json as _json

    from repro.serve.spec import ServeSpec

    try:
        session = Session(_session_config(args))
        session.batches
        mix = _parse_mix(args.mix)
        trace_times = ()
        if args.arrival == "trace":
            if args.trace_file is None:
                raise ValueError("--arrival trace requires --trace-file")
            with open(args.trace_file, "r", encoding="utf-8") as handle:
                trace_times = tuple(float(t) for t in _json.load(handle))
        spec = ServeSpec(
            mix=mix,
            rate=args.rate,
            duration_s=args.duration,
            arrival=args.arrival,
            trace_times=trace_times,
            clients=args.clients,
            think_time_s=args.think_time,
            admission=args.admission,
            concurrency=args.concurrency,
            max_batch=args.max_batch,
            coalesce_s=args.coalesce,
            cache=not args.no_request_cache,
            slo_s=args.slo,
            scale_policy=args.scale_policy,
            min_gpus=args.min_gpus,
            max_gpus=args.max_gpus,
        )
        result = session.serve(spec)
    except (ValueError, KeyError, OSError) as exc:
        return _config_error(exc)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(session.cluster.describe())
    data = result.to_dict()
    for skipped in ("config", "mix", "queue_depth_timeline", "capacity_timeline"):
        data.pop(skipped, None)
    rows = [[key, value] for key, value in data.items()]
    print(render_table(["metric", "value"], rows))
    print(
        f"[{result.num_requests} requests -> {result.simulations} simulations "
        f"({result.cache_hits} cached, {result.batched_requests} batched) "
        f"via {result.arrival}/{result.admission}, "
        f"concurrency {result.concurrency}]"
    )
    return 0


def run_obs(args: argparse.Namespace) -> int:
    """Execute the ``obs`` subcommand (``repro obs report PATH``)."""
    from repro.obs.export import read_events, render_report, summarize_events

    try:
        events = read_events(args.path)
    except OSError as exc:
        # OSError.args[0] is the bare errno; rebuild a readable message.
        return _config_error(ValueError(f"cannot read {args.path}: {exc.strerror or exc}"))
    except ValueError as exc:
        return _config_error(exc)
    print(render_report(summarize_events(events)))
    return 0


def run_dynamics(args: argparse.Namespace) -> int:
    """Execute the ``dynamics`` subcommand."""
    from repro.dynamics.models import PerturbationConfig

    print("recovery policies:")
    for entry in recovery_entries():
        print(f"  {entry.name:<20} {entry.description}")
    print()
    print("perturbation knobs (PerturbationConfig defaults):")
    defaults = PerturbationConfig()
    for field_name, value in defaults.to_dict().items():
        print(f"  {field_name:<20} {value}")
    print()
    print("CLI: repro run/compare --mttf S --straggler-frac F --recovery NAME ...")
    return 0


def run_analyze(args: argparse.Namespace) -> int:
    """Execute the ``analyze`` subcommand."""
    from repro.analysis.driver import execute

    return execute(args.paths, rules=args.rules, json_output=args.json)


def run_list(args: argparse.Namespace) -> int:
    """Execute the ``list`` subcommand.

    Every registry renders through the same table: section header, then
    one ``name description`` row per entry, names padded to a shared width.
    """
    from repro.data.distributions import available_distributions
    from repro.model.spec import available_models

    print("models:   ", ", ".join(available_models()))
    print("datasets: ", ", ".join(available_distributions()))
    sections = (
        ("strategies", strategy_entries()),
        ("experiments", experiment_entries()),
        ("recovery policies", recovery_entries()),
        ("execution backends", backend_entries()),
        ("batch submitters", submitter_entries()),
        ("arrival processes", arrival_entries()),
        ("admission policies", admission_entries()),
        ("scale policies", scale_entries()),
        ("analysis rules", rule_entries()),
    )
    width = max(
        len(entry.name) for _, entries in sections for entry in entries
    )
    for title, entries in sections:
        print(f"{title}:")
        for entry in entries:
            print(f"  {entry.name:<{width}}  {entry.description}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": run_run,
        "compare": run_compare,
        "sweep": run_sweep_cmd,
        "experiment": run_experiment,
        "trace": run_trace,
        "serve": run_serve_cmd,
        "obs": run_obs,
        "dynamics": run_dynamics,
        "analyze": run_analyze,
        "list": run_list,
    }
    telemetry_path = getattr(args, "telemetry", None)
    try:
        if telemetry_path is None:
            return handlers[args.command](args)
        from repro.obs.export import JsonlSink

        # Install the hub as the ambient default for the whole invocation:
        # every Session/run_sweep/run_serve resolving telemetry=None picks it
        # up, so one flag instruments the full command without plumbing.
        with Telemetry(sink=JsonlSink(telemetry_path)) as hub:
            with telemetry_scope(hub):
                return handlers[args.command](args)
    except RegistryError as exc:
        return _config_error(exc)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
