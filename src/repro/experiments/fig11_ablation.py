"""Fig. 11 — ablation of Zeppelin's components.

3B model, 32 GPUs, Cluster A, three datasets.  Configurations, matching the
paper's bars:

* ``TE CP`` — the baseline,
* ``w/ Routing`` — TE CP's even split plus the communication routing layer,
* ``w/ Attn Eng`` — hierarchical partitioning + attention engine, no routing,
  no remapping,
* ``w/ Routing & Attn Eng`` — both, no remapping,
* ``w/ All`` — full Zeppelin (adds the remapping layer).
"""

from __future__ import annotations

from repro.api import Session
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

# (label, strategy name, strategy kwargs), in the paper's bar order.
_CONFIGURATIONS = (
    ("TE CP", "te_cp", {}),
    ("w/ Routing", "te_cp", {"use_routing": True}),
    ("w/ Attn Eng", "zeppelin", {"use_routing": False, "use_remapping": False}),
    ("w/ Routing & Attn Eng", "zeppelin", {"use_remapping": False}),
    ("w/ All", "zeppelin", {}),
)


@register_experiment(
    "fig11", description="Fig. 11 — component ablation (3B, 32 GPUs, Cluster A)"
)
def run(
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    num_gpus: int = 32,
    total_context: int = 128 * 1024,
    num_steps: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 11 ablation."""
    headers = ["dataset", "configuration", "tokens_per_second", "speedup_vs_te_cp"]
    result = ExperimentResult(
        name="fig11",
        description="Component ablation (3B, 32 GPUs, Cluster A)",
        headers=headers,
    )
    for dataset in datasets:
        session = Session(
            model="3b",
            cluster_preset="A",
            num_gpus=num_gpus,
            dataset=dataset,
            total_context=total_context,
            num_steps=num_steps,
            seed=seed,
        )
        base = None
        speedups = {}
        for label, name, kwargs in _CONFIGURATIONS:
            measured = session.run(name, label=label, **kwargs)
            if base is None:
                base = measured.tokens_per_second
            speedup = measured.tokens_per_second / base
            speedups[label] = speedup
            result.add_row(
                dataset, label, round(measured.tokens_per_second), round(speedup, 2)
            )
        result.extra[dataset] = speedups
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
