"""Fig. 11 — ablation of Zeppelin's components.

3B model, 32 GPUs, Cluster A, three datasets.  Configurations, matching the
paper's bars:

* ``TE CP`` — the baseline,
* ``w/ Routing`` — TE CP's even split plus the communication routing layer,
* ``w/ Attn Eng`` — hierarchical partitioning + attention engine, no routing,
  no remapping,
* ``w/ Routing & Attn Eng`` — both, no remapping,
* ``w/ All`` — full Zeppelin (adds the remapping layer).

The (label, strategy, kwargs) bars are zipped axes of one
:class:`~repro.exec.SweepSpec` crossed with the dataset axis.
"""

from __future__ import annotations

from repro.exec import SweepSpec, run_sweep
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

# (label, strategy name, strategy kwargs), in the paper's bar order.
_CONFIGURATIONS = (
    ("TE CP", "te_cp", {}),
    ("w/ Routing", "te_cp", {"use_routing": True}),
    ("w/ Attn Eng", "zeppelin", {"use_routing": False, "use_remapping": False}),
    ("w/ Routing & Attn Eng", "zeppelin", {"use_remapping": False}),
    ("w/ All", "zeppelin", {}),
)


@register_experiment(
    "fig11", description="Fig. 11 — component ablation (3B, 32 GPUs, Cluster A)"
)
def run(
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    num_gpus: int = 32,
    total_context: int = 128 * 1024,
    num_steps: int = 2,
    seed: int = 0,
    backend: str | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> ExperimentResult:
    """Regenerate the Fig. 11 ablation."""
    spec = SweepSpec(
        base={
            "model": "3b",
            "cluster_preset": "A",
            "num_gpus": num_gpus,
            "total_context": total_context,
            "num_steps": num_steps,
            "seed": seed,
        },
        axes={
            "dataset": datasets,
            "label": tuple(label for label, _, _ in _CONFIGURATIONS),
            "strategy": tuple(name for _, name, _ in _CONFIGURATIONS),
            "strategy_kwargs": tuple(kwargs for _, _, kwargs in _CONFIGURATIONS),
        },
        zip_axes=(("label", "strategy", "strategy_kwargs"),),
    )
    sweep = run_sweep(spec, backend=backend, jobs=jobs, cache=use_cache)

    headers = ["dataset", "configuration", "tokens_per_second", "speedup_vs_te_cp"]
    result = ExperimentResult(
        name="fig11",
        description="Component ablation (3B, 32 GPUs, Cluster A)",
        headers=headers,
    )
    for (dataset,), cell in sweep.groups("dataset"):
        base = cell.results[0].tokens_per_second
        speedups = {}
        for point, measured in cell:
            speedup = measured.tokens_per_second / base
            speedups[point["label"]] = speedup
            result.add_row(
                dataset,
                point["label"],
                round(measured.tokens_per_second),
                round(speedup, 2),
            )
        result.extra[dataset] = speedups
    result.extra["sweep_meta"] = dict(sweep.meta)
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
