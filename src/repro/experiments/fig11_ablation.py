"""Fig. 11 — ablation of Zeppelin's components.

3B model, 32 GPUs, Cluster A, three datasets.  Configurations, matching the
paper's bars:

* ``TE CP`` — the baseline,
* ``w/ Routing`` — TE CP's even split plus the communication routing layer,
* ``w/ Attn Eng`` — hierarchical partitioning + attention engine, no routing,
  no remapping,
* ``w/ Routing & Attn Eng`` — both, no remapping,
* ``w/ All`` — full Zeppelin (adds the remapping layer).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, print_result
from repro.training.runner import TrainingRun, TrainingRunConfig
from repro.training.throughput import measure_throughput


def _configurations(run_: TrainingRun):
    """The five ablation configurations, in the paper's order."""
    return (
        ("TE CP", run_.strategy("te_cp")),
        ("w/ Routing", run_.strategy("te_cp", use_routing=True)),
        ("w/ Attn Eng", run_.strategy("zeppelin", use_routing=False, use_remapping=False)),
        ("w/ Routing & Attn Eng", run_.strategy("zeppelin", use_remapping=False)),
        ("w/ All", run_.strategy("zeppelin")),
    )


def run(
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    num_gpus: int = 32,
    total_context: int = 128 * 1024,
    num_steps: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 11 ablation."""
    headers = ["dataset", "configuration", "tokens_per_second", "speedup_vs_te_cp"]
    result = ExperimentResult(
        name="fig11",
        description="Component ablation (3B, 32 GPUs, Cluster A)",
        headers=headers,
    )
    for dataset in datasets:
        config = TrainingRunConfig(
            model="3b",
            cluster_preset="A",
            num_gpus=num_gpus,
            dataset=dataset,
            total_context=total_context,
            num_steps=num_steps,
            seed=seed,
        )
        run_ = TrainingRun(config)
        base = None
        speedups = {}
        for label, strategy in _configurations(run_):
            report = measure_throughput(strategy, run_.batches)
            if base is None:
                base = report.tokens_per_second
            speedup = report.tokens_per_second / base
            speedups[label] = speedup
            result.add_row(
                dataset, label, round(report.tokens_per_second), round(speedup, 2)
            )
        result.extra[dataset] = speedups
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
