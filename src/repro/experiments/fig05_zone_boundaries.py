"""Fig. 5 — operation costs vs sequence length and the three-zone split.

Evaluates attention compute, linear compute, intra-node send-receive and
inter-node send-receive for sequence lengths from 1k to 64k on an A800 node
(200 Gb/s inter-node, 400 GB/s intra-node), and reports the crossover lengths
that define the local / intra-node / inter-node zones, plus the fraction of
each evaluation dataset falling in each zone.
"""

from __future__ import annotations

from repro.cluster.presets import cluster_a
from repro.core.zones import classify_zones, zone_cost_curves
from repro.data.distributions import TABLE2_DISTRIBUTIONS
from repro.exec import SweepSpec
from repro.experiments.common import ExperimentResult, print_result
from repro.model.spec import get_model
from repro.registry import register_experiment

# The evaluation grid: sequence lengths 1k..64k, zone shares per dataset.
_GRID = SweepSpec(
    axes={"seq_len": tuple(1024 * (2**i) for i in range(0, 7))}
)
_LENGTHS = [point["seq_len"] for point in _GRID]


@register_experiment(
    "fig5", description="Fig. 5 — compute/communication cost curves and zone boundaries"
)
def run(model: str = "7b") -> ExperimentResult:
    """Regenerate the Fig. 5 cost curves and zone boundaries."""
    cluster = cluster_a(num_nodes=2)
    spec = get_model(model)
    curves = zone_cost_curves(spec, cluster, _LENGTHS)
    thresholds = classify_zones(spec, cluster)

    headers = [
        "seq_len",
        "attention_ms",
        "linear_ms",
        "intra_node_sendrecv_ms",
        "inter_node_sendrecv_ms",
        "zone",
    ]
    result = ExperimentResult(
        name="fig5",
        description=f"Operation cost vs sequence length ({model} on Cluster A)",
        headers=headers,
    )
    for i, length in enumerate(curves.lengths):
        result.add_row(
            length,
            round(curves.attention_compute_s[i] * 1000, 2),
            round(curves.linear_compute_s[i] * 1000, 2),
            round(curves.intra_node_comm_s[i] * 1000, 2),
            round(curves.inter_node_comm_s[i] * 1000, 2),
            thresholds.zone_of(length).value,
        )

    result.extra["thresholds"] = {
        "local_max": thresholds.local_max,
        "intra_max": thresholds.intra_max,
    }
    # Zone occupancy per dataset (token-weighted, by bin midpoint).
    zone_shares = {}
    for point in SweepSpec(axes={"dataset": tuple(TABLE2_DISTRIBUTIONS)}):
        name = point["dataset"]
        dist = TABLE2_DISTRIBUTIONS[name]
        shares = {"local": 0.0, "intra_node": 0.0, "inter_node": 0.0}
        total = 0.0
        for b in dist.bins:
            weight = b.probability * b.midpoint
            shares[thresholds.zone_of(b.midpoint).value] += weight
            total += weight
        zone_shares[name] = {k: v / total for k, v in shares.items()} if total else shares
    result.extra["dataset_zone_shares"] = zone_shares
    return result


def main() -> None:
    res = run()
    print_result(res)
    print("zone thresholds:", res.extra["thresholds"])
    for name, shares in res.extra["dataset_zone_shares"].items():
        print(f"  {name:12s}", {k: round(v, 3) for k, v in shares.items()})


if __name__ == "__main__":
    main()
