"""Experiment modules: one per table and figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning a structured result and
a ``main()`` that prints the same rows/series the paper reports.  The
``benchmarks/`` directory wraps these functions with pytest-benchmark so the
whole evaluation can be regenerated with ``pytest benchmarks/ --benchmark-only``.

==========================  =====================================================
Module                      Paper artifact
==========================  =====================================================
``fig01_length_distributions``  Fig. 1 — dataset length histograms
``fig03_attention_cost_breakdown``  Fig. 3 — packing vs even-split CP cost shares
``fig05_zone_boundaries``   Fig. 5 — compute/communication curves and zones
``fig08_end_to_end``        Fig. 8 — end-to-end throughput grid
``fig09_scalability``       Fig. 9 — 3B scalability, 16-128 GPUs
``fig10_cluster_comparison``  Fig. 10 — Cluster A vs Cluster B
``fig11_ablation``          Fig. 11 — component ablation
``fig12_timeline``          Fig. 12 — per-round timeline analysis
``fig13_resilience``        Fig. 13 (extension) — goodput under injected faults
``table2_dataset_distributions``  Table 2 — evaluation dataset histograms
``table3_cost_distribution``  Table 3 — per-component cost ranges
==========================  =====================================================
"""

__all__ = [
    "fig01_length_distributions",
    "fig03_attention_cost_breakdown",
    "fig05_zone_boundaries",
    "fig08_end_to_end",
    "fig09_scalability",
    "fig10_cluster_comparison",
    "fig11_ablation",
    "fig12_timeline",
    "fig13_resilience",
    "table2_dataset_distributions",
    "table3_cost_distribution",
]
