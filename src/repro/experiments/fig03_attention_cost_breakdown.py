"""Fig. 3 — multi-head attention cost distribution across sequence-length bins.

For a 2-node, 16-GPU system with a 64k total context, the paper breaks the
attention cost of each dataset down by sequence-length bin and by cost type:

* **(a) packing + Ulysses SP** — useful computation, communication, and the
  *redundant* cross-sequence computation of the naive packed kernel,
* **(b) even split + ring CP** — computation and the (largely unoverlappable
  for short sequences) ring communication.

Shares are normalised to the total attention cost of the dataset, reproducing
the stacked-bar data of Fig. 3.
"""

from __future__ import annotations

from repro.cluster.presets import cluster_a
from repro.costs.comm import CommCostModel
from repro.costs.compute import ComputeCostModel
from repro.data.distributions import FIG1_DISTRIBUTIONS, LengthDistribution
from repro.exec import SweepSpec
from repro.experiments.common import ExperimentResult, print_result
from repro.model.spec import get_model
from repro.registry import register_experiment

_TOTAL_CONTEXT = 64 * 1024
_NUM_GPUS = 16


def _bin_costs_packing(
    dist: LengthDistribution, compute: ComputeCostModel, comm: CommCostModel, spec
) -> dict[str, dict[str, float]]:
    """Per-bin attention cost components for packing + Ulysses (Fig. 3.a).

    Packing places each sequence into a buffer alongside other sequences; the
    naive packed kernel attends over the whole buffer, so a sequence of length
    ``s`` inside a buffer of ``B`` tokens performs roughly ``s * B`` pairs of
    work of which only ``s^2 / 2`` is useful.  The Ulysses all-to-all moves the
    sequence's hidden states twice per layer.
    """
    buffer_tokens = _TOTAL_CONTEXT // _NUM_GPUS
    out: dict[str, dict[str, float]] = {}
    for b in dist.bins:
        s = min(b.midpoint, buffer_tokens)
        weight = b.probability * b.midpoint  # token-weighted occurrence
        useful_pairs = s * s / 2.0
        total_pairs = s * buffer_tokens - s * s / 2.0 if s < buffer_tokens else s * s / 2.0
        redundant_pairs = max(0.0, total_pairs - useful_pairs)
        compute_s = compute.attention_pairs_time(spec, useful_pairs, num_layers=1)
        redundant_s = compute.attention_pairs_time(spec, redundant_pairs, num_layers=1)
        comm_s = 2.0 * comm.intra_node_time(
            spec.hidden_size * spec.dtype_bytes * s / max(1, _NUM_GPUS)
        ) + 2.0 * comm.inter_node_time(
            spec.hidden_size * spec.dtype_bytes * s / 2, nics=1
        )
        out[b.label] = {
            "computation": compute_s * weight,
            "communication": comm_s * weight,
            "redundant": redundant_s * weight,
        }
    return out


def _bin_costs_ring_cp(
    dist: LengthDistribution, compute: ComputeCostModel, comm: CommCostModel, spec
) -> dict[str, dict[str, float]]:
    """Per-bin attention cost components for even-split ring CP (Fig. 3.b)."""
    world = _NUM_GPUS
    out: dict[str, dict[str, float]] = {}
    for b in dist.bins:
        s = b.midpoint
        weight = b.probability * b.midpoint
        pairs = s * s / 2.0
        compute_s = compute.attention_pairs_time(spec, pairs / world, num_layers=1) * world
        # Every rank forwards its s/world-token KV chunk for world-1 rounds; the
        # node-boundary hop over a single NIC is the per-round bottleneck.
        kv_bytes = comm.kv_chunk_bytes(spec, s / world)
        comm_s = (world - 1) * comm.inter_node_time(kv_bytes, nics=1)
        out[b.label] = {
            "computation": compute_s * weight,
            "communication": comm_s * weight,
            "redundant": 0.0,
        }
    return out


# Scheme name -> per-bin cost function (the declarative grid iterates names).
_SCHEMES = {
    "pack+ulysses": _bin_costs_packing,
    "even-split ring CP": _bin_costs_ring_cp,
}


@register_experiment(
    "fig3", description="Fig. 3 — packing vs even-split CP attention cost shares"
)
def run(datasets: tuple[str, ...] = ("arxiv", "github", "stackexchange", "prolong64")) -> ExperimentResult:
    """Regenerate the Fig. 3 normalised cost shares."""
    cluster = cluster_a(num_nodes=2)
    spec = get_model("7b")
    compute = ComputeCostModel(
        peak_flops=cluster.peak_flops_per_gpu, device_type=cluster.device_type
    )
    comm = CommCostModel(cluster)
    grid = SweepSpec(axes={"dataset": datasets, "scheme": tuple(_SCHEMES)})

    headers = [
        "scheme",
        "dataset",
        "bin",
        "computation_share",
        "communication_share",
        "redundant_share",
    ]
    result = ExperimentResult(
        name="fig3",
        description="Attention cost distribution by sequence-length bin (64k, 16 GPUs)",
        headers=headers,
    )
    for point in grid:
        dataset, scheme = point["dataset"], point["scheme"]
        dist = FIG1_DISTRIBUTIONS[dataset]
        costs = _SCHEMES[scheme](dist, compute, comm, spec)
        total = sum(sum(parts.values()) for parts in costs.values())
        for label, parts in costs.items():
            result.add_row(
                scheme,
                dataset,
                label,
                round(parts["computation"] / total, 4) if total else 0.0,
                round(parts["communication"] / total, 4) if total else 0.0,
                round(parts["redundant"] / total, 4) if total else 0.0,
            )
        result.extra[(scheme, dataset)] = costs
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
