"""Shared scaffolding for experiment modules."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.utils.tables import render_table


def jsonable(value: Any) -> Any:
    """Convert experiment data (tuple keys, dataclasses) into JSON-safe form.

    Dict keys are stringified recursively (``json.dumps`` rejects non-string
    keys and its ``default`` hook never sees them); unknown leaf values fall
    back to ``str``.
    """
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class ExperimentResult:
    """A generic tabular experiment result.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig8"``).
    description:
        What the experiment reproduces.
    headers:
        Column names of the result table.
    rows:
        Result rows (one list per row, aligned with ``headers``).
    extra:
        Free-form structured data for programmatic consumers (tests, benches).
    """

    name: str
    description: str
    headers: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def to_text(self) -> str:
        """Render the result as the table the experiment prints."""
        return render_table(self.headers, self.rows, title=f"{self.name}: {self.description}")

    def column(self, header: str) -> list[Any]:
        """Extract a column by header name."""
        try:
            idx = list(self.headers).index(header)
        except ValueError:
            raise KeyError(f"no column named {header!r}") from None
        return [row[idx] for row in self.rows]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (non-string keys and exotic values stringified)."""
        return {
            "name": self.name,
            "description": self.description,
            "headers": list(self.headers),
            "rows": jsonable(self.rows),
            "extra": jsonable(self.extra),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def print_result(result: ExperimentResult) -> None:
    """Print an experiment result table to stdout."""
    print(result.to_text())
    print()
