"""Fig. 1 — sequence length distributions of the training-data mixture.

The paper motivates the problem with the length histograms of seven public
datasets (ArXiv, GitHub, FineWeb, FineWeb-Edu, OpenWebMath, StackExchange,
ProLong-64k).  This experiment regenerates the per-bin shares both from the
registered distributions and from actually sampling batches, confirming the
sampler reproduces the target histograms.
"""

from __future__ import annotations

import numpy as np

from repro.data.distributions import FIG1_DISTRIBUTIONS
from repro.exec import SweepSpec
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment


@register_experiment("fig1", description="Fig. 1 — dataset length histograms")
def run(samples_per_dataset: int = 20000, seed: int = 0) -> ExperimentResult:
    """Regenerate the Fig. 1 histograms.

    Parameters
    ----------
    samples_per_dataset:
        Number of sequence lengths drawn per dataset for the empirical check.
    """
    grid = SweepSpec(axes={"dataset": tuple(FIG1_DISTRIBUTIONS)})
    bins = next(iter(FIG1_DISTRIBUTIONS.values())).bins
    headers = ["dataset"] + [b.label for b in bins] + ["empirical_max_abs_err"]
    result = ExperimentResult(
        name="fig1",
        description="Sequence length distribution across datasets",
        headers=headers,
    )
    rng = np.random.default_rng(seed)
    for point in grid:
        name = point["dataset"]
        dist = FIG1_DISTRIBUTIONS[name]
        lengths = dist.sample_lengths(samples_per_dataset, rng)
        empirical = []
        for b in dist.bins:
            count = sum(1 for n in lengths if b.contains(n))
            empirical.append(count / len(lengths))
        target = [b.probability for b in dist.bins]
        max_err = max(abs(e - t) for e, t in zip(empirical, target))
        result.add_row(name, *[round(p, 4) for p in target], round(max_err, 4))
        result.extra[name] = {"target": target, "empirical": empirical}
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
