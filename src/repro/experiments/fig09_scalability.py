"""Fig. 9 — scalability of the LLaMA 3B model on Cluster A.

Throughput versus GPU count (16 to 128) with a fixed 4k tokens per GPU, for
the three datasets.  The paper's observations this experiment checks:

* TE CP stays nearly flat (cross-node ring communication bound),
* LLaMA CP improves but its all-gather volume grows with total context,
* Hybrid DP does not beat LLaMA CP at small scale (16-32 GPUs),
* Zeppelin scales best across all datasets.
"""

from __future__ import annotations

from repro.api import DEFAULT_COMPARISON
from repro.exec import SweepSpec, run_sweep
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

_STRATEGIES = DEFAULT_COMPARISON
DEFAULT_GPU_COUNTS = (16, 32, 64)
FULL_GPU_COUNTS = (16, 32, 64, 96, 128)


@register_experiment(
    "fig9", description="Fig. 9 — 3B scalability from 16 to 128 GPUs on Cluster A"
)
def run(
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    tokens_per_gpu: int = 4096,
    num_steps: int = 2,
    seed: int = 0,
    backend: str | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> ExperimentResult:
    """Regenerate the Fig. 9 scalability curves."""
    if any(gpus % 8 != 0 for gpus in gpu_counts):
        raise ValueError("GPU counts must be multiples of 8")
    spec = SweepSpec(
        base={"model": "3b", "cluster_preset": "A", "num_steps": num_steps, "seed": seed},
        axes={
            "dataset": datasets,
            "num_gpus": gpu_counts,
            "strategy": _STRATEGIES,
        },
        derived={"total_context": lambda v: tokens_per_gpu * v["num_gpus"]},
    )
    sweep = run_sweep(spec, backend=backend, jobs=jobs, cache=use_cache)

    headers = ["dataset", "gpus", "total_context"] + [f"{s}_tok_s" for s in _STRATEGIES]
    result = ExperimentResult(
        name="fig9",
        description="Scalability of LLaMA 3B on Cluster A (4k tokens per GPU)",
        headers=headers,
    )
    for (dataset, gpus), cell in sweep.groups("dataset", "num_gpus"):
        by_strategy = {point["strategy"]: res for point, res in cell}
        total_context = cell.points[0]["total_context"]
        result.add_row(
            dataset,
            gpus,
            f"{total_context // 1024}k",
            *[round(by_strategy[s].tokens_per_second) for s in _STRATEGIES],
        )
        result.extra[(dataset, gpus)] = {
            s: by_strategy[s].tokens_per_second for s in _STRATEGIES
        }
    result.extra["sweep_meta"] = dict(sweep.meta)
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
