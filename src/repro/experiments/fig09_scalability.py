"""Fig. 9 — scalability of the LLaMA 3B model on Cluster A.

Throughput versus GPU count (16 to 128) with a fixed 4k tokens per GPU, for
the three datasets.  The paper's observations this experiment checks:

* TE CP stays nearly flat (cross-node ring communication bound),
* LLaMA CP improves but its all-gather volume grows with total context,
* Hybrid DP does not beat LLaMA CP at small scale (16-32 GPUs),
* Zeppelin scales best across all datasets.
"""

from __future__ import annotations

from repro.api import DEFAULT_COMPARISON, Session
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

_STRATEGIES = DEFAULT_COMPARISON
DEFAULT_GPU_COUNTS = (16, 32, 64)
FULL_GPU_COUNTS = (16, 32, 64, 96, 128)


@register_experiment(
    "fig9", description="Fig. 9 — 3B scalability from 16 to 128 GPUs on Cluster A"
)
def run(
    gpu_counts: tuple[int, ...] = DEFAULT_GPU_COUNTS,
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    tokens_per_gpu: int = 4096,
    num_steps: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 9 scalability curves."""
    headers = ["dataset", "gpus", "total_context"] + [f"{s}_tok_s" for s in _STRATEGIES]
    result = ExperimentResult(
        name="fig9",
        description="Scalability of LLaMA 3B on Cluster A (4k tokens per GPU)",
        headers=headers,
    )
    base_session = Session(
        model="3b", cluster_preset="A", num_steps=num_steps, seed=seed
    )
    for dataset in datasets:
        for gpus in gpu_counts:
            if gpus % 8 != 0:
                raise ValueError("GPU counts must be multiples of 8")
            total_context = tokens_per_gpu * gpus
            session = base_session.derive(
                num_gpus=gpus, dataset=dataset, total_context=total_context
            )
            comparison = session.compare(_STRATEGIES)
            result.add_row(
                dataset,
                gpus,
                f"{total_context // 1024}k",
                *[round(r.tokens_per_second) for r in comparison],
            )
            result.extra[(dataset, gpus)] = {
                s: comparison.get(s).tokens_per_second for s in _STRATEGIES
            }
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
