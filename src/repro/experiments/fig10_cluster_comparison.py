"""Fig. 10 — speedup comparison on Cluster A versus Cluster B.

3B model, 128k total context, 32 GPUs, three datasets, on both cluster
architectures.  The paper's observations this experiment checks:

* Zeppelin wins on both clusters and on every dataset,
* absolute throughput is higher on Cluster B (Hopper-class GPUs),
* the *relative* speedup of Zeppelin is larger on Cluster A, whose higher
  computation-to-communication ratio gives more room to hide communication.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, print_result
from repro.training.runner import TrainingRun, TrainingRunConfig

_STRATEGIES = ("te_cp", "llama_cp", "hybrid_dp", "zeppelin")


def run(
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    total_context: int = 128 * 1024,
    num_gpus: int = 32,
    num_steps: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 10 cluster comparison."""
    headers = ["cluster", "dataset"] + [f"{s}_tok_s" for s in _STRATEGIES] + [
        f"{s}_speedup" for s in _STRATEGIES
    ]
    result = ExperimentResult(
        name="fig10",
        description="3B, 128k, 32 GPUs on Cluster A vs Cluster B",
        headers=headers,
    )
    for cluster in ("A", "B"):
        for dataset in datasets:
            config = TrainingRunConfig(
                model="3b",
                cluster_preset=cluster,
                num_gpus=num_gpus,
                dataset=dataset,
                total_context=total_context,
                num_steps=num_steps,
                seed=seed,
            )
            run_ = TrainingRun(config)
            reports = [run_.run_strategy(s) for s in _STRATEGIES]
            base = reports[0].tokens_per_second
            result.add_row(
                cluster,
                dataset,
                *[round(r.tokens_per_second) for r in reports],
                *[round(r.tokens_per_second / base, 2) for r in reports],
            )
            result.extra[(cluster, dataset)] = {
                s: r.tokens_per_second for s, r in zip(_STRATEGIES, reports)
            }
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
