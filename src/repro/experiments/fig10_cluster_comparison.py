"""Fig. 10 — speedup comparison on Cluster A versus Cluster B.

3B model, 128k total context, 32 GPUs, three datasets, on both cluster
architectures.  The paper's observations this experiment checks:

* Zeppelin wins on both clusters and on every dataset,
* absolute throughput is higher on Cluster B (Hopper-class GPUs),
* the *relative* speedup of Zeppelin is larger on Cluster A, whose higher
  computation-to-communication ratio gives more room to hide communication.
"""

from __future__ import annotations

from repro.api import DEFAULT_COMPARISON
from repro.exec import SweepSpec, run_sweep
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

_STRATEGIES = DEFAULT_COMPARISON


@register_experiment(
    "fig10", description="Fig. 10 — Cluster A vs Cluster B speedup comparison"
)
def run(
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    total_context: int = 128 * 1024,
    num_gpus: int = 32,
    num_steps: int = 2,
    seed: int = 0,
    backend: str | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> ExperimentResult:
    """Regenerate the Fig. 10 cluster comparison."""
    spec = SweepSpec(
        base={
            "model": "3b",
            "num_gpus": num_gpus,
            "total_context": total_context,
            "num_steps": num_steps,
            "seed": seed,
        },
        axes={
            "cluster_preset": ("A", "B"),
            "dataset": datasets,
            "strategy": _STRATEGIES,
        },
    )
    sweep = run_sweep(spec, backend=backend, jobs=jobs, cache=use_cache)

    headers = ["cluster", "dataset"] + [f"{s}_tok_s" for s in _STRATEGIES] + [
        f"{s}_speedup" for s in _STRATEGIES
    ]
    result = ExperimentResult(
        name="fig10",
        description="3B, 128k, 32 GPUs on Cluster A vs Cluster B",
        headers=headers,
    )
    for (cluster, dataset), cell in sweep.groups("cluster_preset", "dataset"):
        by_strategy = {point["strategy"]: res for point, res in cell}
        baseline = by_strategy[_STRATEGIES[0]].tokens_per_second
        result.add_row(
            cluster,
            dataset,
            *[round(by_strategy[s].tokens_per_second) for s in _STRATEGIES],
            *[round(by_strategy[s].tokens_per_second / baseline, 2) for s in _STRATEGIES],
        )
        result.extra[(cluster, dataset)] = {
            s: by_strategy[s].tokens_per_second for s in _STRATEGIES
        }
    result.extra["sweep_meta"] = dict(sweep.meta)
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
