"""Fig. 10 — speedup comparison on Cluster A versus Cluster B.

3B model, 128k total context, 32 GPUs, three datasets, on both cluster
architectures.  The paper's observations this experiment checks:

* Zeppelin wins on both clusters and on every dataset,
* absolute throughput is higher on Cluster B (Hopper-class GPUs),
* the *relative* speedup of Zeppelin is larger on Cluster A, whose higher
  computation-to-communication ratio gives more room to hide communication.
"""

from __future__ import annotations

from repro.api import DEFAULT_COMPARISON, Session
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

_STRATEGIES = DEFAULT_COMPARISON


@register_experiment(
    "fig10", description="Fig. 10 — Cluster A vs Cluster B speedup comparison"
)
def run(
    datasets: tuple[str, ...] = ("arxiv", "github", "prolong64k"),
    total_context: int = 128 * 1024,
    num_gpus: int = 32,
    num_steps: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 10 cluster comparison."""
    headers = ["cluster", "dataset"] + [f"{s}_tok_s" for s in _STRATEGIES] + [
        f"{s}_speedup" for s in _STRATEGIES
    ]
    result = ExperimentResult(
        name="fig10",
        description="3B, 128k, 32 GPUs on Cluster A vs Cluster B",
        headers=headers,
    )
    for cluster in ("A", "B"):
        for dataset in datasets:
            session = Session(
                model="3b",
                cluster_preset=cluster,
                num_gpus=num_gpus,
                dataset=dataset,
                total_context=total_context,
                num_steps=num_steps,
                seed=seed,
            )
            comparison = session.compare(_STRATEGIES)
            result.add_row(
                cluster,
                dataset,
                *[round(r.tokens_per_second) for r in comparison],
                *[round(comparison.speedup(s), 2) for s in _STRATEGIES],
            )
            result.extra[(cluster, dataset)] = {
                s: comparison.get(s).tokens_per_second for s in _STRATEGIES
            }
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
