"""Fig. 8 — end-to-end training throughput across models, datasets and scales.

The full grid of the paper is 4 models x 3 datasets x 3 context lengths.  The
default configuration here runs a representative subset sized to finish in a
few minutes on a laptop; pass ``full_grid=True`` to sweep every cell.  For each
cell the experiment reports tokens/second of TE CP, LLaMA CP, Hybrid DP and
Zeppelin plus the speedups normalised to TE CP — the numbers printed above the
bars in Fig. 8.

The (model, context, gpus, cluster, TP) bar groups are zipped axes of one
:class:`~repro.exec.SweepSpec`, crossed with the dataset and strategy axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import DEFAULT_COMPARISON
from repro.exec import SweepSpec, run_sweep
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

_STRATEGIES = DEFAULT_COMPARISON


@dataclass(frozen=True)
class Fig8Cell:
    """One bar group of Fig. 8."""

    model: str
    total_context_k: int
    num_gpus: int
    cluster: str = "A"
    tensor_parallel: int = 1


# The paper's grid (Fig. 8).  13B and 30B use tensor parallelism of 2; the 30B
# rows run on Cluster C.
FULL_GRID: tuple[Fig8Cell, ...] = (
    Fig8Cell("7b", 64, 16),
    Fig8Cell("7b", 128, 32),
    Fig8Cell("7b", 256, 64),
    Fig8Cell("13b", 64, 32, tensor_parallel=2),
    Fig8Cell("13b", 128, 64, tensor_parallel=2),
    Fig8Cell("13b", 256, 128, tensor_parallel=2),
    Fig8Cell("8x550m", 64, 16),
    Fig8Cell("8x550m", 128, 32),
    Fig8Cell("8x550m", 256, 64),
    Fig8Cell("30b", 64, 32, cluster="C", tensor_parallel=2),
    Fig8Cell("30b", 128, 64, cluster="C", tensor_parallel=2),
    Fig8Cell("30b", 256, 128, cluster="C", tensor_parallel=2),
)

# Laptop-sized default: the smallest cell of every model family.
DEFAULT_GRID: tuple[Fig8Cell, ...] = (
    Fig8Cell("7b", 64, 16),
    Fig8Cell("13b", 64, 32, tensor_parallel=2),
    Fig8Cell("8x550m", 64, 16),
    Fig8Cell("30b", 64, 32, cluster="C", tensor_parallel=2),
)

DATASETS = ("arxiv", "github", "prolong64k")

# Axes iterated in lockstep to enumerate the bar groups.
_CELL_AXES = ("model", "context_k", "num_gpus", "cluster_preset", "tensor_parallel")


def grid_spec(
    cells: tuple[Fig8Cell, ...],
    datasets: tuple[str, ...],
    num_steps: int,
    seed: int,
) -> SweepSpec:
    """The declarative grid: zipped cell axes x datasets x strategies."""
    return SweepSpec(
        base={"num_steps": num_steps, "seed": seed},
        axes={
            "model": tuple(c.model for c in cells),
            "context_k": tuple(c.total_context_k for c in cells),
            "num_gpus": tuple(c.num_gpus for c in cells),
            "cluster_preset": tuple(c.cluster for c in cells),
            "tensor_parallel": tuple(c.tensor_parallel for c in cells),
            "dataset": datasets,
            "strategy": _STRATEGIES,
        },
        zip_axes=(_CELL_AXES,),
        derived={"total_context": lambda v: v["context_k"] * 1024},
    )


@register_experiment(
    "fig8", description="Fig. 8 — end-to-end throughput grid (models x datasets x scales)"
)
def run(
    full_grid: bool = False,
    datasets: tuple[str, ...] = DATASETS,
    num_steps: int = 2,
    seed: int = 0,
    backend: str | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> ExperimentResult:
    """Regenerate (a subset of) the Fig. 8 throughput grid."""
    cells = FULL_GRID if full_grid else DEFAULT_GRID
    spec = grid_spec(cells, datasets, num_steps, seed)
    sweep = run_sweep(spec, backend=backend, jobs=jobs, cache=use_cache)

    headers = ["model", "context", "gpus", "cluster", "dataset"] + [
        f"{s}_tok_s" for s in _STRATEGIES
    ] + [f"{s}_speedup" for s in _STRATEGIES]
    result = ExperimentResult(
        name="fig8",
        description="End-to-end training throughput (tokens/second and speedup vs TE CP)",
        headers=headers,
    )
    for key, cell in sweep.groups(*_CELL_AXES, "dataset"):
        model, context_k, num_gpus, cluster, _, dataset = key
        by_strategy = {point["strategy"]: res for point, res in cell}
        baseline = by_strategy[_STRATEGIES[0]].tokens_per_second
        result.add_row(
            model,
            f"{context_k}k",
            num_gpus,
            cluster,
            dataset,
            *[round(by_strategy[s].tokens_per_second) for s in _STRATEGIES],
            *[round(by_strategy[s].tokens_per_second / baseline, 2) for s in _STRATEGIES],
        )
        result.extra[(model, context_k, dataset)] = {
            s: by_strategy[s].tokens_per_second for s in _STRATEGIES
        }
    result.extra["sweep_meta"] = dict(sweep.meta)
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
