"""Fig. 8 — end-to-end training throughput across models, datasets and scales.

The full grid of the paper is 4 models x 3 datasets x 3 context lengths.  The
default configuration here runs a representative subset sized to finish in a
few minutes on a laptop; pass ``full_grid=True`` to sweep every cell.  For each
cell the experiment reports tokens/second of TE CP, LLaMA CP, Hybrid DP and
Zeppelin plus the speedups normalised to TE CP — the numbers printed above the
bars in Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import DEFAULT_COMPARISON, Session
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

_STRATEGIES = DEFAULT_COMPARISON


@dataclass(frozen=True)
class Fig8Cell:
    """One bar group of Fig. 8."""

    model: str
    total_context_k: int
    num_gpus: int
    cluster: str = "A"
    tensor_parallel: int = 1


# The paper's grid (Fig. 8).  13B and 30B use tensor parallelism of 2; the 30B
# rows run on Cluster C.
FULL_GRID: tuple[Fig8Cell, ...] = (
    Fig8Cell("7b", 64, 16),
    Fig8Cell("7b", 128, 32),
    Fig8Cell("7b", 256, 64),
    Fig8Cell("13b", 64, 32, tensor_parallel=2),
    Fig8Cell("13b", 128, 64, tensor_parallel=2),
    Fig8Cell("13b", 256, 128, tensor_parallel=2),
    Fig8Cell("8x550m", 64, 16),
    Fig8Cell("8x550m", 128, 32),
    Fig8Cell("8x550m", 256, 64),
    Fig8Cell("30b", 64, 32, cluster="C", tensor_parallel=2),
    Fig8Cell("30b", 128, 64, cluster="C", tensor_parallel=2),
    Fig8Cell("30b", 256, 128, cluster="C", tensor_parallel=2),
)

# Laptop-sized default: the smallest cell of every model family.
DEFAULT_GRID: tuple[Fig8Cell, ...] = (
    Fig8Cell("7b", 64, 16),
    Fig8Cell("13b", 64, 32, tensor_parallel=2),
    Fig8Cell("8x550m", 64, 16),
    Fig8Cell("30b", 64, 32, cluster="C", tensor_parallel=2),
)

DATASETS = ("arxiv", "github", "prolong64k")


@register_experiment(
    "fig8", description="Fig. 8 — end-to-end throughput grid (models x datasets x scales)"
)
def run(
    full_grid: bool = False,
    datasets: tuple[str, ...] = DATASETS,
    num_steps: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Regenerate (a subset of) the Fig. 8 throughput grid."""
    cells = FULL_GRID if full_grid else DEFAULT_GRID
    headers = ["model", "context", "gpus", "cluster", "dataset"] + [
        f"{s}_tok_s" for s in _STRATEGIES
    ] + [f"{s}_speedup" for s in _STRATEGIES]
    result = ExperimentResult(
        name="fig8",
        description="End-to-end training throughput (tokens/second and speedup vs TE CP)",
        headers=headers,
    )
    for cell in cells:
        for dataset in datasets:
            session = Session(
                model=cell.model,
                cluster_preset=cell.cluster,
                num_gpus=cell.num_gpus,
                dataset=dataset,
                total_context=cell.total_context_k * 1024,
                tensor_parallel=cell.tensor_parallel,
                num_steps=num_steps,
                seed=seed,
            )
            comparison = session.compare(_STRATEGIES)
            result.add_row(
                cell.model,
                f"{cell.total_context_k}k",
                cell.num_gpus,
                cell.cluster,
                dataset,
                *[round(r.tokens_per_second) for r in comparison],
                *[round(comparison.speedup(s), 2) for s in _STRATEGIES],
            )
            result.extra[(cell.model, cell.total_context_k, dataset)] = {
                s: comparison.get(s).tokens_per_second for s in _STRATEGIES
            }
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
