"""Fig. 12 — execution timeline analysis of the attention component.

3B model, 16 GPUs (2 nodes of Cluster A), 64k total context, three traces:

* **(a) TE CP baseline** — a single 64k sequence split over a global ring:
  every round's node-boundary KV transfer crosses one NIC and dominates.
* **(b) Zeppelin, single sequence** — the same 64k sequence with the routing
  layer: the inter-node transfer is decomposed across all NICs.
* **(c) Zeppelin, many sequences** — 16 sequences of 4k tokens: the partitioner
  keeps them within nodes (no inter-node communication at all).

For each trace the experiment reports the per-layer forward makespan, the
per-round communication costs and how much communication stays exposed
(unhidden) — the quantities annotated in Fig. 12.
"""

from __future__ import annotations

from repro.api import Session
from repro.data.datasets import single_sequence_batch, uniform_batch
from repro.exec import SweepSpec
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment
from repro.sim.engine import Simulator
from repro.sim.trace import summarize_trace


def _trace_for(strategy, batch):
    plan = strategy.plan_layer(batch, phase="forward")
    sim = Simulator(record_trace=True)
    return sim.run(plan)


# The three timeline scenarios, as zipped axes of one declarative grid.
_SCENARIOS = SweepSpec(
    axes={
        "scenario": (
            "a) TE CP, single 64k sequence",
            "b) Zeppelin, single 64k sequence",
            "c) Zeppelin, 16 x 4k sequences",
        ),
        "strategy": ("te_cp", "zeppelin", "zeppelin"),
        "batch": ("single", "single", "many"),
    },
    zip_axes=(("scenario", "strategy", "batch"),),
)


@register_experiment(
    "fig12", description="Fig. 12 — per-round attention timeline analysis"
)
def run(total_context: int = 64 * 1024, num_gpus: int = 16) -> ExperimentResult:
    """Regenerate the Fig. 12 timeline statistics."""
    session = Session(
        model="3b",
        cluster_preset="A",
        num_gpus=num_gpus,
        dataset="arxiv",
        total_context=total_context,
        num_steps=1,
    )
    batches = {
        "single": single_sequence_batch(total_context),
        "many": uniform_batch(num_gpus, total_context // num_gpus),
    }

    headers = [
        "scenario",
        "fwd_layer_ms",
        "inter_comm_total_ms",
        "intra_comm_total_ms",
        "attention_total_ms",
        "max_exposed_comm_ms",
        "inter_comm_per_round_us",
    ]
    result = ExperimentResult(
        name="fig12",
        description="Attention timeline analysis (3B, 16 GPUs, 64k context)",
        headers=headers,
    )
    for point in _SCENARIOS:
        label = point["scenario"]
        strategy = session.strategy(point["strategy"])
        batch = batches[point["batch"]]
        sim_result = _trace_for(strategy, batch)
        trace = sim_result.trace
        summary = summarize_trace(trace)
        inter_spans = [
            s for s in trace.spans if s.kind.value == "inter_comm" and s.duration_s > 0
        ]
        per_round = (
            sum(s.duration_s for s in inter_spans) / len(inter_spans)
            if inter_spans
            else 0.0
        )
        result.add_row(
            label,
            round(sim_result.makespan_s * 1000, 2),
            round(summary["total_inter_comm_s"] * 1000, 2),
            round(summary["total_intra_comm_s"] * 1000, 2),
            round(summary["total_attention_s"] * 1000, 2),
            round(summary.get("max_rank_exposed_comm_s", 0.0) * 1000, 2),
            round(per_round * 1e6, 1),
        )
        result.extra[label] = {
            "makespan_s": sim_result.makespan_s,
            "summary": summary,
            "per_round_inter_comm_s": per_round,
            "num_tasks": sim_result.num_tasks,
        }
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
