"""Table 2 — sequence length distribution of the three evaluation datasets.

Prints the per-bin proportions of ArXiv, GitHub and ProLong-64k exactly as the
paper tabulates them (normalised, since the published GitHub row sums to
0.945), alongside the mean length and long-tail mass that drive the scheduling
behaviour differences between the datasets.
"""

from __future__ import annotations

from repro.data.distributions import TABLE2_DISTRIBUTIONS
from repro.exec import SweepSpec
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment


@register_experiment(
    "table2", description="Table 2 — evaluation dataset length distributions"
)
def run() -> ExperimentResult:
    """Regenerate Table 2 plus derived statistics."""
    grid = SweepSpec(axes={"dataset": tuple(TABLE2_DISTRIBUTIONS)})
    bins = next(iter(TABLE2_DISTRIBUTIONS.values())).bins
    headers = (
        ["dataset"]
        + [b.label for b in bins]
        + ["mean_len_tokens", "frac_ge_32k"]
    )
    result = ExperimentResult(
        name="table2",
        description="Sequence length distribution of the evaluation datasets",
        headers=headers,
    )
    for point in grid:
        name = point["dataset"]
        dist = TABLE2_DISTRIBUTIONS[name]
        probs = [round(b.probability, 3) for b in dist.bins]
        result.add_row(
            name,
            *probs,
            int(dist.mean_length),
            round(dist.long_tail_fraction(32 * 1024), 3),
        )
        result.extra[name] = dist.histogram()
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
