"""Fig. 14 (extension) — the serving load curve: latency and goodput vs rate.

Not a figure from the paper: the paper evaluates one batch plan at a time.
This experiment drives the open-loop serving subsystem (:mod:`repro.serve`)
at increasing arrival rates over one session, reporting throughput, goodput,
tail latency, peak queue depth and cache behaviour per rate — the classic
load curve of an online system, here over simulated evaluation traffic.

One :class:`~repro.api.Session` serves every rate, so plan caches warm on
the first point and each run's in-run result cache makes repeated cells
near-free; the per-rate differences isolate *queueing* behaviour (arrival
pressure vs the concurrency limit), not simulation cost.

Expected shape: throughput tracks the offered rate while the system keeps
up; p99 latency and queue depth stay flat at low rates and grow sharply as
the offered load approaches the serving capacity; with an SLO set, goodput
peels away from throughput past the knee.
"""

from __future__ import annotations

from repro.api import Session
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

DEFAULT_RATES = (2.0, 5.0, 10.0, 25.0)
# Zeppelin-heavy traffic with baseline evaluations mixed in.
DEFAULT_MIX = {"zeppelin": 2.0, "te_cp": 1.0, "llama_cp": 1.0}


@register_experiment(
    "fig14_serving",
    description="Fig. 14 — open-loop serving load curve (latency/goodput vs arrival rate)",
)
def run(
    rates: tuple[float, ...] = DEFAULT_RATES,
    duration_s: float = 30.0,
    slo_s: float = 1.0,
    concurrency: int = 4,
    model: str = "3b",
    num_gpus: int = 16,
    dataset: str = "arxiv",
    total_context: int = 32 * 1024,
    num_steps: int = 1,
    seed: int = 0,
) -> ExperimentResult:
    """Serve the mix at each arrival rate and tabulate the load curve."""
    session = Session(
        model=model,
        num_gpus=num_gpus,
        dataset=dataset,
        total_context=total_context,
        num_steps=num_steps,
        seed=seed,
    )
    headers = [
        "rate_rps",
        "requests",
        "throughput_rps",
        "goodput_rps",
        "p50_ms",
        "p99_ms",
        "max_queue",
        "cache_hit_rate",
        "simulations",
    ]
    result = ExperimentResult(
        name="fig14_serving",
        description=(
            f"Open-loop serving of {model} evaluation cells on {num_gpus} GPUs "
            f"({duration_s:.0f}s windows, SLO {slo_s:.1f}s, "
            f"concurrency {concurrency})"
        ),
        headers=headers,
    )
    for rate in rates:
        res = session.serve(
            DEFAULT_MIX,
            rate=rate,
            duration_s=duration_s,
            concurrency=concurrency,
            slo_s=slo_s,
        )
        result.add_row(
            rate,
            res.num_requests,
            round(res.throughput_rps, 2),
            round(res.goodput_rps, 2),
            round(res.p50_latency_s * 1000, 1),
            round(res.p99_latency_s * 1000, 1),
            res.max_queue_depth,
            round(res.cache_hit_rate, 3),
            res.simulations,
        )
        result.extra[rate] = res.to_dict()
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
