"""Fig. 14 (extension) — the closed-loop serving knee and autoscaling.

Not a figure from the paper: the paper evaluates one batch plan at a time.
This experiment drives the serving subsystem (:mod:`repro.serve`) with
*closed-loop* clients — pools of virtual users that re-issue a think time
after their previous request completes — at a fixed SLO, growing the pool
between runs.  Each run uses ``slo_aware`` admission, so requests predicted
to miss the SLO are shed at arrival; the table is the classic fixed-SLO
latency-vs-load knee: latency stays flat while capacity keeps up, then the
knee appears as queueing pushes predicted completions past the SLO and
goodput saturates while shedding climbs.

One :class:`~repro.api.Session` serves every pool size, so plan caches warm
on the first point and each run's in-run result cache makes repeated cells
near-free; the per-point differences isolate *queueing* behaviour, not
simulation cost.

A final run repeats the heaviest pool with the ``queue_depth`` autoscale
policy and GPU headroom: the capacity timeline in ``extra["autoscale"]``
shows the virtual cluster growing with queue pressure and shrinking back as
the pool drains — capacity tracking load, byte-identical per seed.
"""

from __future__ import annotations

from repro.api import Session
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment
from repro.serve.spec import ServeSpec

DEFAULT_CLIENTS = (2, 8, 32, 128)
# Zeppelin-heavy traffic with baseline evaluations mixed in.
DEFAULT_MIX = {"zeppelin": 2.0, "te_cp": 1.0, "llama_cp": 1.0}


@register_experiment(
    "fig14_serving",
    description="Fig. 14 — closed-loop serving knee at a fixed SLO, plus autoscaling",
)
def run(
    clients: tuple[int, ...] = DEFAULT_CLIENTS,
    think_time_s: float = 0.5,
    duration_s: float = 30.0,
    slo_s: float = 2.0,
    concurrency: int = 4,
    model: str = "3b",
    num_gpus: int = 16,
    max_gpus: int = 64,
    dataset: str = "arxiv",
    total_context: int = 32 * 1024,
    num_steps: int = 1,
    seed: int = 0,
) -> ExperimentResult:
    """Serve the mix per closed-loop pool size and tabulate the knee."""
    session = Session(
        model=model,
        num_gpus=num_gpus,
        dataset=dataset,
        total_context=total_context,
        num_steps=num_steps,
        seed=seed,
    )
    headers = [
        "clients",
        "requests",
        "shed",
        "throughput_rps",
        "goodput_rps",
        "p50_ms",
        "p99_ms",
        "max_queue",
        "cache_hit_rate",
        "simulations",
    ]
    result = ExperimentResult(
        name="fig14_serving",
        description=(
            f"Closed-loop serving of {model} evaluation cells on {num_gpus} GPUs "
            f"({duration_s:.0f}s windows, SLO {slo_s:.1f}s, slo_aware admission, "
            f"concurrency {concurrency})"
        ),
        headers=headers,
    )
    base = ServeSpec(
        mix=DEFAULT_MIX,
        arrival="closed",
        think_time_s=think_time_s,
        duration_s=duration_s,
        concurrency=concurrency,
        slo_s=slo_s,
        admission="slo_aware",
    )
    for pool in clients:
        res = session.serve(base.replace(clients=pool))
        result.add_row(
            pool,
            res.num_requests,
            res.shed_count,
            round(res.throughput_rps, 2),
            round(res.goodput_rps, 2),
            round(res.p50_latency_s * 1000, 1),
            round(res.p99_latency_s * 1000, 1),
            res.max_queue_depth,
            round(res.cache_hit_rate, 3),
            res.simulations,
        )
        result.extra[pool] = res.to_dict()
    # The heaviest pool again, with capacity free to track the queue.
    scaled = session.serve(
        base.replace(
            clients=max(clients),
            scale_policy="queue_depth",
            min_gpus=num_gpus,
            max_gpus=max_gpus,
        )
    )
    result.extra["autoscale"] = scaled.to_dict()
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
