"""Run every experiment and write a machine-readable evaluation report.

``python -m repro.experiments.report [output.json]`` regenerates all of the
paper's tables and figures at laptop scale, writes the structured results to a
JSON file and prints the tables.  EXPERIMENTS.md's measured columns come from
this report.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable

from repro.obs.core import current_telemetry

from repro.experiments import (
    fig01_length_distributions,
    fig03_attention_cost_breakdown,
    fig05_zone_boundaries,
    fig08_end_to_end,
    fig09_scalability,
    fig10_cluster_comparison,
    fig11_ablation,
    fig12_timeline,
    fig13_resilience,
    table2_dataset_distributions,
    table3_cost_distribution,
)
from repro.experiments.common import ExperimentResult, jsonable as _jsonable

# Experiment id -> zero-argument callable producing an ExperimentResult.
_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig1": lambda: fig01_length_distributions.run(samples_per_dataset=10000),
    "table2": table2_dataset_distributions.run,
    "fig3": fig03_attention_cost_breakdown.run,
    "fig5": fig05_zone_boundaries.run,
    "fig8": lambda: fig08_end_to_end.run(num_steps=1),
    "fig9": lambda: fig09_scalability.run(num_steps=1),
    "fig10": lambda: fig10_cluster_comparison.run(num_steps=1),
    "fig11": lambda: fig11_ablation.run(num_steps=1),
    "fig12": fig12_timeline.run,
    "fig13_resilience": lambda: fig13_resilience.run(num_steps=1),
    "table3": table3_cost_distribution.run,
}


def generate_report(experiments: dict[str, Callable[[], ExperimentResult]] | None = None) -> dict:
    """Run the selected experiments and collect a structured report."""
    if experiments is None:
        experiments = _EXPERIMENTS
    report: dict[str, Any] = {"experiments": {}}
    tele = current_telemetry().stopwatch()
    for name, runner in experiments.items():
        with tele.span("experiment", experiment=name) as span:
            result = runner()
        report["experiments"][name] = {
            "description": result.description,
            "headers": list(result.headers),
            "rows": _jsonable(result.rows),
            "extra": _jsonable(result.extra),
            "elapsed_s": round(span.elapsed_s, 2),
            "table": result.to_text(),
        }
    return report


def main(argv: list[str] | None = None) -> int:
    """Entry point: run everything, print tables, optionally write JSON."""
    argv = sys.argv[1:] if argv is None else argv
    output_path = argv[0] if argv else None
    report = generate_report()
    for name, entry in report["experiments"].items():
        print(entry["table"])
        print(f"[{name} regenerated in {entry['elapsed_s']}s]")
        print()
    if output_path:
        serializable = {
            name: {k: v for k, v in entry.items() if k != "table"}
            for name, entry in report["experiments"].items()
        }
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(serializable, handle, indent=2)
        print(f"wrote {output_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
