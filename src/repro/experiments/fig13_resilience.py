"""Fig. 13 (extension) — goodput under faults, across recovery policies.

Not a figure from the paper: the paper evaluates a perfectly healthy cluster.
This experiment opens the resilience axis the production regime actually
lives in — it sweeps node failure rates (per-node MTTF) over zeppelin and the
baselines under both recovery policies, reporting goodput (useful tokens per
wall-clock second), restart counts and time lost.  Every (strategy, recovery)
cell faces the identical, deterministically drawn perturbation schedule, so
the comparison isolates scheduling + recovery behaviour, not luck.

The grid is one :class:`~repro.exec.SweepSpec` over (MTTF, recovery,
strategy) with the perturbation config derived per point, so the dynamics
axis participates in backend fan-out and result caching like any other axis.

Expected shape: goodput degrades as MTTF shrinks; elastic re-partition
degrades gracefully (keeps running on survivors) while checkpoint-restart
pays recomputation after every failure; zeppelin's relative advantage over
the baselines persists under faults.
"""

from __future__ import annotations

from repro.dynamics.models import PerturbationConfig
from repro.exec import SweepSpec, run_sweep
from repro.experiments.common import ExperimentResult, print_result
from repro.registry import register_experiment

DEFAULT_STRATEGIES = ("te_cp", "llama_cp", "zeppelin")
DEFAULT_RECOVERIES = ("checkpoint_restart", "elastic")
# Per-node MTTF values (seconds), chosen relative to the simulated run length
# so the sweep spans "rare failure" to "failure nearly every run".
DEFAULT_MTTF_S = (None, 60.0, 15.0)


@register_experiment(
    "fig13_resilience",
    description="Fig. 13 — goodput under node failures, stragglers and recovery policies",
)
def run(
    strategies: tuple[str, ...] = DEFAULT_STRATEGIES,
    recoveries: tuple[str, ...] = DEFAULT_RECOVERIES,
    mttf_values_s: tuple[float | None, ...] = DEFAULT_MTTF_S,
    straggler_frac: float = 0.125,
    model: str = "3b",
    num_gpus: int = 16,
    dataset: str = "arxiv",
    total_context: int = 32 * 1024,
    num_iterations: int = 24,
    num_steps: int = 2,
    seed: int = 0,
    backend: str | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> ExperimentResult:
    """Sweep failure rates x recovery policies over the strategy comparison."""
    spec = SweepSpec(
        base={
            "model": model,
            "num_gpus": num_gpus,
            "dataset": dataset,
            "total_context": total_context,
            "num_steps": num_steps,
            "seed": seed,
            "num_iterations": num_iterations,
        },
        axes={
            "mttf_s": mttf_values_s,
            "recovery": recoveries,
            "strategy": strategies,
        },
        derived={
            "perturbation": lambda v: PerturbationConfig(
                mttf_s=v["mttf_s"],
                straggler_frac=straggler_frac,
                max_failures=2,
            ).to_dict()
        },
    )
    sweep = run_sweep(spec, backend=backend, jobs=jobs, cache=use_cache)

    headers = [
        "mttf_s",
        "recovery",
        "strategy",
        "goodput_tok_s",
        "goodput_frac",
        "restarts",
        "failures",
        "time_lost_s",
        "final_nodes",
    ]
    result = ExperimentResult(
        name="fig13_resilience",
        description=(
            f"Goodput of {model} on {num_gpus} GPUs under failures "
            f"({num_iterations} iterations, {int(straggler_frac * 100)}% stragglers)"
        ),
        headers=headers,
    )
    for point, res in sweep:
        mttf_s = point["mttf_s"]
        result.add_row(
            "inf" if mttf_s is None else mttf_s,
            point["recovery"],
            point["strategy"],
            round(res.goodput_tokens_per_second),
            round(res.goodput_fraction, 3),
            res.restart_count,
            res.num_failures,
            round(res.time_lost_s, 1),
            res.final_num_nodes,
        )
        result.extra[(mttf_s, point["recovery"], point["strategy"])] = res.to_dict()
    result.extra["sweep_meta"] = dict(sweep.meta)
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
