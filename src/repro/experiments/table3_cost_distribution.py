"""Table 3 — per-component cost distribution under two length distributions.

7B model on four Cluster C nodes (32 GPUs), 128k total context.  The
"Balanced" batch samples one sequence from every Table 2 bucket; the "Skewed"
batch is one very long sequence plus several short ones.  For each component
the experiment reports the min-max range across ranks, mirroring the rows of
Table 3 (forward, forward quadratic attention, forward linear modules, forward
remapping, sequence partitioning, backward).
"""

from __future__ import annotations

from repro.api import Session
from repro.core.plan import TaskKind
from repro.data.datasets import balanced_case_study_batch, skewed_case_study_batch
from repro.exec import SweepSpec
from repro.experiments.common import ExperimentResult, print_result
from repro.obs.core import current_telemetry
from repro.registry import register_experiment
from repro.sim.engine import Simulator


def _component_ranges(strategy, batch, num_layers: int) -> dict[str, tuple[float, float]]:
    """Min-max per-rank times (seconds, whole model) for each component."""
    with current_telemetry().stopwatch().span("partition") as span:
        plan = strategy.plan_layer(batch, phase="forward")
    partition_s = span.elapsed_s
    sim = Simulator(record_trace=True)
    fwd = sim.run(plan)
    bwd = sim.run(strategy.plan_layer(batch, phase="backward"))

    ranks = sorted({s.rank for s in fwd.trace.spans if s.rank >= 0})
    attn, linear, remap, total = [], [], [], []
    for rank in ranks:
        attn.append(fwd.trace.busy_time(rank, kinds={TaskKind.ATTENTION}) * num_layers)
        linear.append(fwd.trace.busy_time(rank, kinds={TaskKind.LINEAR}) * num_layers)
        remap.append(fwd.trace.busy_time(rank, kinds={TaskKind.REMAP}) * num_layers)
        spans = fwd.trace.spans_for_rank(rank)
        end = max((s.end_s for s in spans), default=0.0)
        total.append(end * num_layers)
    bwd_total = [
        max((s.end_s for s in bwd.trace.spans_for_rank(rank)), default=0.0) * num_layers
        for rank in ranks
    ]

    def rng(values):
        return (min(values), max(values)) if values else (0.0, 0.0)

    return {
        "Forward": rng(total),
        "Forward Quadratic Attention": rng(attn),
        "Forward Linear Modules": rng(linear),
        "Forward Remapping Layer": rng(remap),
        "Forward Sequence Partition": (partition_s, partition_s),
        "Backward": rng(bwd_total),
    }


@register_experiment(
    "table3", description="Table 3 — per-component cost ranges across ranks"
)
def run(num_gpus: int = 32, total_context: int = 128 * 1024, seed: int = 0) -> ExperimentResult:
    """Regenerate the Table 3 cost-distribution ranges."""
    session = Session(
        model="7b",
        cluster_preset="C",
        num_gpus=num_gpus,
        dataset="arxiv",
        total_context=total_context,
        num_steps=1,
        seed=seed,
    )
    strategy = session.strategy("zeppelin")
    num_layers = session.spec.num_layers

    batches = {
        "Balanced": balanced_case_study_batch(total_context, seed=seed),
        "Skewed": skewed_case_study_batch(total_context, seed=seed),
    }
    grid = SweepSpec(axes={"case": tuple(batches)})

    headers = ["component", "balanced_ms_range", "skewed_ms_range"]
    result = ExperimentResult(
        name="table3",
        description="Cost distribution across ranks (7B, 128k, 4 Cluster C nodes)",
        headers=headers,
    )
    ranges = {
        point["case"]: _component_ranges(strategy, batches[point["case"]], num_layers)
        for point in grid
    }
    for component in ranges["Balanced"]:
        b_lo, b_hi = ranges["Balanced"][component]
        s_lo, s_hi = ranges["Skewed"][component]
        result.add_row(
            component,
            f"{b_lo * 1000:.0f} - {b_hi * 1000:.0f}",
            f"{s_lo * 1000:.0f} - {s_hi * 1000:.0f}",
        )
    result.extra = {name: dict(r) for name, r in ranges.items()}
    return result


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
