"""Event queue primitives for the discrete-event engine."""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(order=True)
class Event:
    """A task-completion event ordered by time (ties broken by sequence number)."""

    time_s: float
    sequence: int
    task_id: int = field(compare=False)


class EventQueue:
    """A min-heap of completion events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = 0

    def push(self, time_s: float, task_id: int) -> None:
        """Schedule the completion of ``task_id`` at ``time_s``."""
        if time_s < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, Event(time_s=time_s, sequence=self._counter, task_id=task_id))
        self._counter += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
