"""Event primitives for the discrete-event engine.

:class:`ResourceEvent` is the engine-level vocabulary of
:mod:`repro.dynamics`; :func:`compile_resource_events` lowers a schedule of
them onto a plan's interned resource ids (dropping resources the plan never
mentions) so the engine's hot loop only ever touches dense integers.

Within one simulated timestamp, event *kinds* are ordered: task completions
(:data:`FINISH`) settle before perturbations (:data:`PERTURB`) apply, so a
task finishing exactly when its resource dies counts as completed.

:class:`EventQueue` remains for the frozen reference engine
(:mod:`repro.sim._reference`) and external callers; the unified engine keeps
its own flat heap of ``(time, kind, seq, ...)`` tuples.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping, Sequence

# Event-kind ordering within one timestamp (heap tuples sort on these).
FINISH = 0
PERTURB = 1


@dataclass(frozen=True)
class ResourceEvent:
    """A timed change to the state of one or more simulator resources.

    This is the engine-level vocabulary of :mod:`repro.dynamics`: cluster-level
    perturbations (GPU stragglers, NIC degradation, node failures) compile down
    to resource events before the simulator sees them.

    Attributes
    ----------
    time_s:
        Absolute time the change takes effect.  The simulator converts it to
        plan-local time via its ``start_time_s`` argument; events at or before
        the start of the simulation set the initial resource state.
    resources:
        Resource names affected (``compute:3``, ``nic:1:tx``...).  Names not
        used by the simulated plan are ignored.
    factor:
        New speed factor of the resources (1.0 = healthy, 0.5 = half speed).
        ``None`` means the resources *fail*: tasks holding them are aborted
        and tasks requiring them can never start.
    """

    time_s: float
    resources: tuple[str, ...]
    factor: float | None = 1.0

    def __post_init__(self) -> None:
        if self.factor is not None and not 0.0 < self.factor:
            raise ValueError("speed factor must be positive (use factor=None for failure)")
        if not self.resources:
            raise ValueError("a resource event must name at least one resource")

    @property
    def is_failure(self) -> bool:
        return self.factor is None


def compile_resource_events(
    events: Sequence[ResourceEvent],
    resource_index: Mapping[str, int],
    start_time_s: float,
) -> tuple[
    list[tuple[float | None, tuple[int, ...]]],
    list[tuple[float, float | None, tuple[int, ...]]],
]:
    """Lower resource events onto a compiled plan's dense resource ids.

    Returns ``(initial, timed)``: ``initial`` holds ``(factor, resource_ids)``
    for events at or before the simulation start (they set the initial
    speed/alive state), ``timed`` holds ``(plan_local_time, factor,
    resource_ids)`` sorted by time.  ``factor is None`` means failure.
    Events naming only resources the plan never mentions are dropped.
    """
    initial: list[tuple[float | None, tuple[int, ...]]] = []
    timed: list[tuple[float, float | None, tuple[int, ...]]] = []
    for event in sorted(events, key=lambda e: e.time_s):
        rids = tuple(
            resource_index[r] for r in event.resources if r in resource_index
        )
        if not rids:
            continue
        local = event.time_s - start_time_s
        if local <= 0.0:
            initial.append((event.factor, rids))
        else:
            timed.append((local, event.factor, rids))
    return initial, timed


@dataclass(order=True)
class Event:
    """A task-completion event ordered by time (ties broken by sequence number)."""

    time_s: float
    sequence: int
    task_id: int = field(compare=False)


class EventQueue:
    """A min-heap of completion events."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = 0

    def push(self, time_s: float, task_id: int) -> None:
        """Schedule the completion of ``task_id`` at ``time_s``."""
        if time_s < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, Event(time_s=time_s, sequence=self._counter, task_id=task_id))
        self._counter += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
