"""Execution traces: per-task spans and per-rank timeline accounting (Fig. 12).

The simulator records one span per executed task.  The trace answers the
questions the paper's timeline analysis asks: how long each rank spends in
attention compute, intra-node communication and inter-node communication, how
much of the communication is hidden behind compute, and what the per-round
costs look like.

Storage is *columnar*: the engine's hot loop appends plain values to parallel
arrays via :meth:`Trace.record` instead of constructing a :class:`TraceSpan`
object per task.  ``trace.spans`` materialises the span objects lazily (and
caches them), so every existing consumer — timeline rendering, Chrome-trace
export, the Fig. 12 / Table 3 accounting — sees the same list-of-spans API as
before.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.plan import TaskKind


@dataclass(frozen=True)
class TraceSpan:
    """One executed task: when it ran, where, and what kind of work it was.

    ``aborted`` marks a task that was cut short by a resource failure
    (:mod:`repro.dynamics`); its ``end_s`` is the failure time, not a natural
    completion.
    """

    task_id: int
    name: str
    kind: TaskKind
    rank: int
    start_s: float
    end_s: float
    aborted: bool = False

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "name": self.name,
            "kind": self.kind.value,
            "rank": self.rank,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "aborted": self.aborted,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceSpan":
        return cls(
            task_id=data["task_id"],
            name=data["name"],
            kind=TaskKind(data["kind"]),
            rank=data["rank"],
            start_s=data["start_s"],
            end_s=data["end_s"],
            aborted=data.get("aborted", False),
        )


class Trace:
    """All spans of one simulated plan, stored as parallel per-field arrays."""

    __slots__ = ("_task_ids", "_names", "_kinds", "_ranks", "_starts", "_ends", "_aborted", "_spans")

    def __init__(self, spans: list[TraceSpan] | None = None) -> None:
        self._task_ids: list[int] = []
        self._names: list[str] = []
        self._kinds: list[TaskKind] = []
        self._ranks: list[int] = []
        self._starts: list[float] = []
        self._ends: list[float] = []
        self._aborted: list[bool] = []
        self._spans: list[TraceSpan] | None = None
        for span in spans or ():
            self.add(span)

    def record(
        self,
        task_id: int,
        name: str,
        kind: TaskKind,
        rank: int,
        start_s: float,
        end_s: float,
        aborted: bool = False,
    ) -> None:
        """Append one span by columns (the engine's fast path)."""
        self._spans = None
        self._task_ids.append(task_id)
        self._names.append(name)
        self._kinds.append(kind)
        self._ranks.append(rank)
        self._starts.append(start_s)
        self._ends.append(end_s)
        self._aborted.append(aborted)

    def add(self, span: TraceSpan) -> None:
        """Append one span object (columnar under the hood)."""
        self.record(
            span.task_id, span.name, span.kind, span.rank,
            span.start_s, span.end_s, span.aborted,
        )

    @property
    def spans(self) -> list[TraceSpan]:
        """The spans as objects, materialised lazily and cached.

        The returned list is a snapshot view — mutate the trace through
        :meth:`add`/:meth:`record`, not by appending to this list.
        """
        if self._spans is None:
            self._spans = [
                TraceSpan(
                    task_id=tid, name=name, kind=kind, rank=rank,
                    start_s=start, end_s=end, aborted=aborted,
                )
                for tid, name, kind, rank, start, end, aborted in zip(
                    self._task_ids, self._names, self._kinds, self._ranks,
                    self._starts, self._ends, self._aborted,
                )
            ]
        return self._spans

    def __len__(self) -> int:
        return len(self._task_ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.spans == other.spans

    @property
    def makespan_s(self) -> float:
        """Wall-clock span of the trace (latest end time)."""
        return max(self._ends, default=0.0)

    @property
    def aborted_spans(self) -> list[TraceSpan]:
        """Spans cut short by a resource failure."""
        return [s for s in self.spans if s.aborted]

    # -- export -----------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """JSON-safe span rows, in recording order."""
        return [s.to_dict() for s in self.spans]

    def to_json(self, indent: int | None = None) -> str:
        """Serialise the trace (e.g. for offline timeline tooling)."""
        return json.dumps(self.to_dicts(), indent=indent)

    def to_chrome_dict(self, process_name: str = "repro simulation") -> dict:
        """Chrome-trace (``chrome://tracing`` / Perfetto) event form.

        Ranks map to threads of a single process; every span becomes one
        complete (``"ph": "X"``) event with microsecond timestamps, the task
        kind as its category, and task id / abort status in ``args``.
        Aborted spans are tinted via ``cname`` so failures stand out in the
        timeline.
        """
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        for rank in sorted({s.rank for s in self.spans}):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": rank,
                    "args": {"name": f"rank {rank}" if rank >= 0 else "global"},
                }
            )
        for span in self.spans:
            event = {
                "name": span.name,
                "cat": span.kind.value,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": 0,
                "tid": span.rank,
                "args": {"task_id": span.task_id, "aborted": span.aborted},
            }
            if span.aborted:
                event["cname"] = "terrible"
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_chrome_json(
        self, indent: int | None = None, process_name: str = "repro simulation"
    ) -> str:
        """Serialise for ``chrome://tracing`` / Perfetto (see ``repro trace``)."""
        return json.dumps(self.to_chrome_dict(process_name=process_name), indent=indent)

    @classmethod
    def from_dicts(cls, rows: list[dict]) -> "Trace":
        """Rebuild a trace from :meth:`to_dicts` output."""
        trace = cls()
        for row in rows:
            trace.add(TraceSpan.from_dict(row))
        return trace

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Rebuild a trace from :meth:`to_json` output."""
        return cls.from_dicts(json.loads(text))

    def spans_for_rank(self, rank: int) -> list[TraceSpan]:
        """Spans attributed to a rank, ordered by start time."""
        return sorted(
            (s for s in self.spans if s.rank == rank), key=lambda s: s.start_s
        )

    def busy_time(self, rank: int, kinds: set[TaskKind] | None = None) -> float:
        """Total busy time of a rank, optionally restricted to task kinds.

        Overlapping spans (e.g. a compute task and a NIC transfer attributed to
        the same rank) are merged so the result never exceeds the makespan.
        """
        intervals = [
            (s.start_s, s.end_s)
            for s in self.spans
            if s.rank == rank and (kinds is None or s.kind in kinds) and s.end_s > s.start_s
        ]
        if not intervals:
            return 0.0
        intervals.sort()
        merged_total = 0.0
        cur_start, cur_end = intervals[0]
        for start, end in intervals[1:]:
            if start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                merged_total += cur_end - cur_start
                cur_start, cur_end = start, end
        merged_total += cur_end - cur_start
        return merged_total

    def time_by_kind(self) -> dict[TaskKind, float]:
        """Total (non-overlap-merged) duration by task kind."""
        totals: dict[TaskKind, float] = {}
        for s in self.spans:
            totals[s.kind] = totals.get(s.kind, 0.0) + s.duration_s
        return totals

    def communication_exposed_s(self, rank: int) -> float:
        """Communication time of a rank not hidden behind its compute.

        Computed as the union of the rank's communication spans minus the parts
        overlapping any of its compute spans — the "bubbles" of Fig. 12.
        """
        comm = [
            (s.start_s, s.end_s)
            for s in self.spans
            if s.rank == rank and s.kind.is_communication and s.end_s > s.start_s
        ]
        compute = [
            (s.start_s, s.end_s)
            for s in self.spans
            if s.rank == rank and not s.kind.is_communication and s.end_s > s.start_s
        ]
        if not comm:
            return 0.0
        exposed = 0.0
        for c_start, c_end in comm:
            segments = [(c_start, c_end)]
            for k_start, k_end in compute:
                next_segments = []
                for s_start, s_end in segments:
                    if k_end <= s_start or k_start >= s_end:
                        next_segments.append((s_start, s_end))
                        continue
                    if k_start > s_start:
                        next_segments.append((s_start, k_start))
                    if k_end < s_end:
                        next_segments.append((k_end, s_end))
                segments = next_segments
            exposed += sum(e - s for s, e in segments)
        return exposed


def summarize_trace(trace: Trace, ranks: list[int] | None = None) -> dict[str, float]:
    """Aggregate statistics used by the Fig. 12 / Table 3 reproductions."""
    if ranks is None:
        ranks = sorted({s.rank for s in trace.spans if s.rank >= 0})
    by_kind = trace.time_by_kind()
    compute_kinds = {TaskKind.ATTENTION, TaskKind.LINEAR}
    summary = {
        "makespan_s": trace.makespan_s,
        "total_attention_s": by_kind.get(TaskKind.ATTENTION, 0.0),
        "total_linear_s": by_kind.get(TaskKind.LINEAR, 0.0),
        "total_intra_comm_s": by_kind.get(TaskKind.INTRA_COMM, 0.0)
        + by_kind.get(TaskKind.DISPATCH, 0.0)
        + by_kind.get(TaskKind.COMBINE, 0.0),
        "total_inter_comm_s": by_kind.get(TaskKind.INTER_COMM, 0.0),
        "total_remap_s": by_kind.get(TaskKind.REMAP, 0.0),
    }
    if ranks:
        busy = [trace.busy_time(r, kinds=compute_kinds) for r in ranks]
        exposed = [trace.communication_exposed_s(r) for r in ranks]
        summary["max_rank_compute_s"] = max(busy)
        summary["min_rank_compute_s"] = min(busy)
        summary["mean_rank_compute_s"] = sum(busy) / len(busy)
        summary["max_rank_exposed_comm_s"] = max(exposed)
        summary["mean_rank_exposed_comm_s"] = sum(exposed) / len(exposed)
    return summary
