"""Discrete-event simulator that times execution plans.

The simulator plays the role of the GPU cluster: it executes the task graph a
strategy emitted, respecting dependencies and exclusive resources (compute
streams, NIC directions, NVSwitch ports), and reports the makespan plus
per-rank / per-kind time accounting.  Overlap between computation and
communication is not assumed — it emerges from tasks on different resources
running concurrently, exactly as it does with CUDA streams and NCCL channels
on real hardware.
"""

from repro.sim.compile import CompiledPlan, compile_plan
from repro.sim.engine import Simulator, SimulationResult, simulate
from repro.sim.events import ResourceEvent
from repro.sim.trace import Trace, TraceSpan, summarize_trace
from repro.sim.visualize import render_timeline, timeline_summary_lines

__all__ = [
    "CompiledPlan",
    "compile_plan",
    "Simulator",
    "SimulationResult",
    "simulate",
    "ResourceEvent",
    "Trace",
    "TraceSpan",
    "summarize_trace",
    "render_timeline",
    "timeline_summary_lines",
]
