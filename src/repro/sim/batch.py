"""Batched lane-parallel simulation over one shared ``CompiledPlan`` structure.

The workloads this repo sweeps are dominated by re-simulating *nearly
identical* plans: sweep grids that vary only scalar durations, serve mixes
that re-execute the same handful of cells, and resilience drivers that
re-time one DAG under different speed schedules.  :class:`CompiledPlan`
amortised *compilation* across those runs; this module amortises the
simulation itself.  :func:`simulate_batch` executes K duration/event
variants ("lanes") of one compiled structure in a single pass:

* **shared structure, loaded once** — the CSR dependent arrays, resource-id
  tuples and dispatch keys are bound to locals once per batch, and the
  duration-independent *initial dispatch* (which zero-dependency tasks start
  at t=0, where the blocked ones park) is precomputed once and reused by
  every lane;
* **lane dedup** — lanes with identical ``(durations, events, start)`` over
  the same structure collapse to one simulation whose result is fanned back
  out to every requester (the serve/replica case);
* **schedule replay** — the first simulated lane records its *schedule*
  (the grouping of same-instant completions and the dispatch decisions each
  group triggered).  Engine decisions depend on durations only through the
  grouping and ordering of completion instants, so a later lane whose
  completion times produce the same grouping is replayed arithmetically:
  one ``end = start + duration`` (or ``/rate``) per task instead of a full
  event loop.  Replay *verifies* the grouping on the fly — every member of
  a group must land on the bitwise-identical instant, group times must be
  non-decreasing, and an equal-time group must have been dispatched by its
  predecessor — and falls back to the full per-lane loop when any check
  fails, adopting the fallback lane's schedule as the new pilot.

Results are bit-identical to N sequential :meth:`Simulator.run` calls by
construction: the replay verification accepts exactly the lanes whose event
loop would retrace the pilot's decisions, the fallback loop replicates the
engine's semantics (and is asserted equivalent by the test suite), and
lanes the lean path cannot take — timed perturbations, failures, trace
recording — are delegated to the real engine, lane by lane.

:func:`simulate_many` is the producer-facing entry: it accepts requests
over *different* plans, groups them by :attr:`CompiledPlan.structure_key`,
and runs one batch per structure.  ``repro.training.throughput``,
``repro.serve.batcher`` (via the sweep worker) and
``repro.dynamics.recovery`` all funnel through it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Sequence

from repro.core.plan import ExecutionPlan
from repro.obs.core import Telemetry, as_telemetry
from repro.sim.compile import CompiledPlan, compile_plan
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.events import ResourceEvent, compile_resource_events
from repro.sim.trace import Trace


@dataclass(frozen=True)
class Lane:
    """One variant of a shared plan structure: durations, events, attribution.

    ``durations`` of ``None`` means "the batch structure's own durations".
    ``plan`` is the plan results are attributed to (``SimulationResult.plan``
    and trace names); it defaults to the batch structure's plan and must
    share its structure.
    """

    durations: tuple[float, ...] | None = None
    events: tuple[ResourceEvent, ...] = ()
    start_time_s: float = 0.0
    plan: ExecutionPlan | None = None


@dataclass(frozen=True)
class SimRequest:
    """One simulation a producer wants: a plan plus its dynamic conditions."""

    plan: "ExecutionPlan | CompiledPlan"
    events: tuple[ResourceEvent, ...] = ()
    start_time_s: float = 0.0


class _Schedule:
    """A recorded pilot schedule: the decision trace replay retraces.

    ``init_started`` are the tasks dispatched at t=0 (duration-independent).
    ``groups`` holds, per completion instant in pilot order, the tasks that
    finished together and the tasks that dispatch started in response (in
    dispatch order).  ``start_group`` maps a task to the index of the group
    that started it (-1 for initial tasks) — the evidence the equal-time
    verification needs.
    """

    __slots__ = ("init_started", "groups", "start_group")

    def __init__(self, init_started, groups, start_group):
        self.init_started = init_started
        self.groups = groups
        self.start_group = start_group


class _SharedStructure:
    """Per-batch precomputation: structure arrays + initial dispatch template."""

    __slots__ = (
        "cp",
        "task_res",
        "keys",
        "dep_counts",
        "dep_indptr",
        "dep_ids",
        "num_res",
        "init_started",
        "init_waiters",
        "init_busy",
    )

    def __init__(self, cp: CompiledPlan):
        self.cp = cp
        self.task_res = cp.task_resources
        self.keys = cp.dispatch_keys
        self.dep_counts = cp.dep_counts
        self.dep_indptr = cp.dependents_indptr
        self.dep_ids = cp.dependents_ids
        self.num_res = cp.num_resources
        # Initial dispatch is duration-independent: which zero-dependency
        # tasks start at t=0 and where the blocked ones park depend only on
        # structure, so the engine's first dispatch() is replayed here once
        # per batch instead of once per lane.
        busy = [False] * self.num_res
        waiters: list[list[int]] = [[] for _ in range(self.num_res)]
        started: list[int] = []
        for tid in sorted(cp.initial_ready, key=self.keys.__getitem__):
            res = self.task_res[tid]
            ok = True
            for rid in res:
                if busy[rid]:
                    waiters[rid].append(tid)
                    ok = False
                    break
            if ok:
                for rid in res:
                    busy[rid] = True
                started.append(tid)
        self.init_started = tuple(started)
        self.init_waiters = waiters
        self.init_busy = busy


def _lane_speeds(
    cp: CompiledPlan, lane: Lane
) -> "tuple[list[float], bool] | None":
    """Per-resource speeds for a lean-path lane, or ``None`` if ineligible.

    The lean kernel handles lanes whose events all reduce to *initial* speed
    factors (the shape ``dynamics`` produces for persistent slowdowns).
    Timed perturbations, failures, and mid-run re-timing stay with the real
    engine.
    """
    if not lane.events:
        return [], False
    initial, timed = compile_resource_events(
        lane.events, cp.resource_index, lane.start_time_s
    )
    if timed:
        return None
    speed = [1.0] * cp.num_resources
    for factor, rids in initial:
        if factor is None:  # failure: dispatch semantics change, engine path
            return None
        for rid in rids:
            speed[rid] = factor
    return speed, any(s != 1.0 for s in speed)


def _run_recording(shared, durations, rates, has_pert, plan):
    """Full lean event loop for one lane, capturing its schedule.

    Replicates the engine's static/initial-factor semantics exactly: exact
    same-instant draining on pushed times, one monotonic push counter for
    tie order, candidates sorted by ``(priority, task_id)``, blocked tasks
    parking at the first busy resource, and ``duration / rate`` arithmetic
    only when a factor is active (matching the engine's perturbation gate,
    so the float results are bitwise identical).
    """
    cp = shared.cp
    n = cp.num_tasks
    task_res = shared.task_res
    keys = shared.keys
    dep_indptr = shared.dep_indptr
    dep_ids = shared.dep_ids
    busy = shared.init_busy[:]
    waiters = [w[:] if w else [] for w in shared.init_waiters]
    remaining_deps = list(shared.dep_counts)
    init_started = shared.init_started

    start_times: dict[int, float] = {}
    end_times: dict[int, float] = {}
    heap: list[tuple[float, int, int]] = []
    seq = 0
    start_group = [-1] * n
    groups: list[tuple[tuple[int, ...], tuple[int, ...]]] = []

    for tid in init_started:
        start_times[tid] = 0.0
        finish = durations[tid] / rates[tid] if has_pert else durations[tid]
        heappush(heap, (finish, seq, tid))
        seq += 1
    if not heap:
        raise RuntimeError(
            "deadlock at time 0: ready tasks cannot acquire resources"
        )

    completed = 0
    now = 0.0
    while heap:
        now = heap[0][0]
        members: list[int] = []
        candidates: list[int] = []
        while heap and heap[0][0] == now:
            _, _, tid = heappop(heap)
            members.append(tid)
            end_times[tid] = now
            completed += 1
            for rid in task_res[tid]:
                busy[rid] = False
                freed = waiters[rid]
                if freed:
                    candidates.extend(freed)
                    waiters[rid] = []
            for j in range(dep_indptr[tid], dep_indptr[tid + 1]):
                dep_tid = dep_ids[j]
                remaining_deps[dep_tid] -= 1
                if remaining_deps[dep_tid] == 0:
                    candidates.append(dep_tid)
        group_index = len(groups)
        starters: list[int] = []
        if candidates:
            if len(candidates) > 1:
                candidates.sort(key=keys.__getitem__)
            for tid in candidates:
                res = task_res[tid]
                startable = True
                for rid in res:
                    if busy[rid]:
                        waiters[rid].append(tid)
                        startable = False
                        break
                if startable:
                    for rid in res:
                        busy[rid] = True
                    start_times[tid] = now
                    finish = (
                        now + durations[tid] / rates[tid]
                        if has_pert
                        else now + durations[tid]
                    )
                    heappush(heap, (finish, seq, tid))
                    seq += 1
                    starters.append(tid)
                    start_group[tid] = group_index
        groups.append((tuple(members), tuple(starters)))

    if completed != n:
        raise RuntimeError(
            f"simulation finished with {completed}/{n} tasks completed; "
            "the plan contains an unsatisfiable dependency"
        )
    result = SimulationResult(
        makespan_s=now,
        trace=Trace(),
        plan=plan,
        start_times=start_times,
        end_times=end_times,
    )
    schedule = _Schedule(init_started, tuple(groups), start_group)
    return result, schedule


def _replay(schedule, durations, rates, has_pert, plan):
    """Arithmetic replay of a pilot schedule, or ``None`` if it diverges.

    Verification accepts a lane iff its completion times reproduce the
    pilot's grouping and ordering — exactly the information the engine's
    decisions consume beyond structure:

    * every member of a group ends at the bitwise-identical instant (a split
      or foreign-time member fails here);
    * group times are non-decreasing (a reordering fails here);
    * a group at the *same* instant as its predecessor consists only of
      tasks the predecessor dispatched (the zero-duration / same-instant
      push case — anything else would have been drained into the earlier
      group by the engine).
    """
    init_started = schedule.init_started
    start_group = schedule.start_group
    ends: dict[int, float] = {}
    start_times: dict[int, float] = {}
    end_times: dict[int, float] = {}
    for tid in init_started:
        start_times[tid] = 0.0
        ends[tid] = durations[tid] / rates[tid] if has_pert else durations[tid]
    prev_t = -1.0
    for index, (members, starters) in enumerate(schedule.groups):
        t = ends[members[0]]
        if t < prev_t:
            return None
        if t == prev_t:
            previous = index - 1
            for tid in members:
                if start_group[tid] != previous:
                    return None
        for tid in members:
            if ends[tid] != t:
                return None
            end_times[tid] = t
        prev_t = t
        if has_pert:
            for tid in starters:
                start_times[tid] = t
                ends[tid] = t + durations[tid] / rates[tid]
        else:
            for tid in starters:
                start_times[tid] = t
                ends[tid] = t + durations[tid]
    return SimulationResult(
        makespan_s=prev_t if end_times else 0.0,
        trace=Trace(),
        plan=plan,
        start_times=start_times,
        end_times=end_times,
    )


def _simulate_group(
    cp: CompiledPlan,
    lanes: Sequence[Lane],
    record_trace: bool,
    dedup: bool,
) -> tuple[list["SimulationResult | None"], int, int]:
    """Simulate one structure's lanes; returns (results, deduped, replayed)."""
    results: list[SimulationResult | None] = [None] * len(lanes)
    slots: dict[tuple, list[int]] = {}
    for i, lane in enumerate(lanes):
        if dedup:
            key = (
                lane.durations if lane.durations is not None else cp.durations,
                lane.events,
                lane.start_time_s,
                id(lane.plan) if lane.plan is not None else id(cp.plan),
            )
        else:
            key = (i,)
        slots.setdefault(key, []).append(i)
    deduped = len(lanes) - len(slots)

    shared: _SharedStructure | None = None
    schedule: _Schedule | None = None
    fallback_sim: Simulator | None = None
    replayed = 0
    for indices in slots.values():
        lane = lanes[indices[0]]
        durations = lane.durations if lane.durations is not None else cp.durations
        plan = lane.plan if lane.plan is not None else cp.plan
        speeds = None if record_trace or cp.num_tasks == 0 else _lane_speeds(cp, lane)
        if speeds is None:
            # Trace recording, timed perturbations, failures, or an empty
            # plan: the real engine handles this lane (still grouped, still
            # deduped — just not lean).
            if fallback_sim is None:
                fallback_sim = Simulator(record_trace=record_trace)
            lane_cp = (
                cp
                if durations is cp.durations and plan is cp.plan
                else dataclasses.replace(cp, plan=plan, durations=durations)
            )
            result = fallback_sim.run(
                lane_cp, events=lane.events, start_time_s=lane.start_time_s
            )
        else:
            speed, has_pert = speeds
            if has_pert:
                task_res = cp.task_resources
                rates = [
                    min((speed[rid] for rid in res), default=1.0)
                    for res in task_res
                ]
            else:
                rates = None
            result = None
            if schedule is not None:
                result = _replay(schedule, durations, rates, has_pert, plan)
                if result is not None:
                    replayed += 1
            if result is None:
                if shared is None:
                    shared = _SharedStructure(cp)
                result, schedule = _run_recording(
                    shared, durations, rates, has_pert, plan
                )
        for i in indices:
            results[i] = result
    return results, deduped, replayed


def _emit(tele: Telemetry, lanes: int, deduped: int, structures: int, replayed: int):
    tele.counter("batch_lanes", lanes)
    tele.counter("batch_lanes_deduped", deduped)
    tele.counter("batch_lanes_replayed", replayed)
    tele.event(
        "batch_simulate",
        lanes=lanes,
        deduped=deduped,
        structures=structures,
        replayed=replayed,
    )


def simulate_batch(
    compiled: "ExecutionPlan | CompiledPlan",
    lanes: Sequence[Lane],
    *,
    record_trace: bool = False,
    dedup: bool = True,
    telemetry: "Telemetry | None" = None,
) -> list[SimulationResult]:
    """Simulate K lanes of one shared structure; results in lane order.

    Bit-identical to running each lane through :meth:`Simulator.run`
    sequentially (deduped lanes share one result *object*; its values are
    identical).  ``telemetry`` defaults to the ambient hub and is
    observational only.
    """
    cp = compiled if isinstance(compiled, CompiledPlan) else compile_plan(compiled)
    results, deduped, replayed = _simulate_group(cp, lanes, record_trace, dedup)
    _emit(as_telemetry(telemetry), len(lanes), deduped, 1, replayed)
    return results  # type: ignore[return-value]


def simulate_many(
    requests: Sequence[SimRequest],
    *,
    record_trace: bool = False,
    dedup: bool = True,
    telemetry: "Telemetry | None" = None,
) -> list[SimulationResult]:
    """Simulate arbitrary plans, batching the ones that share structure.

    Requests are grouped by :attr:`CompiledPlan.structure_key`; each group
    runs as one :func:`simulate_batch`-style pass (per-lane durations come
    from each request's own compiled plan), results return in request order.
    """
    compiled = [
        r.plan if isinstance(r.plan, CompiledPlan) else compile_plan(r.plan)
        for r in requests
    ]
    groups: dict[tuple, list[int]] = {}
    for i, cp in enumerate(compiled):
        groups.setdefault(cp.structure_key, []).append(i)

    results: list[SimulationResult | None] = [None] * len(requests)
    deduped = 0
    replayed = 0
    for indices in groups.values():
        cp0 = compiled[indices[0]]
        lanes = [
            Lane(
                durations=compiled[i].durations,
                events=tuple(requests[i].events),
                start_time_s=requests[i].start_time_s,
                plan=compiled[i].plan,
            )
            for i in indices
        ]
        group_results, group_deduped, group_replayed = _simulate_group(
            cp0, lanes, record_trace, dedup
        )
        deduped += group_deduped
        replayed += group_replayed
        for i, result in zip(indices, group_results):
            results[i] = result
    _emit(as_telemetry(telemetry), len(requests), deduped, len(groups), replayed)
    return results  # type: ignore[return-value]
