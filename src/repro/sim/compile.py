"""Precompiled plan representation for the discrete-event engine.

An :class:`~repro.core.plan.ExecutionPlan` is a list of task objects holding
string resource names and per-task dependency tuples — convenient to build,
slow to simulate: every engine step would hash strings, chase attributes and
re-derive the dependency fan-out.  :class:`CompiledPlan` lowers the plan once
into dense integer form:

* resource names are *interned* to dense ids (``0..num_resources-1``), so the
  engine's busy/speed/alive state is plain array indexing;
* each task's resources become a tuple of those ids;
* the dependent edges (who becomes ready when I finish) are flattened into a
  CSR-style pair of arrays (``dependents_indptr`` / ``dependents_ids``);
* the dispatch tie-break key ``(priority, task_id)`` is precomputed per task.

Compilation runs :meth:`ExecutionPlan.validate` once, so the engine itself
never re-validates.  The result is cached on the plan object (invalidated by
:meth:`ExecutionPlan.add`); because :class:`repro.api.Session` memoises plans
per (strategy, batch, phase) and ``repro.exec``'s ``SessionPool`` shares
sessions across sweep points, one compile is amortised over every re-simulation
of that plan — warm sweep points and resilience iterations skip straight to
the hot loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.plan import ExecutionPlan


@dataclass(frozen=True)
class CompiledPlan:
    """Dense, engine-ready form of one :class:`ExecutionPlan`.

    All arrays are indexed by ``task_id`` (or resource id where noted); the
    original plan stays reachable as :attr:`plan` for trace attribution and
    result reporting.
    """

    plan: ExecutionPlan
    num_tasks: int
    # -- interned resources -----------------------------------------------------
    resource_names: tuple[str, ...]  # dense id -> name
    resource_index: dict[str, int]  # name -> dense id
    # -- per-task columns -------------------------------------------------------
    durations: tuple[float, ...]
    task_resources: tuple[tuple[int, ...], ...]  # resource ids held by each task
    dispatch_keys: tuple[tuple[int, int], ...]  # (priority, task_id)
    dep_counts: tuple[int, ...]  # number of dependencies per task
    # -- dependent adjacency, CSR-flattened -------------------------------------
    dependents_indptr: tuple[int, ...]  # len == num_tasks + 1
    dependents_ids: tuple[int, ...]  # concatenated dependents of each task
    # -- initial state ----------------------------------------------------------
    initial_ready: tuple[int, ...]  # zero-dependency tasks, in id order

    @property
    def num_resources(self) -> int:
        return len(self.resource_names)

    @cached_property
    def structure_key(self) -> tuple:
        """Content identity of the plan's *structure*, durations excluded.

        Two compiled plans with equal keys have the same DAG shape, the same
        interned resources and the same dispatch keys — they differ at most
        in per-task durations, which means they are simulatable together as
        lanes of one :func:`repro.sim.batch.simulate_batch` call.  Because
        resource ids are interned in first-use order, equal structure implies
        equal dense ids, so every shared array of one plan is valid for the
        other.

        The key is recomputed whenever the plan recompiles: appending a task
        via :meth:`ExecutionPlan.add` drops the cached ``CompiledPlan``, and
        the replacement object carries a fresh ``cached_property`` slot.
        """
        return (
            self.num_tasks,
            self.resource_names,
            self.task_resources,
            self.dispatch_keys,
            self.dep_counts,
            self.dependents_indptr,
            self.dependents_ids,
            self.initial_ready,
        )

    def dependents_of(self, task_id: int) -> tuple[int, ...]:
        """The tasks unblocked (in part) by ``task_id`` finishing."""
        lo = self.dependents_indptr[task_id]
        hi = self.dependents_indptr[task_id + 1]
        return self.dependents_ids[lo:hi]


def compile_plan(plan: ExecutionPlan) -> CompiledPlan:
    """Lower ``plan`` to a :class:`CompiledPlan`, reusing the cached compile.

    The cache lives on the plan object itself (``plan._compiled``); it is
    dropped whenever :meth:`ExecutionPlan.add` appends a task, and a stale
    entry from direct ``plan.tasks`` mutation is detected by task count.
    Callers normally go through :meth:`ExecutionPlan.compiled`.
    """
    cached = getattr(plan, "_compiled", None)
    if cached is not None and cached.num_tasks == len(plan.tasks):
        return cached
    compiled = _compile(plan)
    plan._compiled = compiled
    return compiled


def _compile(plan: ExecutionPlan) -> CompiledPlan:
    plan.validate()
    tasks = plan.tasks
    n = len(tasks)

    resource_index: dict[str, int] = {}
    task_resources: list[tuple[int, ...]] = []
    for task in tasks:
        ids = []
        for name in task.resources:
            rid = resource_index.get(name)
            if rid is None:
                rid = len(resource_index)
                resource_index[name] = rid
            ids.append(rid)
        task_resources.append(tuple(ids))

    dep_counts = [len(t.deps) for t in tasks]
    # CSR flatten of the dependent edges: one counting pass, one fill pass.
    indptr = [0] * (n + 1)
    for task in tasks:
        for d in task.deps:
            indptr[d + 1] += 1
    for i in range(n):
        indptr[i + 1] += indptr[i]
    dependents = [0] * indptr[n]
    cursor = list(indptr)
    for task in tasks:
        for d in task.deps:
            dependents[cursor[d]] = task.task_id
            cursor[d] += 1

    return CompiledPlan(
        plan=plan,
        num_tasks=n,
        resource_names=tuple(resource_index),
        resource_index=resource_index,
        durations=tuple(t.duration_s for t in tasks),
        task_resources=tuple(task_resources),
        dispatch_keys=tuple((t.priority, t.task_id) for t in tasks),
        dep_counts=tuple(dep_counts),
        dependents_indptr=tuple(indptr),
        dependents_ids=tuple(dependents),
        initial_ready=tuple(t.task_id for t in tasks if not t.deps),
    )
