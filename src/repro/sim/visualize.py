"""ASCII rendering of simulated execution timelines (Fig. 12-style).

Turns a :class:`~repro.sim.trace.Trace` into a per-rank text Gantt chart so the
overlap structure — attention rounds, KV transfers, routing dispatch/combine,
remapping — can be inspected in a terminal without plotting dependencies.
"""

from __future__ import annotations

from repro.core.plan import TaskKind
from repro.sim.trace import Trace
from repro.utils.validation import check_positive

# One character per task kind; communication kinds are lowercase.
_KIND_CHARS = {
    TaskKind.ATTENTION: "A",
    TaskKind.LINEAR: "L",
    TaskKind.INTRA_COMM: "i",
    TaskKind.INTER_COMM: "x",
    TaskKind.DISPATCH: "d",
    TaskKind.COMBINE: "c",
    TaskKind.REMAP: "r",
    TaskKind.ALLGATHER: "g",
    TaskKind.OTHER: ".",
}


def kind_legend() -> str:
    """One-line legend mapping timeline characters to task kinds."""
    return ", ".join(f"{char}={kind.value}" for kind, char in _KIND_CHARS.items())


def render_timeline(
    trace: Trace,
    ranks: list[int] | None = None,
    width: int = 100,
) -> str:
    """Render a per-rank ASCII Gantt chart of the trace.

    Parameters
    ----------
    trace:
        The simulated trace.
    ranks:
        Ranks to render (default: every rank appearing in the trace).
    width:
        Number of character columns the full makespan is mapped onto.

    Returns
    -------
    str
        One line per rank, ``'-'`` marking idle time and the legend characters
        marking busy time.  When several spans of different kinds fall into the
        same column, compute kinds win over communication kinds so the chart
        highlights exposed (unhidden) communication.
    """
    check_positive("width", width)
    makespan = trace.makespan_s
    if makespan <= 0 or not trace.spans:
        return "(empty trace)"
    if ranks is None:
        ranks = sorted({s.rank for s in trace.spans if s.rank >= 0})

    # Priority when multiple spans overlap a column: compute > comm > other.
    priority = {
        TaskKind.ATTENTION: 3,
        TaskKind.LINEAR: 3,
        TaskKind.REMAP: 2,
        TaskKind.ALLGATHER: 2,
        TaskKind.INTER_COMM: 2,
        TaskKind.INTRA_COMM: 2,
        TaskKind.DISPATCH: 2,
        TaskKind.COMBINE: 2,
        TaskKind.OTHER: 1,
    }

    lines = []
    for rank in ranks:
        cells: list[tuple[int, str]] = [(0, "-")] * width
        for span in trace.spans_for_rank(rank):
            if span.duration_s <= 0:
                continue
            start_col = int(span.start_s / makespan * width)
            end_col = max(start_col + 1, int(span.end_s / makespan * width))
            char = _KIND_CHARS[span.kind]
            prio = priority[span.kind]
            for col in range(start_col, min(end_col, width)):
                if prio > cells[col][0]:
                    cells[col] = (prio, char)
        lines.append(f"rank {rank:>3d} |" + "".join(c for _, c in cells) + "|")
    header = f"timeline: {makespan * 1000:.2f} ms over {width} columns ({kind_legend()})"
    return "\n".join([header] + lines)


def timeline_summary_lines(trace: Trace, ranks: list[int] | None = None) -> list[str]:
    """Per-rank one-line summaries: busy compute, communication, exposed comm."""
    if ranks is None:
        ranks = sorted({s.rank for s in trace.spans if s.rank >= 0})
    compute_kinds = {TaskKind.ATTENTION, TaskKind.LINEAR}
    lines = []
    for rank in ranks:
        compute = trace.busy_time(rank, kinds=compute_kinds)
        comm = trace.busy_time(
            rank, kinds={k for k in TaskKind if k.is_communication}
        )
        exposed = trace.communication_exposed_s(rank)
        lines.append(
            f"rank {rank:>3d}: compute {compute * 1000:7.2f} ms, "
            f"communication {comm * 1000:7.2f} ms "
            f"({exposed * 1000:.2f} ms exposed)"
        )
    return lines
