"""The discrete-event engine that executes an :class:`ExecutionPlan`.

Scheduling policy: a task becomes *ready* once all its dependencies have
completed; a ready task *starts* as soon as every resource it needs is free,
with ties broken by (priority, insertion order).  This is list scheduling over
exclusive resources — the same greedy policy a CUDA stream manager implements —
so the resulting makespan reflects genuine overlap and genuine contention (two
transfers sharing a NIC serialise; compute and communication on different
resources overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.plan import ExecutionPlan, Task
from repro.sim.events import EventQueue
from repro.sim.trace import Trace, TraceSpan


@dataclass
class SimulationResult:
    """Outcome of simulating one plan."""

    makespan_s: float
    trace: Trace
    plan: ExecutionPlan
    start_times: dict[int, float] = field(default_factory=dict)
    end_times: dict[int, float] = field(default_factory=dict)

    @property
    def num_tasks(self) -> int:
        return self.plan.num_tasks


class Simulator:
    """Executes plans over exclusive resources.

    The simulator is stateless between :meth:`run` calls; resources are derived
    from the plan itself (any resource name a task mentions).
    """

    def __init__(self, record_trace: bool = True) -> None:
        self.record_trace = record_trace

    def run(self, plan: ExecutionPlan) -> SimulationResult:
        """Simulate ``plan`` and return the makespan and trace."""
        plan.validate()
        tasks = plan.tasks
        n = len(tasks)
        trace = Trace()
        if n == 0:
            return SimulationResult(makespan_s=0.0, trace=trace, plan=plan)

        remaining_deps = [len(t.deps) for t in tasks]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for t in tasks:
            for d in t.deps:
                dependents[d].append(t.task_id)

        resource_busy: dict[str, bool] = {}
        for t in tasks:
            for r in t.resources:
                resource_busy.setdefault(r, False)

        # Ready tasks waiting for resources, kept sorted by (priority, id) at
        # dispatch time.  A simple list is sufficient: the ready set stays small
        # because dependency chains serialise most of the plan.
        ready: list[int] = []
        events = EventQueue()
        start_times: dict[int, float] = {}
        end_times: dict[int, float] = {}
        running: set[int] = set()
        completed = 0
        now = 0.0

        def try_start(candidates: list[int]) -> None:
            """Start every candidate whose resources are free, in priority order."""
            nonlocal ready
            candidates.sort(key=lambda tid: (tasks[tid].priority, tid))
            still_waiting: list[int] = []
            for tid in candidates:
                task = tasks[tid]
                if any(resource_busy[r] for r in task.resources):
                    still_waiting.append(tid)
                    continue
                for r in task.resources:
                    resource_busy[r] = True
                start_times[tid] = now
                running.add(tid)
                events.push(now + task.duration_s, tid)
            ready = still_waiting

        for t in tasks:
            if remaining_deps[t.task_id] == 0:
                ready.append(t.task_id)
        try_start(ready)

        if not running and ready:
            raise RuntimeError("deadlock at time 0: ready tasks cannot acquire resources")

        while events:
            event = events.pop()
            now = event.time_s
            finished = [event.task_id]
            # Drain all events at the same timestamp before re-dispatching, so
            # freed resources are assigned to the highest-priority waiter.
            while events and abs(events._heap[0].time_s - now) < 1e-15:
                finished.append(events.pop().task_id)

            newly_ready: list[int] = []
            for tid in finished:
                task = tasks[tid]
                running.discard(tid)
                end_times[tid] = now
                completed += 1
                for r in task.resources:
                    resource_busy[r] = False
                if self.record_trace:
                    trace.add(
                        TraceSpan(
                            task_id=tid,
                            name=task.name,
                            kind=task.kind,
                            rank=task.rank,
                            start_s=start_times[tid],
                            end_s=now,
                        )
                    )
                for dep_tid in dependents[tid]:
                    remaining_deps[dep_tid] -= 1
                    if remaining_deps[dep_tid] == 0:
                        newly_ready.append(dep_tid)

            try_start(ready + newly_ready)

        if completed != n:
            raise RuntimeError(
                f"simulation finished with {completed}/{n} tasks completed; "
                "the plan contains an unsatisfiable dependency"
            )
        makespan = max(end_times.values()) if end_times else 0.0
        return SimulationResult(
            makespan_s=makespan,
            trace=trace,
            plan=plan,
            start_times=start_times,
            end_times=end_times,
        )


def simulate(plan: ExecutionPlan, record_trace: bool = True) -> SimulationResult:
    """Convenience wrapper: simulate a plan with a fresh :class:`Simulator`."""
    return Simulator(record_trace=record_trace).run(plan)
