"""The discrete-event engine that executes an :class:`ExecutionPlan`.

Scheduling policy: a task becomes *ready* once all its dependencies have
completed; a ready task *starts* as soon as every resource it needs is free,
with ties broken by (priority, insertion order).  This is list scheduling over
exclusive resources — the same greedy policy a CUDA stream manager implements —
so the resulting makespan reflects genuine overlap and genuine contention (two
transfers sharing a NIC serialise; compute and communication on different
resources overlap).

Dynamic conditions (:mod:`repro.dynamics`) enter through ``events``: a list of
:class:`~repro.sim.events.ResourceEvent` giving resources time-varying speed
factors or killing them outright.  A task's execution rate is the minimum
speed factor over the resources it holds; when a factor changes mid-task the
remaining work is re-timed at the new rate, and when a resource fails every
in-flight task holding it is aborted (recorded in the trace with
``aborted=True``) while tasks that require a dead resource are stranded and
never start.

There is ONE engine core: the static case is simply the dynamic case with an
empty event schedule (speeds stay 1.0, nothing dies), so both produce
bit-identical makespans by construction.  The core runs over the plan's
:class:`~repro.sim.compile.CompiledPlan` — interned resource ids backing plain
``busy``/``speed``/``alive`` arrays, CSR dependent adjacency, and precomputed
``(priority, task_id)`` dispatch keys.  Dispatch is *indexed*: a task blocked
on a busy resource parks in that resource's waiter list and is only
reconsidered when the resource actually frees, so an event touches the tasks
it can unblock instead of re-sorting the whole ready set.  Same-timestamp
events are drained by exact comparison on the pushed completion times (an
absolute epsilon would mis-merge distinct events once the simulation clock
grows past the point where one ulp exceeds it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Sequence

from repro.core.plan import ExecutionPlan
from repro.sim.compile import CompiledPlan, compile_plan
from repro.sim.events import FINISH, PERTURB, ResourceEvent, compile_resource_events
from repro.sim.trace import Trace


@dataclass
class SimulationResult:
    """Outcome of simulating one plan.

    ``aborted_task_ids``/``stranded_task_ids``/``failed_resources`` are only
    populated when a resource failure interrupts the plan; ``failed`` is then
    true and ``makespan_s`` covers the work that did finish.
    """

    makespan_s: float
    trace: Trace
    plan: ExecutionPlan
    start_times: dict[int, float] = field(default_factory=dict)
    end_times: dict[int, float] = field(default_factory=dict)
    aborted_task_ids: tuple[int, ...] = ()
    stranded_task_ids: tuple[int, ...] = ()
    failed_resources: tuple[str, ...] = ()

    @property
    def num_tasks(self) -> int:
        return self.plan.num_tasks

    @property
    def completed_tasks(self) -> int:
        return len(self.end_times)

    @property
    def failed(self) -> bool:
        """True when a resource failure prevented the plan from completing."""
        return bool(self.failed_resources) and self.completed_tasks < self.num_tasks


class Simulator:
    """Executes plans over exclusive resources.

    The simulator is stateless between :meth:`run` calls; all per-plan
    precomputation lives in the :class:`CompiledPlan` cached on the plan, so
    re-simulating a memoised plan (sweeps, resilience iterations) skips
    straight to the event loop.
    """

    def __init__(self, record_trace: bool = True) -> None:
        self.record_trace = record_trace

    def run(
        self,
        plan: ExecutionPlan | CompiledPlan,
        events: Sequence[ResourceEvent] | None = None,
        start_time_s: float = 0.0,
    ) -> SimulationResult:
        """Simulate ``plan`` and return the makespan and trace.

        Parameters
        ----------
        plan:
            The task graph to execute — an :class:`ExecutionPlan` (compiled on
            first use, cached on the plan) or an already-compiled plan.
        events:
            Optional resource perturbations (slowdowns / failures).  ``None``
            and an empty sequence are equivalent: the engine is one core and
            a run without perturbations is bit-identical either way.
        start_time_s:
            Absolute time the plan starts at; event times are interpreted
            relative to it (events at or before the start set the initial
            resource state).
        """
        cp = plan if isinstance(plan, CompiledPlan) else compile_plan(plan)
        n = cp.num_tasks
        trace = Trace()
        if n == 0:
            return SimulationResult(makespan_s=0.0, trace=trace, plan=cp.plan)

        tasks = cp.plan.tasks
        num_res = cp.num_resources
        busy = [False] * num_res
        speed = [1.0] * num_res
        alive = [True] * num_res
        any_dead = False

        # The event heap holds flat tuples (time, kind, seq, a, b): completions
        # are (t, FINISH, seq, task_id, generation), perturbations are
        # (t, PERTURB, seq, factor, resource_ids).  ``seq`` is a single
        # monotonic counter, so ties within one (time, kind) pop in push order.
        heap: list[tuple] = []
        seq = 0
        has_perturbations = False
        if events:
            initial, timed = compile_resource_events(
                events, cp.resource_index, start_time_s
            )
            for factor, rids in initial:
                for rid in rids:
                    if factor is None:
                        alive[rid] = False
                        any_dead = True
                    else:
                        speed[rid] = factor
            for local, factor, rids in timed:
                heap.append((local, PERTURB, seq, factor, rids))
                seq += 1
            # Entries were appended in sorted (time, seq) order: already a heap.
            has_perturbations = bool(heap) or any(s != 1.0 for s in speed)

        durations = cp.durations
        task_res = cp.task_resources
        keys = cp.dispatch_keys
        remaining_deps = list(cp.dep_counts)
        dep_indptr = cp.dependents_indptr
        dep_ids = cp.dependents_ids

        # Indexed dispatch: a blocked task parks in the waiter list of the
        # first busy resource that blocked it, and is reconsidered only when
        # that resource frees.  Every waiting task sits in exactly one list.
        waiters: list[list[int]] = [[] for _ in range(num_res)]

        start_times: dict[int, float] = {}
        end_times: dict[int, float] = {}
        # tid -> [segment start, remaining work (s at speed 1), current speed].
        running: dict[int, list[float]] = {}
        generation = [0] * n  # invalidates stale completion events
        aborted: list[int] = []
        completed = 0
        now = 0.0
        record_trace = self.record_trace

        def dispatch(candidates: list[int]) -> None:
            """Start every candidate whose resources are free, in priority order.

            Candidates are the tasks an event batch could have unblocked: the
            newly dependency-free plus the parked waiters of every resource
            the batch freed.  Tasks needing a dead resource are dropped here
            and accounted as stranded in the final sweep.
            """
            nonlocal seq
            candidates.sort(key=keys.__getitem__)
            for tid in candidates:
                res = task_res[tid]
                startable = True
                for rid in res:
                    if not alive[rid]:
                        startable = False  # stranded: never starts
                        break
                    if busy[rid]:
                        waiters[rid].append(tid)
                        startable = False
                        break
                if not startable:
                    continue
                for rid in res:
                    busy[rid] = True
                start_times[tid] = now
                if has_perturbations:
                    rate = min((speed[rid] for rid in res), default=1.0)
                    finish_at = now + durations[tid] / rate
                else:
                    rate = 1.0
                    finish_at = now + durations[tid]
                running[tid] = [now, durations[tid], rate]
                heappush(heap, (finish_at, FINISH, seq, tid, generation[tid]))
                seq += 1

        dispatch(list(cp.initial_ready))

        if not running and not heap and not any_dead:
            raise RuntimeError(
                "deadlock at time 0: ready tasks cannot acquire resources"
            )

        while heap:
            now = heap[0][0]
            finished: list[int] = []
            perturbations: list[tuple] = []
            # Drain all events at this exact timestamp (completions first, by
            # kind order) before re-dispatching, so freed resources go to the
            # highest-priority waiter and same-instant failures see final
            # state.  Comparison is exact on the pushed times: equal
            # completion instants arise from identical float arithmetic, and
            # an absolute epsilon would spuriously merge distinct events at
            # large clocks.
            while heap and heap[0][0] == now:
                _, kind, _, a, b = heappop(heap)
                if kind == FINISH:
                    if a in running and generation[a] == b:
                        finished.append(a)
                else:
                    perturbations.append((a, b))

            candidates: list[int] = []
            for tid in finished:
                del running[tid]
                end_times[tid] = now
                completed += 1
                for rid in task_res[tid]:
                    busy[rid] = False
                    freed = waiters[rid]
                    if freed:
                        candidates.extend(freed)
                        waiters[rid] = []
                if record_trace:
                    task = tasks[tid]
                    trace.record(
                        tid, task.name, task.kind, task.rank,
                        start_times[tid], now,
                    )
                for j in range(dep_indptr[tid], dep_indptr[tid + 1]):
                    dep_tid = dep_ids[j]
                    remaining_deps[dep_tid] -= 1
                    if remaining_deps[dep_tid] == 0:
                        candidates.append(dep_tid)

            for factor, rids in perturbations:
                if factor is None:
                    for rid in rids:
                        alive[rid] = False
                    any_dead = True
                    dead = set(rids)
                    for tid in [
                        t for t in running if not dead.isdisjoint(task_res[t])
                    ]:
                        generation[tid] += 1
                        del running[tid]
                        aborted.append(tid)
                        for rid in task_res[tid]:
                            busy[rid] = False
                            freed = waiters[rid]
                            if freed:
                                candidates.extend(freed)
                                waiters[rid] = []
                        if record_trace:
                            task = tasks[tid]
                            trace.record(
                                tid, task.name, task.kind, task.rank,
                                start_times[tid], now, aborted=True,
                            )
                else:
                    changed = set(rids)
                    for rid in rids:
                        speed[rid] = factor
                    for tid, record in running.items():
                        res = task_res[tid]
                        if changed.isdisjoint(res):
                            continue
                        seg_start, remaining, rate = record
                        remaining = max(0.0, remaining - (now - seg_start) * rate)
                        rate = min((speed[rid] for rid in res), default=1.0)
                        record[0] = now
                        record[1] = remaining
                        record[2] = rate
                        generation[tid] += 1
                        heappush(
                            heap,
                            (now + remaining / rate, FINISH, seq, tid, generation[tid]),
                        )
                        seq += 1

            dispatch(candidates)

        failed_resources: tuple[str, ...] = ()
        stranded: tuple[int, ...] = ()
        if any_dead:
            names = cp.resource_names
            failed_resources = tuple(
                sorted(names[rid] for rid in range(num_res) if not alive[rid])
            )
        if completed != n:
            if not failed_resources:
                raise RuntimeError(
                    f"simulation finished with {completed}/{n} tasks completed; "
                    "the plan contains an unsatisfiable dependency"
                )
            # Once the event queue drains, every task that neither completed
            # nor aborted can never run — it waits on a dead resource or
            # (transitively) on an aborted task.  Account for the whole
            # stranded subtree here; nothing needs tracking during dispatch.
            aborted_set = set(aborted)
            stranded = tuple(
                sorted(
                    tid
                    for tid in range(n)
                    if tid not in end_times and tid not in aborted_set
                )
            )
        makespan = max(end_times.values()) if end_times else 0.0
        return SimulationResult(
            makespan_s=makespan,
            trace=trace,
            plan=cp.plan,
            start_times=start_times,
            end_times=end_times,
            aborted_task_ids=tuple(aborted),
            stranded_task_ids=stranded,
            failed_resources=failed_resources,
        )


def simulate(
    plan: ExecutionPlan | CompiledPlan,
    record_trace: bool = True,
    events: Sequence[ResourceEvent] | None = None,
    start_time_s: float = 0.0,
) -> SimulationResult:
    """Convenience wrapper: simulate a plan with a fresh :class:`Simulator`."""
    return Simulator(record_trace=record_trace).run(
        plan, events=events, start_time_s=start_time_s
    )
