"""Frozen pre-refactor discrete-event engine (reference semantics).

This module is a verbatim copy of the engine as it stood before the
compiled-plan rewrite (PR 4).  It is **not** part of the public API and is
never used on hot paths; it exists so the equivalence tests and the hot-loop
benchmark can check, bit for bit, that the unified engine in
:mod:`repro.sim.engine` reproduces the original scheduling semantics
(start/end times, aborts, stranding) and to quantify the speedup.

Original module docstring follows.

Scheduling policy: a task becomes *ready* once all its dependencies have
completed; a ready task *starts* as soon as every resource it needs is free,
with ties broken by (priority, insertion order).  This is list scheduling over
exclusive resources — the same greedy policy a CUDA stream manager implements —
so the resulting makespan reflects genuine overlap and genuine contention (two
transfers sharing a NIC serialise; compute and communication on different
resources overlap).

Dynamic conditions (:mod:`repro.dynamics`) enter through ``events``: a list of
:class:`~repro.sim.events.ResourceEvent` giving resources time-varying speed
factors or killing them outright.  A task's execution rate is the minimum
speed factor over the resources it holds; when a factor changes mid-task the
remaining work is re-timed at the new rate, and when a resource fails every
in-flight task holding it is aborted (recorded in the trace with
``aborted=True``) while tasks that require a dead resource are stranded and
never start.  With no events the dynamic path reproduces the static path's
makespans bit for bit.
"""

from __future__ import annotations

import heapq
from typing import Sequence

from repro.core.plan import ExecutionPlan, Task
from repro.sim.engine import SimulationResult
from repro.sim.events import EventQueue, ResourceEvent
from repro.sim.trace import Trace, TraceSpan


class ReferenceSimulator:
    """Executes plans over exclusive resources.

    The simulator is stateless between :meth:`run` calls; resources are derived
    from the plan itself (any resource name a task mentions).

    ``exact_drain`` is the one deliberate deviation switch: the original
    engine drained same-timestamp events with an absolute
    ``abs(t - now) < 1e-15`` epsilon, which spuriously merges distinct
    completion instants that differ by a few ulp (and stops merging anything
    non-identical once the clock exceeds ~4.5, where one ulp outgrows the
    epsilon).  The unified engine compares pushed completion times exactly;
    passing ``exact_drain=True`` applies the same fix here so equivalence
    tests can compare the two engines under identical drain semantics.
    """

    def __init__(self, record_trace: bool = True, exact_drain: bool = False) -> None:
        self.record_trace = record_trace
        self.exact_drain = exact_drain

    def run(
        self,
        plan: ExecutionPlan,
        events: Sequence[ResourceEvent] | None = None,
        start_time_s: float = 0.0,
    ) -> SimulationResult:
        """Simulate ``plan`` and return the makespan and trace.

        Parameters
        ----------
        plan:
            The task graph to execute.
        events:
            Optional resource perturbations (slowdowns / failures).  ``None``
            selects the static fast path; an empty sequence runs the dynamic
            path and yields identical makespans.
        start_time_s:
            Absolute time the plan starts at; event times are interpreted
            relative to it (events at or before the start set the initial
            resource state).
        """
        if events is not None:
            return self._run_dynamic(plan, events, start_time_s)
        plan.validate()
        tasks = plan.tasks
        n = len(tasks)
        trace = Trace()
        if n == 0:
            return SimulationResult(makespan_s=0.0, trace=trace, plan=plan)

        remaining_deps = [len(t.deps) for t in tasks]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for t in tasks:
            for d in t.deps:
                dependents[d].append(t.task_id)

        resource_busy: dict[str, bool] = {}
        for t in tasks:
            for r in t.resources:
                resource_busy.setdefault(r, False)

        # Ready tasks waiting for resources, kept sorted by (priority, id) at
        # dispatch time.  A simple list is sufficient: the ready set stays small
        # because dependency chains serialise most of the plan.
        ready: list[int] = []
        events = EventQueue()
        start_times: dict[int, float] = {}
        end_times: dict[int, float] = {}
        running: set[int] = set()
        completed = 0
        now = 0.0

        def try_start(candidates: list[int]) -> None:
            """Start every candidate whose resources are free, in priority order."""
            nonlocal ready
            candidates.sort(key=lambda tid: (tasks[tid].priority, tid))
            still_waiting: list[int] = []
            for tid in candidates:
                task = tasks[tid]
                if any(resource_busy[r] for r in task.resources):
                    still_waiting.append(tid)
                    continue
                for r in task.resources:
                    resource_busy[r] = True
                start_times[tid] = now
                running.add(tid)
                events.push(now + task.duration_s, tid)
            ready = still_waiting

        for t in tasks:
            if remaining_deps[t.task_id] == 0:
                ready.append(t.task_id)
        try_start(ready)

        if not running and ready:
            raise RuntimeError("deadlock at time 0: ready tasks cannot acquire resources")

        while events:
            event = events.pop()
            now = event.time_s
            finished = [event.task_id]
            # Drain all events at the same timestamp before re-dispatching, so
            # freed resources are assigned to the highest-priority waiter.
            while events and (
                events._heap[0].time_s == now
                if self.exact_drain
                else abs(events._heap[0].time_s - now) < 1e-15
            ):
                finished.append(events.pop().task_id)

            newly_ready: list[int] = []
            for tid in finished:
                task = tasks[tid]
                running.discard(tid)
                end_times[tid] = now
                completed += 1
                for r in task.resources:
                    resource_busy[r] = False
                if self.record_trace:
                    trace.add(
                        TraceSpan(
                            task_id=tid,
                            name=task.name,
                            kind=task.kind,
                            rank=task.rank,
                            start_s=start_times[tid],
                            end_s=now,
                        )
                    )
                for dep_tid in dependents[tid]:
                    remaining_deps[dep_tid] -= 1
                    if remaining_deps[dep_tid] == 0:
                        newly_ready.append(dep_tid)

            try_start(ready + newly_ready)

        if completed != n:
            raise RuntimeError(
                f"simulation finished with {completed}/{n} tasks completed; "
                "the plan contains an unsatisfiable dependency"
            )
        makespan = max(end_times.values()) if end_times else 0.0
        return SimulationResult(
            makespan_s=makespan,
            trace=trace,
            plan=plan,
            start_times=start_times,
            end_times=end_times,
        )

    # -- dynamic path (time-varying speeds, failures) ---------------------------

    # Event-kind ordering within one timestamp: completions settle before
    # perturbations apply, so a task finishing exactly when its resource dies
    # counts as completed.
    _FINISH = 0
    _PERTURB = 1

    def _run_dynamic(
        self,
        plan: ExecutionPlan,
        events: Sequence[ResourceEvent],
        start_time_s: float,
    ) -> SimulationResult:
        """List scheduling under time-varying resource speeds and failures."""
        plan.validate()
        tasks = plan.tasks
        n = len(tasks)
        trace = Trace()
        if n == 0:
            return SimulationResult(makespan_s=0.0, trace=trace, plan=plan)

        remaining_deps = [len(t.deps) for t in tasks]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for t in tasks:
            for d in t.deps:
                dependents[d].append(t.task_id)

        resource_busy: dict[str, bool] = {}
        resource_speed: dict[str, float] = {}
        resource_alive: dict[str, bool] = {}
        for t in tasks:
            for r in t.resources:
                resource_busy.setdefault(r, False)
                resource_speed.setdefault(r, 1.0)
                resource_alive.setdefault(r, True)

        # Compile the schedule: apply events at/before the start as initial
        # state, queue the rest in plan-local time.  Resources the plan never
        # mentions are irrelevant and dropped.
        heap: list[tuple[float, int, int, tuple]] = []
        seq = 0
        for event in sorted(events, key=lambda e: e.time_s):
            relevant = tuple(r for r in event.resources if r in resource_busy)
            if not relevant:
                continue
            local = event.time_s - start_time_s
            if local <= 0.0:
                for r in relevant:
                    if event.is_failure:
                        resource_alive[r] = False
                    else:
                        resource_speed[r] = event.factor
            else:
                heapq.heappush(
                    heap, (local, self._PERTURB, seq, (event.factor, relevant))
                )
                seq += 1

        def task_speed(task: Task) -> float:
            return min((resource_speed[r] for r in task.resources), default=1.0)

        ready: list[int] = []
        stranded: set[int] = set()
        start_times: dict[int, float] = {}
        end_times: dict[int, float] = {}
        # tid -> [segment start, remaining work (s at speed 1), current speed].
        running: dict[int, list[float]] = {}
        generation = [0] * n  # invalidates stale completion events
        aborted: list[int] = []
        completed = 0
        now = 0.0

        def push_completion(tid: int) -> None:
            nonlocal seq
            seg_start, remaining, speed = running[tid]
            heapq.heappush(
                heap,
                (seg_start + remaining / speed, self._FINISH, seq, (tid, generation[tid])),
            )
            seq += 1

        def try_start(candidates: list[int]) -> None:
            """Start every candidate whose resources are free, in priority order."""
            nonlocal ready
            candidates.sort(key=lambda tid: (tasks[tid].priority, tid))
            still_waiting: list[int] = []
            for tid in candidates:
                task = tasks[tid]
                if any(not resource_alive[r] for r in task.resources):
                    stranded.add(tid)
                    continue
                if any(resource_busy[r] for r in task.resources):
                    still_waiting.append(tid)
                    continue
                for r in task.resources:
                    resource_busy[r] = True
                start_times[tid] = now
                running[tid] = [now, task.duration_s, task_speed(task)]
                push_completion(tid)
            ready = still_waiting

        for t in tasks:
            if remaining_deps[t.task_id] == 0:
                ready.append(t.task_id)
        try_start(ready)

        if not running and ready and not heap:
            raise RuntimeError("deadlock at time 0: ready tasks cannot acquire resources")

        while heap:
            now = heap[0][0]
            finished: list[int] = []
            perturbations: list[tuple] = []
            # Drain all events at this timestamp (completions first, by kind
            # order) before re-dispatching, so freed resources go to the
            # highest-priority waiter and same-instant failures see final state.
            while heap and (
                heap[0][0] == now
                if self.exact_drain
                else abs(heap[0][0] - now) < 1e-15
            ):
                _, kind, _, payload = heapq.heappop(heap)
                if kind == self._FINISH:
                    tid, gen = payload
                    if tid in running and generation[tid] == gen:
                        finished.append(tid)
                else:
                    perturbations.append(payload)

            newly_ready: list[int] = []
            for tid in finished:
                task = tasks[tid]
                del running[tid]
                end_times[tid] = now
                completed += 1
                for r in task.resources:
                    resource_busy[r] = False
                if self.record_trace:
                    trace.add(
                        TraceSpan(
                            task_id=tid,
                            name=task.name,
                            kind=task.kind,
                            rank=task.rank,
                            start_s=start_times[tid],
                            end_s=now,
                        )
                    )
                for dep_tid in dependents[tid]:
                    remaining_deps[dep_tid] -= 1
                    if remaining_deps[dep_tid] == 0:
                        newly_ready.append(dep_tid)

            for factor, resources in perturbations:
                if factor is None:
                    for r in resources:
                        resource_alive[r] = False
                    dead = set(resources)
                    for tid in [t for t in running if set(tasks[t].resources) & dead]:
                        task = tasks[tid]
                        generation[tid] += 1
                        del running[tid]
                        aborted.append(tid)
                        for r in task.resources:
                            resource_busy[r] = False
                        if self.record_trace:
                            trace.add(
                                TraceSpan(
                                    task_id=tid,
                                    name=task.name,
                                    kind=task.kind,
                                    rank=task.rank,
                                    start_s=start_times[tid],
                                    end_s=now,
                                    aborted=True,
                                )
                            )
                else:
                    changed = set(resources)
                    for r in resources:
                        resource_speed[r] = factor
                    for tid, record in running.items():
                        task = tasks[tid]
                        if not changed & set(task.resources):
                            continue
                        seg_start, remaining, speed = record
                        remaining = max(0.0, remaining - (now - seg_start) * speed)
                        record[0] = now
                        record[1] = remaining
                        record[2] = task_speed(task)
                        generation[tid] += 1
                        push_completion(tid)

            try_start(ready + newly_ready)

        failed_resources = tuple(sorted(r for r, alive in resource_alive.items() if not alive))
        if completed != n and not failed_resources:
            raise RuntimeError(
                f"simulation finished with {completed}/{n} tasks completed; "
                "the plan contains an unsatisfiable dependency"
            )
        # Once the event queue drains, every task that neither completed nor
        # aborted can never run — it waits on a dead resource or (transitively)
        # on an aborted task.  Account for the whole stranded subtree, not just
        # the tasks that became ready.
        aborted_set = set(aborted)
        stranded = {
            t.task_id
            for t in tasks
            if t.task_id not in end_times and t.task_id not in aborted_set
        }
        makespan = max(end_times.values()) if end_times else 0.0
        return SimulationResult(
            makespan_s=makespan,
            trace=trace,
            plan=plan,
            start_times=start_times,
            end_times=end_times,
            aborted_task_ids=tuple(aborted),
            stranded_task_ids=tuple(sorted(stranded)),
            failed_resources=failed_resources,
        )


def reference_simulate(
    plan: ExecutionPlan,
    record_trace: bool = True,
    events: Sequence[ResourceEvent] | None = None,
    start_time_s: float = 0.0,
) -> SimulationResult:
    """Simulate a plan with a fresh :class:`ReferenceSimulator`."""
    return ReferenceSimulator(record_trace=record_trace).run(
        plan, events=events, start_time_s=start_time_s
    )
