"""Transformer model specifications, FLOP counting, and memory modelling.

The paper evaluates LLaMA-style dense models (3B, 7B, 13B, 30B) and an 8x550M
MoE.  This subpackage defines those architectures and the analytical cost
primitives (FLOPs per module, bytes of activations / KV, per-GPU token
capacity) that every scheduling decision consumes.
"""

from repro.model.spec import (
    TransformerSpec,
    MoEConfig,
    MODEL_PRESETS,
    get_model,
    available_models,
)
from repro.model.flops import (
    attention_flops,
    attention_flops_chunk,
    linear_flops_per_token,
    moe_flops_per_token,
    iteration_flops,
)
from repro.model.memory import (
    parameter_bytes,
    kv_bytes_per_token,
    activation_bytes_per_token,
    token_capacity,
)

__all__ = [
    "TransformerSpec",
    "MoEConfig",
    "MODEL_PRESETS",
    "get_model",
    "available_models",
    "attention_flops",
    "attention_flops_chunk",
    "linear_flops_per_token",
    "moe_flops_per_token",
    "iteration_flops",
    "parameter_bytes",
    "kv_bytes_per_token",
    "activation_bytes_per_token",
    "token_capacity",
]
