"""Transformer architecture specifications.

The presets follow the LLaMA family shapes used in the paper's evaluation
(§5): 3B, 7B, 13B and 30B dense models with multi-head attention, plus an
8x550M mixture-of-experts model.  Only the quantities that drive compute,
communication and memory costs are modelled: hidden size, layer count, head
counts, FFN width, vocabulary size and the MoE expert configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class MoEConfig:
    """Mixture-of-experts configuration for a transformer layer.

    Attributes
    ----------
    num_experts:
        Number of experts per MoE layer.
    top_k:
        Experts activated per token.
    capacity_factor:
        Multiplier over the perfectly balanced per-expert token count used to
        size expert buffers; tokens beyond capacity are dropped in real
        systems and modelled as imbalance here.
    """

    num_experts: int
    top_k: int = 2
    capacity_factor: float = 1.25

    def __post_init__(self) -> None:
        check_positive("num_experts", self.num_experts)
        check_positive("top_k", self.top_k)
        check_positive("capacity_factor", self.capacity_factor)
        if self.top_k > self.num_experts:
            raise ValueError("top_k cannot exceed num_experts")


@dataclass(frozen=True)
class TransformerSpec:
    """A decoder-only transformer architecture.

    Attributes
    ----------
    name:
        Preset name, e.g. ``"llama-7b"``.
    hidden_size:
        Model (embedding) dimension.
    num_layers:
        Number of transformer layers.
    num_heads:
        Attention (query) heads.
    num_kv_heads:
        Key/value heads; equal to ``num_heads`` for multi-head attention.
    ffn_hidden_size:
        Width of the feed-forward (SwiGLU) hidden layer.
    vocab_size:
        Vocabulary size (embedding / LM-head matmuls).
    dtype_bytes:
        Bytes per activation element (2 for bf16).
    moe:
        Optional MoE configuration; ``None`` for dense models.
    """

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    ffn_hidden_size: int
    vocab_size: int = 128256
    dtype_bytes: int = 2
    moe: MoEConfig | None = None

    def __post_init__(self) -> None:
        check_positive("hidden_size", self.hidden_size)
        check_positive("num_layers", self.num_layers)
        check_positive("num_heads", self.num_heads)
        check_positive("num_kv_heads", self.num_kv_heads)
        check_positive("ffn_hidden_size", self.ffn_hidden_size)
        check_positive("vocab_size", self.vocab_size)
        check_positive("dtype_bytes", self.dtype_bytes)
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads")

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.hidden_size // self.num_heads

    @property
    def kv_hidden_size(self) -> int:
        """Combined key/value projection width (per K or V)."""
        return self.num_kv_heads * self.head_dim

    @property
    def is_moe(self) -> bool:
        return self.moe is not None

    @property
    def num_parameters(self) -> int:
        """Approximate parameter count (attention + FFN + embeddings)."""
        h = self.hidden_size
        attn = h * h + 2 * h * self.kv_hidden_size + h * h  # Q, K, V, O projections
        if self.moe is None:
            ffn = 3 * h * self.ffn_hidden_size  # SwiGLU: gate, up, down
        else:
            ffn = 3 * h * self.ffn_hidden_size * self.moe.num_experts
        per_layer = attn + ffn + 2 * h  # plus the two RMSNorm weight vectors
        embeddings = 2 * self.vocab_size * h  # input embedding + LM head
        return self.num_layers * per_layer + embeddings

    def scaled_layers(self, factor: float) -> "TransformerSpec":
        """Return a copy with the layer count scaled by ``factor`` (>= 1 layer)."""
        check_positive("factor", factor)
        return TransformerSpec(
            name=f"{self.name}-x{factor:g}",
            hidden_size=self.hidden_size,
            num_layers=max(1, int(round(self.num_layers * factor))),
            num_heads=self.num_heads,
            num_kv_heads=self.num_kv_heads,
            ffn_hidden_size=self.ffn_hidden_size,
            vocab_size=self.vocab_size,
            dtype_bytes=self.dtype_bytes,
            moe=self.moe,
        )


MODEL_PRESETS: dict[str, TransformerSpec] = {
    "llama-3b": TransformerSpec(
        name="llama-3b",
        hidden_size=2560,
        num_layers=32,
        num_heads=20,
        num_kv_heads=20,
        ffn_hidden_size=6912,
    ),
    "llama-7b": TransformerSpec(
        name="llama-7b",
        hidden_size=4096,
        num_layers=32,
        num_heads=32,
        num_kv_heads=32,
        ffn_hidden_size=11008,
    ),
    "llama-13b": TransformerSpec(
        name="llama-13b",
        hidden_size=5120,
        num_layers=40,
        num_heads=40,
        num_kv_heads=40,
        ffn_hidden_size=13824,
    ),
    "llama-30b": TransformerSpec(
        name="llama-30b",
        hidden_size=6656,
        num_layers=60,
        num_heads=52,
        num_kv_heads=52,
        ffn_hidden_size=17920,
    ),
    # 8x550M MoE: a small dense backbone with 8 experts per layer.
    "moe-8x550m": TransformerSpec(
        name="moe-8x550m",
        hidden_size=1536,
        num_layers=24,
        num_heads=16,
        num_kv_heads=16,
        ffn_hidden_size=4096,
        moe=MoEConfig(num_experts=8, top_k=2),
    ),
}

# Aliases used in experiment configuration tables.
_ALIASES = {
    "3b": "llama-3b",
    "7b": "llama-7b",
    "13b": "llama-13b",
    "30b": "llama-30b",
    "8x550m": "moe-8x550m",
    "moe": "moe-8x550m",
}


def available_models() -> list[str]:
    """Names of all model presets."""
    return sorted(MODEL_PRESETS)


def get_model(name: str) -> TransformerSpec:
    """Look up a model preset by name or alias (case-insensitive)."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in MODEL_PRESETS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return MODEL_PRESETS[key]
