"""Memory modelling: parameters, activations, KV tensors, per-GPU token capacity.

Alg. 1/2 require the paper's ``L`` — the token capacity of each GPU — which we
derive from HBM capacity minus parameter/optimizer state divided by the
per-token activation footprint.  The KV activation size also determines the
communication volume of ring attention (what actually moves over NICs).
"""

from __future__ import annotations

from repro.model.spec import TransformerSpec
from repro.utils.validation import check_non_negative, check_positive

# Bytes of optimizer + gradient state per parameter under mixed-precision Adam
# with ZeRO-1 style sharding folded in (a coarse but standard 6 bytes/param:
# bf16 weight + bf16 grad + sharded fp32 master/moments amortised).
_OPTIMIZER_BYTES_PER_PARAM = 6.0

# Fraction of activation memory kept after selective recomputation.
_ACTIVATION_CHECKPOINT_FACTOR = 0.35


def parameter_bytes(spec: TransformerSpec, tensor_parallel: int = 1) -> float:
    """Bytes of parameter + optimizer state held by one GPU."""
    check_positive("tensor_parallel", tensor_parallel)
    return spec.num_parameters * _OPTIMIZER_BYTES_PER_PARAM / tensor_parallel


def kv_bytes_per_token(spec: TransformerSpec, per_layer: bool = True) -> float:
    """Bytes of key+value activations per token.

    This is the unit of ring-attention communication: each round moves the KV
    activations of the peer's chunk.  ``per_layer=True`` (default) gives the
    volume exchanged per transformer layer, which is what each ring round in a
    layer's attention transfers.
    """
    per_layer_bytes = 2.0 * spec.kv_hidden_size * spec.dtype_bytes
    if per_layer:
        return per_layer_bytes
    return per_layer_bytes * spec.num_layers


def qkv_bytes_per_token(spec: TransformerSpec) -> float:
    """Bytes of query+key+value activations per token per layer."""
    return (spec.hidden_size + 2.0 * spec.kv_hidden_size) * spec.dtype_bytes


def hidden_bytes_per_token(spec: TransformerSpec) -> float:
    """Bytes of a single hidden-state activation per token (one layer boundary)."""
    return spec.hidden_size * spec.dtype_bytes


def activation_bytes_per_token(
    spec: TransformerSpec, tensor_parallel: int = 1
) -> float:
    """Bytes of activation memory retained per token during training.

    Per layer we keep the attention inputs/outputs and the MLP intermediate
    activations, scaled by the checkpointing factor; tensor parallelism shards
    the intermediate activations.
    """
    check_positive("tensor_parallel", tensor_parallel)
    h = spec.hidden_size
    ffn = spec.ffn_hidden_size
    per_layer = (
        # attention block: input, QKV, attention output, projection output
        (2 * h + 2 * spec.kv_hidden_size + 2 * h)
        # MLP block: input, gate/up activations, down output
        + (h + 2 * ffn + h)
    ) * spec.dtype_bytes
    per_layer /= tensor_parallel
    return per_layer * spec.num_layers * _ACTIVATION_CHECKPOINT_FACTOR


def token_capacity(
    spec: TransformerSpec,
    gpu_memory_bytes: float,
    tensor_parallel: int = 1,
    reserve_fraction: float = 0.1,
) -> int:
    """Maximum number of tokens a single GPU can hold — the paper's ``L``.

    Derived as (HBM minus parameter/optimizer state minus a reserve for
    workspace/fragmentation) divided by the per-token activation footprint.
    """
    check_positive("gpu_memory_bytes", gpu_memory_bytes)
    check_non_negative("reserve_fraction", reserve_fraction)
    if reserve_fraction >= 1.0:
        raise ValueError("reserve_fraction must be < 1")
    usable = gpu_memory_bytes * (1.0 - reserve_fraction)
    usable -= parameter_bytes(spec, tensor_parallel)
    if usable <= 0:
        raise ValueError(
            f"model {spec.name} does not fit in {gpu_memory_bytes / 1e9:.0f} GB "
            f"with tensor_parallel={tensor_parallel}"
        )
    per_token = activation_bytes_per_token(spec, tensor_parallel)
    capacity = int(usable // per_token)
    if capacity < 1:
        raise ValueError(
            f"model {spec.name} leaves no room for activations on a "
            f"{gpu_memory_bytes / 1e9:.0f} GB GPU"
        )
    return capacity
