"""Analytical FLOP counting for transformer modules.

The paper's scheduling decisions hinge on the distinct scaling behaviours of
the two module families (§2.1):

* **attention** — quadratic in sequence length (causal mask halves the work),
* **linear modules** (QKV/O projections, SwiGLU MLP, norms, MoE experts) —
  linear in sequence length (token-wise).

All counts are *forward-pass* FLOPs for a single transformer layer unless the
function name says otherwise; backward-pass work is modelled as a multiple of
forward work (conventionally 2x) by the cost layer.
"""

from __future__ import annotations

from repro.model.spec import TransformerSpec
from repro.utils.validation import check_non_negative

# Backward pass performs roughly twice the forward FLOPs (two matmuls per
# forward matmul: grad wrt input and grad wrt weight).
BACKWARD_FLOP_MULTIPLIER = 2.0


def attention_flops(
    spec: TransformerSpec,
    seq_len: int,
    causal: bool = True,
    num_layers: int | None = None,
) -> float:
    """FLOPs of the attention score/value matmuls for one sequence.

    The two batched matmuls (``QK^T`` and ``PV``) each cost
    ``2 * s^2 * hidden`` FLOPs for full attention; the causal mask halves the
    useful work.  Projections are *not* included — they are token-wise and
    belong to :func:`linear_flops_per_token`.
    """
    check_non_negative("seq_len", seq_len)
    layers = spec.num_layers if num_layers is None else num_layers
    full = 2.0 * 2.0 * seq_len * seq_len * spec.hidden_size
    if causal:
        full *= 0.5
    return full * layers


def attention_flops_chunk(
    spec: TransformerSpec,
    query_tokens: int,
    kv_tokens: int,
    num_layers: int | None = None,
) -> float:
    """FLOPs for attending ``query_tokens`` queries against ``kv_tokens`` keys.

    Used for ring-attention rounds and for the causal-balanced chunk
    assignment, where a rank computes attention of its query chunk against a
    rotating KV chunk.  No causal halving is applied here: the caller passes
    the exact (query, kv) extents visible under the mask.
    """
    check_non_negative("query_tokens", query_tokens)
    check_non_negative("kv_tokens", kv_tokens)
    layers = spec.num_layers if num_layers is None else num_layers
    return 2.0 * 2.0 * query_tokens * kv_tokens * spec.hidden_size * layers


def causal_chunk_flops(
    spec: TransformerSpec,
    chunk_start: int,
    chunk_len: int,
    num_layers: int | None = None,
) -> float:
    """FLOPs of a causal-attention chunk starting at ``chunk_start``.

    Tokens in ``[chunk_start, chunk_start + chunk_len)`` attend to all earlier
    tokens and to themselves; the cost is the number of (query, key) pairs
    under the causal mask times ``4 * hidden`` FLOPs per pair.
    """
    check_non_negative("chunk_start", chunk_start)
    check_non_negative("chunk_len", chunk_len)
    layers = spec.num_layers if num_layers is None else num_layers
    # sum_{i=0}^{chunk_len-1} (chunk_start + i + 1)
    pairs = chunk_len * (chunk_start + 1) + chunk_len * (chunk_len - 1) / 2.0
    return 4.0 * pairs * spec.hidden_size * layers


def linear_flops_per_token(spec: TransformerSpec, num_layers: int | None = None) -> float:
    """Per-token FLOPs of the linear modules of a transformer layer stack.

    Covers the QKV and output projections plus the SwiGLU MLP (dense models) or
    the *activated* experts (MoE models, ``top_k`` experts per token).  Norms
    and element-wise ops are negligible and folded into a 1% overhead factor.
    """
    h = spec.hidden_size
    layers = spec.num_layers if num_layers is None else num_layers
    qkv = 2.0 * h * (h + 2 * spec.kv_hidden_size)
    out_proj = 2.0 * h * h
    if spec.moe is None:
        ffn = 2.0 * 3.0 * h * spec.ffn_hidden_size
    else:
        ffn = 2.0 * 3.0 * h * spec.ffn_hidden_size * spec.moe.top_k
    per_layer = (qkv + out_proj + ffn) * 1.01
    return per_layer * layers


def moe_flops_per_token(spec: TransformerSpec, num_layers: int | None = None) -> float:
    """Per-token FLOPs of only the expert MLPs (0 for dense models)."""
    if spec.moe is None:
        return 0.0
    layers = spec.num_layers if num_layers is None else num_layers
    return 2.0 * 3.0 * spec.hidden_size * spec.ffn_hidden_size * spec.moe.top_k * layers


def embedding_flops_per_token(spec: TransformerSpec) -> float:
    """Per-token FLOPs of the LM head projection (the only large embedding matmul)."""
    return 2.0 * spec.hidden_size * spec.vocab_size


def iteration_flops(
    spec: TransformerSpec,
    seq_lengths: list[int] | tuple[int, ...],
    include_backward: bool = True,
) -> float:
    """Total FLOPs of one forward(+backward) pass over a batch of sequences."""
    total_tokens = sum(seq_lengths)
    fwd = sum(attention_flops(spec, s) for s in seq_lengths)
    fwd += linear_flops_per_token(spec) * total_tokens
    fwd += embedding_flops_per_token(spec) * total_tokens
    if include_backward:
        return fwd * (1.0 + BACKWARD_FLOP_MULTIPLIER)
    return fwd
