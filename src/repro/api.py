"""Stable programmatic facade for the Zeppelin reproduction.

:class:`Session` is the long-lived entry point: it builds the cluster, model
spec and :class:`~repro.core.strategy.StrategyContext` once, lazily samples
and caches the evaluation batches, and memoises every
:class:`~repro.core.plan.ExecutionPlan` by (strategy configuration, batch,
phase) so repeated comparisons, ablations and sweeps reuse plans instead of
replanning.  Strategies are resolved through :mod:`repro.registry`, so
anything registered with ``@register_strategy`` is immediately runnable here
and visible to the CLI.

Quickstart::

    from repro.api import Session

    session = Session(model="7b", num_gpus=16, dataset="arxiv")
    result = session.compare(("te_cp", "llama_cp", "hybrid_dp", "zeppelin"))
    print(result.to_json(indent=2))

Sweeps fan one session out over the cartesian product of GPU counts, context
lengths and datasets::

    for cell in session.sweep(gpus=(16, 32), datasets=("arxiv", "github")):
        print(cell.config["num_gpus"], cell.config["dataset"],
              round(cell.speedup("zeppelin"), 2))
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.cluster.presets import cluster_a, cluster_b, cluster_c
from repro.cluster.topology import Cluster
from repro.core.plan import ExecutionPlan
from repro.core.strategy import Strategy, StrategyContext
from repro.data.datasets import SyntheticDataset
from repro.data.sampler import Batch
from repro.model.spec import TransformerSpec, get_model
from repro.obs.core import Telemetry, as_telemetry, current_telemetry
from repro.registry import get_strategy
from repro.results import CompareResult, ResilienceResult, RunResult, ServeResult
from repro.utils.validation import check_positive

# The paper's standard comparison order: TE CP is the speedup baseline.
DEFAULT_COMPARISON = ("te_cp", "llama_cp", "hybrid_dp", "zeppelin")


@dataclass(frozen=True)
class SessionConfig:
    """One evaluation configuration.

    Attributes
    ----------
    model:
        Model preset name or alias (``"7b"``, ``"llama-13b"``, ``"8x550m"``...).
    cluster_preset:
        ``"A"``, ``"B"`` or ``"C"`` (the paper's clusters).
    num_gpus:
        Total GPUs; must be a multiple of 8 (nodes are 8-GPU).
    dataset:
        Length-distribution name (``"arxiv"``, ``"github"``, ``"prolong64k"``).
    total_context:
        Total tokens per iteration (64k / 128k / 256k in the paper).
    tensor_parallel:
        Tensor-parallel degree (1 or 2 in the paper).
    num_steps:
        Number of batches to average throughput over.
    seed:
        Batch sampling seed.
    """

    model: str
    cluster_preset: str = "A"
    num_gpus: int = 16
    dataset: str = "arxiv"
    total_context: int = 64 * 1024
    tensor_parallel: int = 1
    num_steps: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_gpus", self.num_gpus)
        check_positive("total_context", self.total_context)
        check_positive("tensor_parallel", self.tensor_parallel)
        check_positive("num_steps", self.num_steps)
        if self.num_gpus % 8 != 0:
            raise ValueError("num_gpus must be a multiple of 8 (8-GPU nodes)")

    @property
    def num_nodes(self) -> int:
        return self.num_gpus // 8

    @property
    def tokens_per_gpu(self) -> int:
        return self.total_context // self.num_gpus

    @property
    def tokens_per_dp_rank(self) -> int:
        """Per-logical-rank token budget (the paper's ``L``)."""
        return self.total_context // (self.num_gpus // self.tensor_parallel)

    def replace(self, **overrides: Any) -> "SessionConfig":
        """A copy of this configuration with some fields overridden."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    def cache_key(self) -> tuple[Any, ...]:
        """Hashable identity used for plan- and session-cache keys."""
        return dataclasses.astuple(self)


def build_cluster(config: SessionConfig) -> Cluster:
    """Instantiate the cluster preset for a configuration."""
    preset = config.cluster_preset.upper()
    if preset == "A":
        return cluster_a(num_nodes=config.num_nodes)
    if preset == "B":
        return cluster_b(num_nodes=config.num_nodes)
    if preset == "C":
        return cluster_c(num_nodes=config.num_nodes)
    raise ValueError(f"unknown cluster preset {config.cluster_preset!r}")


def _strategy_key(name: str, kwargs: Mapping[str, Any]) -> tuple[Any, ...]:
    """Hashable identity of one strategy configuration."""
    return (name.lower(), tuple(sorted((k, repr(v)) for k, v in kwargs.items())))


def _batch_key(batch: Batch) -> tuple[Any, ...]:
    """Hashable identity of a batch (plans depend only on the lengths)."""
    return (batch.dataset, batch.lengths)


class _CachedPlanStrategy:
    """Proxy routing ``plan_layer`` through the session's plan cache.

    Everything else (``name``, ``spec``, ``context``, ``describe()``...)
    delegates to the wrapped strategy, so the proxy is a drop-in anywhere a
    :class:`Strategy` is consumed.
    """

    def __init__(self, session: "Session", inner: Strategy, key: tuple[Any, ...]):
        self._session = session
        self._inner = inner
        self._key = key

    def plan_layer(self, batch: Batch, phase: str = "forward") -> ExecutionPlan:
        return self._session._cached_plan(self._key, self._inner, batch, phase)

    def __getattr__(self, attr: str) -> Any:
        return getattr(self._inner, attr)

    def __repr__(self) -> str:
        return f"<cached {self._inner!r}>"


class Session:
    """Long-lived planning session over one base configuration.

    The session owns the expensive immutable pieces — cluster topology, model
    spec, strategy context and sampled batches — plus two caches:

    * a strategy cache keyed by (name, kwargs), and
    * a plan cache keyed by (strategy configuration, batch, phase), so any
      path that replans an already-seen combination (repeated ``run()`` /
      ``compare()`` calls, ablation grids, sweeps) gets the identical
      :class:`ExecutionPlan` object back instead of replanning.

    Derived sessions created by :meth:`derive`/:meth:`sweep` are themselves
    cached by configuration, so re-running a sweep is nearly free.

    ``telemetry`` (a :class:`~repro.obs.Telemetry` hub, a JSONL path, or
    ``None`` for the ambient default) is purely observational: it flows into
    every run/compare/sweep/serve launched from this session — and into
    sessions derived from it — without ever affecting results.
    """

    def __init__(
        self,
        config: SessionConfig | None = None,
        /,
        telemetry: "Telemetry | str | Path | None" = None,
        **overrides: Any,
    ):
        if config is None:
            config = SessionConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        # Resolve paths to a hub once (a path re-resolved per call would
        # reopen — and truncate — the sink); None stays None so the ambient
        # hub is consulted at use time, not construction time.
        self._telemetry = None if telemetry is None else as_telemetry(telemetry)
        self.config = config
        self.cluster = build_cluster(config)
        self.spec: TransformerSpec = get_model(config.model)
        self.context = StrategyContext(
            cluster=self.cluster,
            spec=self.spec,
            token_budget=config.tokens_per_dp_rank,
            tensor_parallel=config.tensor_parallel,
        )
        self._batches: list[Batch] | None = None
        self._strategies: dict[tuple[Any, ...], _CachedPlanStrategy] = {}
        self._plans: dict[tuple[Any, ...], ExecutionPlan] = {}
        self._children: dict[tuple[Any, ...], "Session"] = {}

    # -- cached building blocks -------------------------------------------------

    @property
    def telemetry(self) -> Telemetry:
        """The session's telemetry hub (the ambient default unless one was given)."""
        return current_telemetry() if self._telemetry is None else self._telemetry

    @property
    def batches(self) -> list[Batch]:
        """The sampled evaluation batches (sampled once, then reused)."""
        if self._batches is None:
            dataset = SyntheticDataset(
                name=self.config.dataset,
                total_context=self.config.total_context,
                seed=self.config.seed,
            )
            self._batches = dataset.batches(self.config.num_steps)
        return self._batches

    def strategy(self, name: str, **kwargs: Any) -> Strategy:
        """Build (or fetch) a strategy bound to this session's context.

        The returned object is a caching proxy: its ``plan_layer`` consults
        the session plan cache before planning.
        """
        key = _strategy_key(name, kwargs)
        if key not in self._strategies:
            entry = get_strategy(name)
            inner = entry.obj(self.context, **kwargs)
            self._strategies[key] = _CachedPlanStrategy(self, inner, key)
        return self._strategies[key]

    def _cached_plan(
        self,
        strategy_key: tuple[Any, ...],
        inner: Strategy,
        batch: Batch,
        phase: str,
    ) -> ExecutionPlan:
        key = (strategy_key, _batch_key(batch), phase)
        plan = self._plans.get(key)
        if plan is None:
            plan = inner.plan_layer(batch, phase=phase)
            # Warm the engine's compiled form while the plan enters the cache:
            # every later simulation of this memoised plan (repeated runs,
            # sweep points, resilience iterations) reuses one compile.
            plan.compiled()
            self._plans[key] = plan
        return plan

    @property
    def plan_cache_size(self) -> int:
        """Number of cached execution plans (diagnostic)."""
        return len(self._plans)

    # -- planning and measurement -----------------------------------------------

    def plan(
        self,
        strategy: str,
        batch: Batch | None = None,
        phase: str = "forward",
        **kwargs: Any,
    ) -> ExecutionPlan:
        """The (cached) one-layer plan of ``strategy`` for ``batch``.

        ``batch`` defaults to the first sampled batch of the session.
        Repeated calls with an equivalent (strategy, batch, phase) return the
        identical :class:`ExecutionPlan` object.
        """
        if batch is None:
            batch = self.batches[0]
        proxy = self.strategy(strategy, **kwargs)
        return proxy.plan_layer(batch, phase=phase)

    def run(
        self,
        strategy: str,
        *,
        label: str | None = None,
        perturbation: Any | None = None,
        recovery: Any = "checkpoint_restart",
        num_iterations: int = 32,
        **kwargs: Any,
    ) -> "RunResult | ResilienceResult":
        """Measure one strategy's throughput over the session batches.

        With ``perturbation`` set (a :class:`~repro.dynamics.PerturbationConfig`,
        :class:`~repro.dynamics.PerturbationModel`, or a mapping of config
        fields), the strategy instead trains ``num_iterations`` iterations on a
        cluster perturbed by a schedule drawn deterministically from the
        session seed, applying the ``recovery`` policy (registry name or
        :class:`~repro.dynamics.RecoveryPolicy` instance) whenever a node
        fails, and returns a :class:`~repro.results.ResilienceResult`.
        """
        from repro.training.throughput import measure_throughput

        proxy = self.strategy(strategy, **kwargs)
        report = measure_throughput(proxy, self.batches)
        result = RunResult(
            strategy=strategy.lower(),
            label=label if label is not None else report.strategy,
            tokens_per_second=report.tokens_per_second,
            iteration_time_s=report.iteration_time_s,
            total_tokens=report.total_tokens,
            num_batches=report.num_batches,
            config=self.config.to_dict(),
        )
        if perturbation is None:
            return result
        return self._run_resilient(
            strategy,
            healthy=result,
            perturbation=perturbation,
            recovery=recovery,
            num_iterations=num_iterations,
            **kwargs,
        )

    def _run_resilient(
        self,
        strategy: str,
        *,
        healthy: RunResult,
        perturbation: Any,
        recovery: Any,
        num_iterations: int,
        **kwargs: Any,
    ) -> "ResilienceResult":
        """Run the dynamics driver and wrap its report as a result."""
        from repro.dynamics.models import as_model
        from repro.dynamics.recovery import as_policy, run_resilient

        model = as_model(perturbation)
        schedule = model.generate(self.cluster, seed=self.config.seed)
        policy = as_policy(recovery)
        report = run_resilient(
            self,
            strategy,
            schedule=schedule,
            policy=policy,
            num_iterations=num_iterations,
            telemetry=self.telemetry,
            **kwargs,
        )
        return ResilienceResult(
            strategy=healthy.strategy,
            label=healthy.label,
            recovery=policy.name,
            goodput_tokens_per_second=report.goodput_tokens_per_second,
            healthy_tokens_per_second=healthy.tokens_per_second,
            wall_time_s=report.wall_time_s,
            time_lost_s=report.time_lost_s,
            restart_count=report.restart_count,
            num_failures=report.num_failures,
            completed_iterations=report.completed_iterations,
            num_iterations=report.num_iterations,
            final_num_nodes=report.final_num_nodes,
            total_tokens=report.useful_tokens,
            config=self.config.to_dict(),
            perturbation=model.config.to_dict(),
        )

    @staticmethod
    def _is_custom_model(perturbation: Any) -> bool:
        """True for PerturbationModel *subclasses*, whose behaviour (e.g. an
        overridden ``generate``) would be lost by flattening to a config dict."""
        from repro.dynamics.models import PerturbationModel

        return (
            isinstance(perturbation, PerturbationModel)
            and type(perturbation) is not PerturbationModel
        )

    def _run_base(
        self,
        perturbation: Any | None,
        recovery: str,
        num_iterations: int,
    ) -> dict[str, Any]:
        """Constant sweep-point fields shared by compare()/sweep() grids."""
        if perturbation is not None:
            from repro.dynamics.models import as_model

            perturbation = as_model(perturbation).config.to_dict()
        return {
            **self.config.to_dict(),
            "strategy_kwargs": {},
            "label": None,
            "perturbation": perturbation,
            # With no perturbation the recovery field is inert; normalise any
            # non-string to the default so the point stays JSON-representable.
            "recovery": recovery if isinstance(recovery, str) else "checkpoint_restart",
            "num_iterations": num_iterations,
        }

    def compare(
        self,
        strategies: Sequence[str] = DEFAULT_COMPARISON,
        baseline: str | None = None,
        *,
        perturbation: Any | None = None,
        recovery: Any = "checkpoint_restart",
        num_iterations: int = 32,
    ) -> CompareResult:
        """Measure several strategies on identical batches.

        The speedup baseline defaults to the first strategy (the paper
        normalises against TE CP, which comparisons list first).  With
        ``perturbation`` set, every strategy faces the identical perturbation
        schedule and recovery policy, and the comparison rows normalise
        *goodput* instead of raw throughput.

        Implemented as a one-axis sweep through :mod:`repro.exec`, executed
        serially against this session's own caches.
        """
        from repro.exec.spec import SweepSpec
        from repro.exec.sweep import run_sweep
        from repro.exec.worker import SessionPool

        if not strategies:
            raise ValueError("need at least one strategy to compare")
        if perturbation is not None and (
            not isinstance(recovery, str) or self._is_custom_model(perturbation)
        ):
            # A configured policy *instance* or a PerturbationModel subclass
            # cannot ride in a JSON sweep point without losing behaviour;
            # run it directly (same results, no sweep machinery).
            runs = tuple(
                self.run(
                    name,
                    perturbation=perturbation,
                    recovery=recovery,
                    num_iterations=num_iterations,
                )
                for name in strategies
            )
            return CompareResult(
                runs=runs,
                baseline=(baseline or strategies[0]).lower(),
                config=self.config.to_dict(),
            )
        spec = SweepSpec(
            base=self._run_base(perturbation, recovery, num_iterations),
            axes={"strategy": tuple(strategies)},
        )
        sweep = run_sweep(
            spec, backend="serial", pool=SessionPool(self), telemetry=self._telemetry
        )
        return CompareResult(
            runs=sweep.results,
            baseline=(baseline or strategies[0]).lower(),
            config=self.config.to_dict(),
        )

    def serve(self, spec_or_mix: Any = None, /, **knobs: Any) -> "ServeResult":
        """Drive a serving workload over this session.

        The primary form takes a frozen :class:`~repro.serve.ServeSpec` —
        the full workload description (mix, arrival process, admission
        policy, concurrency/batching limits, SLO, autoscaling), validated on
        construction::

            from repro.serve import ServeSpec

            spec = ServeSpec(mix={"zeppelin": 3, "te_cp": 1},
                             arrival="closed", clients=64, slo_s=2.0,
                             admission="slo_aware")
            result = session.serve(spec)

        A seeded arrival process emits evaluation requests drawn from the
        mix — open-loop (``poisson``/``trace``) or closed-loop (``closed``:
        a pool of virtual users that re-issue after a think time).  Requests
        are admitted or shed by the admission policy, queue under a
        ``concurrency`` limit, and compatible queued requests batch into
        shared plan executions that reuse this session's plan caches plus an
        in-run result cache, so repeated cells are near-free.  Returns a
        :class:`~repro.results.ServeResult` with throughput, goodput,
        latency percentiles, queue depth and capacity over time, shed
        counts and the cache hit rate.

        The legacy form — a mix plus loose knobs, e.g.
        ``session.serve("zeppelin", rate=20.0, slo_s=1.0)`` — remains as a
        thin shim that packages the knobs into a :class:`ServeSpec`.
        """
        from repro.serve.driver import run_serve
        from repro.serve.spec import ServeSpec

        knobs.setdefault("telemetry", self._telemetry)
        if isinstance(spec_or_mix, ServeSpec):
            telemetry = knobs.pop("telemetry")
            if knobs:
                raise ValueError(
                    "with a ServeSpec, pass no extra knobs (telemetry excepted); "
                    f"got {sorted(knobs)}"
                )
            return run_serve(self, spec=spec_or_mix, telemetry=telemetry)
        return run_serve(self, spec_or_mix, **knobs)

    # -- derived sessions and sweeps --------------------------------------------

    def derive(self, **overrides: Any) -> "Session":
        """A session for a modified configuration, cached by configuration.

        Sessions derived twice with the same overrides are the same object,
        so their batch and plan caches are reused across sweep repetitions.
        """
        config = self.config.replace(**overrides)
        if config == self.config:
            return self
        # Make this session reachable from its descendants before branching.
        self._children.setdefault(self.config.cache_key(), self)
        key = config.cache_key()
        child = self._children.get(key)
        if child is None:
            child = Session(config, telemetry=self._telemetry)
            child._children = self._children  # share the pool across the family
            self._children[key] = child
        return child

    def sweep(
        self,
        *,
        gpus: Sequence[int] | None = None,
        contexts: Sequence[int] | None = None,
        datasets: Sequence[str] | None = None,
        strategies: Sequence[str] = DEFAULT_COMPARISON,
        baseline: str | None = None,
        backend: Any = None,
        jobs: int = 1,
        cache: Any = False,
        backend_options: "Mapping[str, Any] | None" = None,
    ) -> tuple[CompareResult, ...]:
        """Compare strategies over the cartesian product of sweep axes.

        Any axis left as ``None`` stays at the session's configured value.
        Returns one :class:`CompareResult` per cell, in ``gpus`` x
        ``contexts`` x ``datasets`` order; each cell's configuration is in
        ``cell.config``.

        Declared as one :class:`~repro.exec.SweepSpec` grid over
        (gpus, contexts, datasets, strategy) and executed through
        :func:`~repro.exec.run_sweep` — pass ``backend``/``jobs``/``cache``
        to parallelise the fan-out or reuse cached points, and
        ``backend_options`` to configure a backend selected by name (e.g.
        ``backend="cluster", backend_options={"batch_system": "slurm"}``).
        """
        from repro.exec.spec import SweepSpec
        from repro.exec.sweep import run_sweep
        from repro.exec.worker import SessionPool

        if not strategies:
            raise ValueError("need at least one strategy to compare")
        spec = SweepSpec(
            base=self._run_base(None, "checkpoint_restart", 32),
            axes={
                "num_gpus": tuple(gpus) if gpus is not None else (self.config.num_gpus,),
                "total_context": (
                    tuple(contexts) if contexts is not None else (self.config.total_context,)
                ),
                "dataset": (
                    tuple(datasets) if datasets is not None else (self.config.dataset,)
                ),
                "strategy": tuple(strategies),
            },
        )
        pool = SessionPool(self) if backend in (None, "serial") and jobs == 1 else None
        sweep = run_sweep(
            spec,
            backend=backend,
            jobs=jobs,
            cache=cache,
            pool=pool,
            backend_options=backend_options,
            telemetry=self._telemetry,
        )
        cells = []
        for _, group in sweep.groups("num_gpus", "total_context", "dataset"):
            config = SessionConfig(**group.points[0].session_fields()).to_dict()
            cells.append(
                group.to_compare(
                    baseline=(baseline or strategies[0]).lower(), config=config
                )
            )
        return tuple(cells)
