"""Strategy interface and shared plan-emission helpers.

A *strategy* decides how a batch of variable-length sequences is distributed
across the cluster and what computation/communication each rank performs.  All
strategies (Zeppelin and the baselines) emit an :class:`ExecutionPlan` for one
transformer layer; the simulator times the plan and the training runner scales
it to a full iteration.

Tensor parallelism is modelled at the logical-rank level: with
``tensor_parallel = t`` every ``t`` consecutive GPUs form one logical data/
context-parallel rank whose compute throughput is the aggregate of its GPUs
(the compute model divides per-rank FLOPs by ``t``) and whose network endpoint
is its first GPU — matching the paper's observation that TP groups on Cluster A
share a NIC.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.cluster.topology import Cluster
from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.remapping import RemapPlan
from repro.costs.comm import CommCostModel
from repro.costs.compute import ComputeCostModel
from repro.data.sampler import Batch
from repro.model.memory import hidden_bytes_per_token
from repro.model.spec import TransformerSpec
from repro.utils.validation import check_in, check_positive

# Linear-module tasks run after the attention queues of the layer.
_LINEAR_PRIORITY = 3
_REMAP_PRIORITY = 3

_BACKWARD_COMPUTE_FACTOR = 2.0
_BACKWARD_COMM_FACTOR = 2.0


@dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy needs to plan a batch.

    Attributes
    ----------
    cluster:
        The hardware topology.
    spec:
        The transformer architecture being trained.
    token_budget:
        Tokens each *logical* rank processes per iteration (the paper's ``L``).
    tensor_parallel:
        GPUs per logical rank.
    """

    cluster: Cluster
    spec: TransformerSpec
    token_budget: int
    tensor_parallel: int = 1

    def __post_init__(self) -> None:
        check_positive("token_budget", self.token_budget)
        check_positive("tensor_parallel", self.tensor_parallel)
        if self.cluster.world_size % self.tensor_parallel != 0:
            raise ValueError(
                "world size must be divisible by the tensor parallel degree"
            )
        if self.tensor_parallel > self.cluster.gpus_per_node:
            raise ValueError("tensor parallel groups must fit within a node")

    @property
    def dp_ranks(self) -> tuple[int, ...]:
        """Physical ranks acting as the endpoints of the logical DP/CP ranks."""
        return tuple(
            range(0, self.cluster.world_size, self.tensor_parallel)
        )

    @property
    def dp_world_size(self) -> int:
        return self.cluster.world_size // self.tensor_parallel

    def compute_model(self) -> ComputeCostModel:
        return ComputeCostModel(
            peak_flops=self.cluster.peak_flops_per_gpu,
            device_type=self.cluster.device_type,
            tensor_parallel=self.tensor_parallel,
        )

    def comm_model(self) -> CommCostModel:
        return CommCostModel(self.cluster)


class Strategy(abc.ABC):
    """Base class for all scheduling strategies."""

    name: str = "strategy"

    def __init__(self, context: StrategyContext) -> None:
        self.context = context
        self.cluster = context.cluster
        self.spec = context.spec
        self.compute = context.compute_model()
        self.comm = context.comm_model()

    # -- interface --------------------------------------------------------------

    @abc.abstractmethod
    def plan_layer(self, batch: Batch, phase: str = "forward") -> ExecutionPlan:
        """Emit the task graph of one transformer layer for ``batch``."""

    def describe(self) -> str:
        """One-line description used in experiment output."""
        return f"{self.name} on {self.cluster.name} ({self.context.dp_world_size} DP ranks)"

    # -- shared helpers -----------------------------------------------------------

    @staticmethod
    def phase_factors(phase: str) -> tuple[float, float]:
        """(compute factor, communication factor) for the given pass direction."""
        check_in("phase", phase, ("forward", "backward"))
        if phase == "forward":
            return 1.0, 1.0
        return _BACKWARD_COMPUTE_FACTOR, _BACKWARD_COMM_FACTOR

    def emit_linear(
        self,
        plan: ExecutionPlan,
        tokens_per_rank: dict[int, int],
        deps_per_rank: dict[int, list[int]],
        phase: str = "forward",
    ) -> dict[int, int]:
        """Emit the linear-module compute task of each rank.

        Returns a mapping from rank to the linear task id (ranks with zero
        tokens are skipped).
        """
        compute_factor, _ = self.phase_factors(phase)
        task_ids: dict[int, int] = {}
        for rank, tokens in tokens_per_rank.items():
            if tokens <= 0:
                continue
            duration = self.compute.linear_time(self.spec, tokens, num_layers=1)
            duration *= compute_factor
            task_ids[rank] = plan.add(
                name=f"linear:rank{rank}:{tokens}tok",
                kind=TaskKind.LINEAR,
                duration_s=duration,
                resources=(ExecutionPlan.compute_resource(rank),),
                deps=tuple(deps_per_rank.get(rank, [])),
                rank=rank,
                priority=_LINEAR_PRIORITY,
            )
        return task_ids

    def emit_remap(
        self,
        plan: ExecutionPlan,
        remap_plan: RemapPlan,
        deps_per_rank: dict[int, list[int]],
        phase: str = "forward",
        label: str = "remap",
    ) -> dict[int, list[int]]:
        """Emit the alltoallv transfers of a remapping plan.

        Returns, per destination rank, the ids of the transfers arriving there
        (downstream tasks on that rank must depend on them).
        """
        _, comm_factor = self.phase_factors(phase)
        bytes_per_token = hidden_bytes_per_token(self.spec) * comm_factor
        incoming: dict[int, list[int]] = {r: [] for r in remap_plan.ranks}
        ranks = remap_plan.ranks
        for i, src in enumerate(ranks):
            for j, dst in enumerate(ranks):
                tokens = remap_plan.transfer_tokens[i][j]
                if tokens <= 0 or src == dst:
                    continue
                nbytes = tokens * bytes_per_token
                if self.cluster.same_node(src, dst):
                    duration = self.comm.intra_node_time(nbytes)
                    resources = (
                        ExecutionPlan.nvlink_resource(src, "tx"),
                        ExecutionPlan.nvlink_resource(dst, "rx"),
                    )
                    kind = TaskKind.REMAP
                else:
                    src_nic = self.cluster.nic_of(src).nic_id
                    dst_nic = self.cluster.nic_of(dst).nic_id
                    duration = self.comm.inter_node_time(nbytes, nics=1)
                    resources = (
                        ExecutionPlan.nic_resource(src_nic, "tx"),
                        ExecutionPlan.nic_resource(dst_nic, "rx"),
                    )
                    kind = TaskKind.REMAP
                tid = plan.add(
                    name=f"{label}:{src}->{dst}:{int(tokens)}tok",
                    kind=kind,
                    duration_s=duration,
                    resources=resources,
                    deps=tuple(deps_per_rank.get(src, [])),
                    rank=src,
                    priority=_REMAP_PRIORITY,
                )
                incoming[dst].append(tid)
        return incoming

    def emit_all_to_all(
        self,
        plan: ExecutionPlan,
        ranks: tuple[int, ...],
        bytes_per_rank: float,
        deps_per_rank: dict[int, list[int]],
        label: str,
        phase: str = "forward",
    ) -> dict[int, int]:
        """Emit a uniform all-to-all among ``ranks`` as one task per rank."""
        _, comm_factor = self.phase_factors(phase)
        g = len(ranks)
        if g <= 1:
            return {}
        per_pair = bytes_per_rank * comm_factor / g
        duration = self.comm.all_to_all_time(ranks, uniform_bytes=per_pair)
        task_ids: dict[int, int] = {}
        for rank in ranks:
            task_ids[rank] = plan.add(
                name=f"{label}:rank{rank}",
                kind=TaskKind.ALLGATHER,
                duration_s=duration,
                resources=(
                    ExecutionPlan.nvlink_resource(rank, "tx"),
                    ExecutionPlan.nvlink_resource(rank, "rx"),
                ),
                deps=tuple(deps_per_rank.get(rank, [])),
                rank=rank,
                priority=_REMAP_PRIORITY,
            )
        return task_ids
