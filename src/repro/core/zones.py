"""Zone analysis: local, intra-node, and inter-node sequences (Fig. 5).

For a sequence of length ``s`` executed with ring context parallelism, the
per-round attention computation grows quadratically in ``s`` while the KV
send/receive volume grows linearly.  The ratio therefore improves with length:
long sequences can hide even slow inter-node transfers behind compute, medium
sequences can hide intra-node transfers, and short sequences cannot hide any
communication and are best kept on a single device.

:func:`classify_zones` finds the two crossover lengths (where compute overtakes
intra-node and inter-node communication) for a given model and cluster, which
is the analysis Fig. 5 plots.  Note that the *partitioning algorithms* (Alg. 1
and Alg. 2) use capacity-derived thresholds, not these crossovers; the zone
analysis explains *why* the hierarchy works and feeds the Fig. 5 reproduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.cluster.topology import Cluster
from repro.costs.comm import CommCostModel
from repro.costs.compute import ComputeCostModel
from repro.model.spec import TransformerSpec
from repro.utils.validation import check_positive


class Zone(enum.Enum):
    """Which tier of the bandwidth hierarchy a sequence should use."""

    LOCAL = "local"
    INTRA_NODE = "intra_node"
    INTER_NODE = "inter_node"


@dataclass(frozen=True)
class ZoneThresholds:
    """Crossover lengths separating the three zones.

    Sequences shorter than ``local_max`` cannot hide intra-node communication
    behind their attention compute; sequences shorter than ``intra_max`` cannot
    hide inter-node communication.  Both are expressed in tokens.
    """

    local_max: int
    intra_max: int

    def __post_init__(self) -> None:
        check_positive("local_max", self.local_max)
        check_positive("intra_max", self.intra_max)
        if self.intra_max < self.local_max:
            raise ValueError("intra_max must be >= local_max")

    def zone_of(self, length: int) -> Zone:
        """Zone of a sequence of ``length`` tokens."""
        check_positive("length", length)
        if length < self.local_max:
            return Zone.LOCAL
        if length < self.intra_max:
            return Zone.INTRA_NODE
        return Zone.INTER_NODE


@dataclass(frozen=True)
class ZoneCostCurves:
    """Cost curves evaluated at a set of sequence lengths (Fig. 5 data)."""

    lengths: tuple[int, ...]
    attention_compute_s: tuple[float, ...]
    linear_compute_s: tuple[float, ...]
    intra_node_comm_s: tuple[float, ...]
    inter_node_comm_s: tuple[float, ...]


def _sequence_costs(
    spec: TransformerSpec,
    compute: ComputeCostModel,
    comm: CommCostModel,
    length: int,
) -> tuple[float, float, float]:
    """(attention compute, intra comm, inter comm) for one sequence, per layer.

    These are the three curves Fig. 5 plots: the sequence's causal attention
    time on one device and the time to send/receive its per-layer KV
    activations over the intra-node link and over a single NIC.
    """
    comp = compute.attention_time(spec, length, num_layers=1)
    kv = comm.kv_chunk_bytes(spec, length)
    intra = comm.intra_node_time(kv)
    inter = comm.inter_node_time(kv, nics=1)
    return comp, intra, inter


def classify_zones(
    spec: TransformerSpec,
    cluster: Cluster,
    max_length: int = 256 * 1024,
    tensor_parallel: int = 1,
    step: int = 256,
) -> ZoneThresholds:
    """Compute the local/intra/inter crossover lengths for a model on a cluster.

    The crossovers are the intersections of the three Fig. 5 cost curves: a
    sequence enters the intra-node zone once its attention compute exceeds the
    intra-node transfer of its KV activations (``local_max``), and the
    inter-node zone once its compute also exceeds the single-NIC inter-node
    transfer (``intra_max``).
    """
    check_positive("step", step)
    compute = ComputeCostModel(
        peak_flops=cluster.peak_flops_per_gpu,
        device_type=cluster.device_type,
        tensor_parallel=tensor_parallel,
    )
    comm = CommCostModel(cluster)

    local_max = None
    intra_max = None
    length = step
    while length <= max_length:
        comp, intra, inter = _sequence_costs(spec, compute, comm, length)
        if local_max is None and comp >= intra:
            local_max = length
        if intra_max is None and comp >= inter:
            intra_max = length
        if local_max is not None and intra_max is not None:
            break
        length += step
    if local_max is None:
        local_max = max_length
    if intra_max is None:
        intra_max = max_length
    intra_max = max(intra_max, local_max)
    return ZoneThresholds(local_max=local_max, intra_max=intra_max)


def zone_cost_curves(
    spec: TransformerSpec,
    cluster: Cluster,
    lengths: list[int] | tuple[int, ...],
    tensor_parallel: int = 1,
) -> ZoneCostCurves:
    """Evaluate the Fig. 5 cost curves at the given sequence lengths.

    Returns *per-layer* whole-sequence costs, matching the units of Fig. 5:
    attention compute on one device, linear-module compute on one device, and
    the time to send/receive the sequence's per-layer KV activations once over
    the intra-node and single-NIC inter-node links.
    """
    compute = ComputeCostModel(
        peak_flops=cluster.peak_flops_per_gpu,
        device_type=cluster.device_type,
        tensor_parallel=tensor_parallel,
    )
    comm = CommCostModel(cluster)
    attn, linear, intra, inter = [], [], [], []
    for length in lengths:
        check_positive("length", length)
        attn.append(compute.attention_time(spec, length, num_layers=1))
        linear.append(compute.linear_time(spec, length, num_layers=1))
        kv = comm.kv_chunk_bytes(spec, length)
        intra.append(comm.intra_node_time(kv))
        inter.append(comm.inter_node_time(kv, nics=1))
    return ZoneCostCurves(
        lengths=tuple(int(n) for n in lengths),
        attention_compute_s=tuple(attn),
        linear_compute_s=tuple(linear),
        intra_node_comm_s=tuple(intra),
        inter_node_comm_s=tuple(inter),
    )
