"""Remapping Layer (§3.4): re-balance tokens for the linear modules.

The attention-optimised placement can leave some ranks with many more tokens
than others, which is exactly wrong for the token-wise linear modules (MatMul,
LayerNorm, MoE).  Before the linear modules the remapping layer moves surplus
tokens to deficit ranks so every rank holds the average token count; after the
linear modules the inverse transfer restores the attention layout.

Which surplus rank ships tokens to which deficit rank is chosen by solving
Eq. (2): find a transfer matrix ``M`` (``M[i][j]`` = tokens moved from rank
``i`` to rank ``j``) that minimises the *maximum* per-rank weighted transfer
cost, where the weight is ``b_inter`` for cross-node moves and ``b_intra``
otherwise, subject to rows shipping exactly their surplus and columns receiving
exactly their deficit.  The paper solves this with Gurobi; we use
``scipy.optimize.linprog`` (HiGHS) and provide a locality-aware greedy fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.cluster.topology import Cluster
from repro.config import remap_solver
from repro.utils.validation import check_in, check_non_negative


@dataclass(frozen=True)
class RemapPlan:
    """A token-rebalancing plan for one direction (attention layout -> balanced).

    Attributes
    ----------
    ranks:
        The ranks participating in the remapping group, in matrix order.
    current:
        Token count per rank before remapping.
    target:
        Token count per rank after remapping (the balanced layout).
    transfer_tokens:
        ``transfer_tokens[i][j]`` tokens move from ``ranks[i]`` to ``ranks[j]``.
    max_rank_cost_s:
        The minimax objective value: the largest per-rank weighted send cost.
    solver:
        ``"linprog"`` or ``"greedy"`` — which method produced the plan.
    """

    ranks: tuple[int, ...]
    current: tuple[int, ...]
    target: tuple[int, ...]
    transfer_tokens: tuple[tuple[float, ...], ...]
    max_rank_cost_s: float
    solver: str

    @property
    def total_moved_tokens(self) -> float:
        """Total tokens moved by the plan."""
        return float(sum(sum(row) for row in self.transfer_tokens))

    def send_matrix_bytes(self, bytes_per_token: float) -> list[list[float]]:
        """Transfer matrix in bytes, for the alltoallv communication model."""
        check_non_negative("bytes_per_token", bytes_per_token)
        return [
            [cell * bytes_per_token for cell in row] for row in self.transfer_tokens
        ]

    def inverse(self) -> "RemapPlan":
        """The plan restoring the original layout (the transposed transfer)."""
        n = len(self.ranks)
        transposed = tuple(
            tuple(self.transfer_tokens[j][i] for j in range(n)) for i in range(n)
        )
        return RemapPlan(
            ranks=self.ranks,
            current=self.target,
            target=self.current,
            transfer_tokens=transposed,
            max_rank_cost_s=self.max_rank_cost_s,
            solver=self.solver,
        )

    def resulting_tokens(self) -> list[float]:
        """Token count per rank after applying the plan (must equal ``target``)."""
        n = len(self.ranks)
        result = [float(c) for c in self.current]
        for i in range(n):
            for j in range(n):
                moved = self.transfer_tokens[i][j]
                result[i] -= moved
                result[j] += moved
        return result


@dataclass
class RemappingLayer:
    """Builds remapping plans for a cluster.

    Parameters
    ----------
    cluster:
        Provides node membership (for the cost matrix ``T``) and bandwidths.
    solver:
        ``"linprog"``, ``"greedy"``, or ``"auto"`` which tries the LP and
        falls back to greedy if the solver fails.  ``None`` (the default)
        resolves through :func:`repro.config.remap_solver`, i.e. the
        ``REPRO_REMAP_SOLVER`` environment knob or ``"auto"``; the resolved
        value is part of the result-cache salt, so the knob can never
        surface results computed under the other solver.
    """

    cluster: Cluster
    solver: str | None = None

    def __post_init__(self) -> None:
        if self.solver is None:
            self.solver = remap_solver()
        check_in("solver", self.solver, ("linprog", "greedy", "auto"))

    # -- cost matrix -------------------------------------------------------------

    def cost_matrix(self, ranks: tuple[int, ...]) -> np.ndarray:
        """Symmetric per-token transfer cost between ranks (``T`` in Eq. 2)."""
        profile = self.cluster.profile
        n = len(ranks)
        t = np.zeros((n, n), dtype=float)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                if self.cluster.same_node(ranks[i], ranks[j]):
                    t[i, j] = profile.b_intra
                else:
                    t[i, j] = profile.b_inter
        return t

    # -- plan construction -----------------------------------------------------------

    def plan(
        self,
        tokens_per_rank: dict[int, int],
        bytes_per_token: float = 1.0,
    ) -> RemapPlan:
        """Build the balancing plan for the given per-rank token counts.

        ``bytes_per_token`` scales the cost matrix into seconds (it does not
        change the optimal transfer pattern, only the reported cost).
        """
        check_non_negative("bytes_per_token", bytes_per_token)
        ranks = tuple(sorted(tokens_per_rank))
        current = np.array([tokens_per_rank[r] for r in ranks], dtype=float)
        n = len(ranks)
        if n == 0:
            raise ValueError("tokens_per_rank must not be empty")
        target = np.full(n, current.sum() / n)

        surplus = np.maximum(current - target, 0.0)
        deficit = np.maximum(target - current, 0.0)
        cost = self.cost_matrix(ranks) * bytes_per_token

        if surplus.sum() < 1e-9:
            zero = tuple(tuple(0.0 for _ in range(n)) for _ in range(n))
            return RemapPlan(
                ranks=ranks,
                current=tuple(int(c) for c in current),
                target=tuple(int(round(t)) for t in target),
                transfer_tokens=zero,
                max_rank_cost_s=0.0,
                solver="trivial",
            )

        matrix = None
        used_solver = None
        if self.solver in ("linprog", "auto"):
            matrix = self._solve_linprog(surplus, deficit, cost)
            used_solver = "linprog"
        if matrix is None:
            if self.solver == "linprog":
                raise RuntimeError("linprog failed to solve the remapping LP")
            matrix = self._solve_greedy(surplus, deficit, cost)
            used_solver = "greedy"

        max_cost = float(np.max((cost * matrix).sum(axis=1))) if n else 0.0
        return RemapPlan(
            ranks=ranks,
            current=tuple(int(c) for c in current),
            target=tuple(int(round(t)) for t in target),
            transfer_tokens=tuple(tuple(float(x) for x in row) for row in matrix),
            max_rank_cost_s=max_cost,
            solver=used_solver,
        )

    # -- solvers ----------------------------------------------------------------------

    @staticmethod
    def _solve_linprog(
        surplus: np.ndarray, deficit: np.ndarray, cost: np.ndarray
    ) -> np.ndarray | None:
        """Minimise the maximum per-rank send cost with an LP.

        Variables: the ``n*n`` entries of ``M`` plus the bound ``t``.
        Minimise ``t`` subject to per-row cost <= ``t``, row sums equal to the
        surplus, and column sums equal to the deficit.
        """
        n = len(surplus)
        num_m = n * n
        c = np.zeros(num_m + 1)
        c[-1] = 1.0  # minimise t

        # Row cost constraints: sum_j cost[i, j] * M[i, j] - t <= 0.
        a_ub = np.zeros((n, num_m + 1))
        for i in range(n):
            a_ub[i, i * n : (i + 1) * n] = cost[i]
            a_ub[i, -1] = -1.0
        b_ub = np.zeros(n)

        # Equality constraints: row sums = surplus, column sums = deficit.
        a_eq = np.zeros((2 * n, num_m + 1))
        b_eq = np.zeros(2 * n)
        for i in range(n):
            a_eq[i, i * n : (i + 1) * n] = 1.0
            b_eq[i] = surplus[i]
        for j in range(n):
            a_eq[n + j, j::n] = 1.0
            # Guard against the column block accidentally including t.
            a_eq[n + j, -1] = 0.0
            b_eq[n + j] = deficit[j]

        bounds = [(0, None)] * num_m + [(0, None)]
        try:
            result = linprog(
                c,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=bounds,
                method="highs",
            )
        except Exception:  # pragma: no cover - scipy failure is environment-specific
            return None
        if not result.success:
            return None
        matrix = np.array(result.x[:num_m]).reshape(n, n)
        matrix[matrix < 1e-9] = 0.0
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def _solve_greedy(
        self, surplus: np.ndarray, deficit: np.ndarray, cost: np.ndarray
    ) -> np.ndarray:
        """Locality-aware greedy matching: satisfy deficits from the cheapest source."""
        n = len(surplus)
        matrix = np.zeros((n, n))
        remaining_surplus = surplus.copy()
        remaining_deficit = deficit.copy()
        # Pair (cost, source, destination) in increasing cost order so intra-node
        # moves are exhausted before any inter-node move is considered.
        pairs = sorted(
            (
                (cost[i, j], i, j)
                for i in range(n)
                for j in range(n)
                if i != j
            ),
            key=lambda item: item[0],
        )
        for _, i, j in pairs:
            if remaining_surplus[i] <= 1e-9 or remaining_deficit[j] <= 1e-9:
                continue
            moved = min(remaining_surplus[i], remaining_deficit[j])
            matrix[i, j] += moved
            remaining_surplus[i] -= moved
            remaining_deficit[j] -= moved
        return matrix
