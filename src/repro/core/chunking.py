"""Causal-balanced chunk assignment for ring attention (Fig. 6).

Under a lower-triangular (causal) mask, a contiguous even split of a sequence
gives the last rank far more work than the first.  Zeppelin (like striped and
zigzag ring attention) splits each ring sequence into ``2G`` equal chunks and
assigns rank ``i`` the ``i``-th and the ``(2G - 1 - i)``-th chunks, pairing an
early (cheap) chunk with a late (expensive) chunk so every rank performs the
same number of (query, key) pairs up to edge effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ChunkAssignment:
    """Chunk ownership of one rank within a ring group.

    Attributes
    ----------
    ring_index:
        Position of the rank within the ring (0-based).
    head_chunk:
        ``(start, length)`` of the rank's early chunk (token offsets within the
        sequence).
    tail_chunk:
        ``(start, length)`` of the rank's late chunk.
    """

    ring_index: int
    head_chunk: tuple[int, int]
    tail_chunk: tuple[int, int]

    @property
    def tokens(self) -> int:
        """Total tokens owned by this rank."""
        return self.head_chunk[1] + self.tail_chunk[1]

    @property
    def causal_pairs(self) -> float:
        """Number of (query, key) pairs this rank evaluates under the causal mask.

        Query token at absolute position ``p`` attends to ``p + 1`` keys.
        """
        pairs = 0.0
        for start, length in (self.head_chunk, self.tail_chunk):
            # sum_{p=start}^{start+length-1} (p + 1)
            pairs += length * (start + 1) + length * (length - 1) / 2.0
        return pairs


def _chunk_bounds(seq_len: int, num_chunks: int) -> list[tuple[int, int]]:
    """Split ``seq_len`` tokens into ``num_chunks`` near-equal (start, length) chunks."""
    base = seq_len // num_chunks
    extra = seq_len % num_chunks
    bounds = []
    start = 0
    for c in range(num_chunks):
        length = base + (1 if c < extra else 0)
        bounds.append((start, length))
        start += length
    return bounds


def zigzag_assignment(seq_len: int, group_size: int) -> list[ChunkAssignment]:
    """Zigzag chunk assignment of a sequence across a ring of ``group_size`` ranks.

    Parameters
    ----------
    seq_len:
        Length of the (portion of the) sequence executed on this ring.
    group_size:
        Ring size ``G``; the sequence is divided into ``2G`` chunks.

    Returns
    -------
    list[ChunkAssignment]
        One assignment per ring index.  Token ownership is a partition of
        ``[0, seq_len)``.
    """
    check_positive("seq_len", seq_len)
    check_positive("group_size", group_size)
    chunks = _chunk_bounds(seq_len, 2 * group_size)
    assignments = []
    for i in range(group_size):
        assignments.append(
            ChunkAssignment(
                ring_index=i,
                head_chunk=chunks[i],
                tail_chunk=chunks[2 * group_size - 1 - i],
            )
        )
    return assignments


def contiguous_assignment(seq_len: int, group_size: int) -> list[ChunkAssignment]:
    """Naive contiguous even split (used as the imbalance baseline in tests).

    Rank ``i`` owns the ``i``-th of ``G`` contiguous chunks; the tail chunk is
    empty.
    """
    check_positive("seq_len", seq_len)
    check_positive("group_size", group_size)
    chunks = _chunk_bounds(seq_len, group_size)
    return [
        ChunkAssignment(ring_index=i, head_chunk=chunks[i], tail_chunk=(chunks[i][0] + chunks[i][1], 0))
        for i in range(group_size)
    ]


def assignment_imbalance(assignments: list[ChunkAssignment]) -> float:
    """Ratio of the heaviest rank's causal work to the mean (1.0 = perfectly balanced)."""
    if not assignments:
        raise ValueError("assignments must be non-empty")
    pairs = [a.causal_pairs for a in assignments]
    mean = sum(pairs) / len(pairs)
    if mean == 0:
        return 1.0
    return max(pairs) / mean


def round_kv_tokens(assignments: list[ChunkAssignment], ring_index: int) -> int:
    """Tokens of KV activation a rank forwards per ring round (its owned tokens)."""
    check_non_negative("ring_index", ring_index)
    if ring_index >= len(assignments):
        raise ValueError("ring_index out of range")
    return assignments[ring_index].tokens
