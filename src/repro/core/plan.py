"""Execution plans: the task graph a strategy emits and the simulator runs.

A plan is a DAG of :class:`Task` objects.  Each task has a fixed duration
(computed analytically by the strategy from the cost models), a set of
*resources* it must hold exclusively while running (a GPU compute stream, a NIC
direction, an NVSwitch port), and dependencies on other tasks.  The
discrete-event simulator (:mod:`repro.sim.engine`) schedules tasks greedily as
their dependencies complete and their resources free up, which is exactly how
overlap between computation and communication arises in the real system's
multi-stream execution.

Resource naming conventions (all strings):

* ``compute:{rank}`` — the GPU's compute stream,
* ``nvl:{rank}:tx`` / ``nvl:{rank}:rx`` — the GPU's NVSwitch egress / ingress,
* ``nic:{nic_id}:tx`` / ``nic:{nic_id}:rx`` — a NIC direction.

The per-direction split models full-duplex links: a send and a receive on the
same NIC do not contend, but two sends do — which is how the simulator exposes
the Cluster A "2 GPUs share one NIC" bottleneck.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.utils.validation import check_non_negative


class TaskKind(enum.Enum):
    """Category of work a task performs; used for trace accounting (Fig. 12)."""

    ATTENTION = "attention"
    LINEAR = "linear"
    INTRA_COMM = "intra_comm"
    INTER_COMM = "inter_comm"
    DISPATCH = "dispatch"
    COMBINE = "combine"
    REMAP = "remap"
    ALLGATHER = "allgather"
    OTHER = "other"

    @property
    def is_communication(self) -> bool:
        return self in {
            TaskKind.INTRA_COMM,
            TaskKind.INTER_COMM,
            TaskKind.DISPATCH,
            TaskKind.COMBINE,
            TaskKind.REMAP,
            TaskKind.ALLGATHER,
        }


@dataclass
class Task:
    """One unit of work in an execution plan.

    Attributes
    ----------
    task_id:
        Unique id within the plan (assigned by :class:`ExecutionPlan.add`).
    name:
        Human-readable name used in traces.
    kind:
        Task category.
    duration_s:
        Execution time in seconds once started.
    resources:
        Resource names held exclusively for the task's duration.  An empty
        tuple means the task only synchronises (zero-cost barrier).
    deps:
        Ids of tasks that must complete before this task may start.
    rank:
        Global rank the task is attributed to in traces (-1 for none).
    priority:
        Lower values start first when several ready tasks compete for a
        resource; strategies use this to encode the inter -> intra -> local
        queue ordering of §3.2.
    """

    task_id: int
    name: str
    kind: TaskKind
    duration_s: float
    resources: tuple[str, ...]
    deps: tuple[int, ...] = ()
    rank: int = -1
    priority: int = 0

    def __post_init__(self) -> None:
        check_non_negative("duration_s", self.duration_s)
        if self.task_id < 0:
            raise ValueError("task_id must be non-negative")


@dataclass
class ExecutionPlan:
    """A DAG of tasks describing (part of) one training iteration.

    Plans are typically built per transformer layer and per pass direction;
    :mod:`repro.training.iteration` scales the simulated layer time to the full
    model.
    """

    name: str = "plan"
    tasks: list[Task] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add(
        self,
        name: str,
        kind: TaskKind,
        duration_s: float,
        resources: tuple[str, ...] = (),
        deps: tuple[int, ...] | list[int] = (),
        rank: int = -1,
        priority: int = 0,
    ) -> int:
        """Append a task and return its id."""
        self._compiled = None  # the cached compiled form is now stale
        task_id = len(self.tasks)
        deps = tuple(deps)
        for d in deps:
            if d < 0 or d >= task_id:
                raise ValueError(
                    f"dependency {d} of task {task_id} does not refer to an "
                    f"earlier task"
                )
        self.tasks.append(
            Task(
                task_id=task_id,
                name=name,
                kind=kind,
                duration_s=duration_s,
                resources=tuple(resources),
                deps=deps,
                rank=rank,
                priority=priority,
            )
        )
        return task_id

    # -- compiled form ---------------------------------------------------------

    def compiled(self):
        """The dense :class:`~repro.sim.compile.CompiledPlan` of this plan.

        Built on first use and cached on the plan object, so every simulation
        of a memoised plan (session plan caches, sweep pools, resilience
        iterations) shares one compile.  Appending tasks via :meth:`add`
        invalidates the cache; direct ``plan.tasks`` mutation that keeps the
        task count unchanged is not detected.
        """
        from repro.sim.compile import compile_plan

        return compile_plan(self)

    # -- introspection ---------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def total_duration_by_kind(self) -> dict[TaskKind, float]:
        """Sum of task durations grouped by kind (not wall-clock: ignores overlap)."""
        totals: dict[TaskKind, float] = {}
        for task in self.tasks:
            totals[task.kind] = totals.get(task.kind, 0.0) + task.duration_s
        return totals

    def tasks_for_rank(self, rank: int) -> list[Task]:
        """Tasks attributed to a given rank, in insertion order."""
        return [t for t in self.tasks if t.rank == rank]

    def critical_path_lower_bound(self) -> float:
        """Longest dependency chain duration — a lower bound on the makespan.

        Ignores resource contention, so the simulated makespan is always at
        least this value; used as a sanity check in tests.
        """
        finish: list[float] = [0.0] * len(self.tasks)
        for task in self.tasks:  # tasks are topologically ordered by construction
            start = max((finish[d] for d in task.deps), default=0.0)
            finish[task.task_id] = start + task.duration_s
        return max(finish, default=0.0)

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on violation."""
        seen_ids = set()
        for i, task in enumerate(self.tasks):
            if task.task_id != i:
                raise ValueError(f"task at index {i} has id {task.task_id}")
            if task.task_id in seen_ids:
                raise ValueError(f"duplicate task id {task.task_id}")
            seen_ids.add(task.task_id)
            for d in task.deps:
                if d >= task.task_id:
                    raise ValueError(
                        f"task {task.task_id} depends on later task {d}"
                    )

    # -- resource helpers --------------------------------------------------------

    @staticmethod
    def compute_resource(rank: int) -> str:
        """Resource name of a rank's compute stream."""
        return f"compute:{rank}"

    @staticmethod
    def nvlink_resource(rank: int, direction: str) -> str:
        """Resource name of a rank's NVSwitch port (direction ``"tx"``/``"rx"``)."""
        if direction not in ("tx", "rx"):
            raise ValueError("direction must be 'tx' or 'rx'")
        return f"nvl:{rank}:{direction}"

    @staticmethod
    def nic_resource(nic_id: int, direction: str) -> str:
        """Resource name of a NIC direction (``"tx"``/``"rx"``)."""
        if direction not in ("tx", "rx"):
            raise ValueError("direction must be 'tx' or 'rx'")
        return f"nic:{nic_id}:{direction}"
