"""The Zeppelin strategy: partitioner + attention engine + routing + remapping.

:class:`ZeppelinStrategy` glues the four layers of §3 together into a single
:class:`~repro.core.strategy.Strategy`.  The three component switches —
``use_routing``, ``use_remapping`` and ``balanced_partitioning`` — correspond
to the ablation configurations of Fig. 11:

===============================  =========  ===========  =============
Configuration                     routing    partitioner  remapping
===============================  =========  ===========  =============
``w/ Routing`` (on TE CP)         on         off (even)   off
``w/ Attn Eng``                   off        on           off
``w/ Routing & Attn Eng``         on         on           off
``w/ All`` (full Zeppelin)        on         on           on
===============================  =========  ===========  =============
"""

from __future__ import annotations

from repro.core.attention_engine import AttentionEngine
from repro.core.partitioner import PartitionResult, SequencePartitioner
from repro.core.plan import ExecutionPlan
from repro.core.remapping import RemappingLayer
from repro.core.routing import RoutingLayer
from repro.core.strategy import Strategy, StrategyContext
from repro.data.sampler import Batch
from repro.registry import register_strategy


@register_strategy(
    "zeppelin",
    description="Hierarchical partitioning + attention engine + routing + remapping (full system)",
)
class ZeppelinStrategy(Strategy):
    """Zeppelin's hierarchical, routing- and remapping-aware scheduling."""

    name = "Zeppelin"

    def __init__(
        self,
        context: StrategyContext,
        use_routing: bool = True,
        use_remapping: bool = True,
        balanced_chunking: bool = True,
        remap_solver: str | None = None,
    ) -> None:
        super().__init__(context)
        self.use_routing = use_routing
        self.use_remapping = use_remapping
        self.partitioner = SequencePartitioner(
            cluster=self._dp_view(), token_budget=context.token_budget
        )
        self.routing = RoutingLayer(cluster=self.cluster, enabled=use_routing)
        self.engine = AttentionEngine(
            cluster=self.cluster,
            compute=self.compute,
            comm=self.comm,
            routing=self.routing,
            balanced_chunking=balanced_chunking,
        )
        self.remapping = RemappingLayer(cluster=self.cluster, solver=remap_solver)
        disabled = []
        if not use_routing:
            disabled.append("no routing")
        if not use_remapping:
            disabled.append("no remap")
        if disabled:
            self.name = f"Zeppelin ({', '.join(disabled)})"

    # -- helpers ---------------------------------------------------------------

    def _dp_view(self):
        """The cluster as seen by the partitioner.

        With tensor parallelism, the partitioner operates over logical ranks.
        We keep the physical cluster (logical rank == first GPU of the TP
        group) when ``tensor_parallel == 1``; for larger TP degrees a reduced
        cluster view with ``gpus_per_node / tp`` devices per node would be the
        faithful mapping, but the paper's TP experiments fix ``tp = 2`` with
        the partitioning still operating per physical node, so we reuse the
        physical topology and have the planner place work only on DP endpoint
        ranks via the token budget.
        """
        return self.cluster

    def partition(self, batch: Batch) -> PartitionResult:
        """Run the hierarchical partitioner on a batch (exposed for inspection)."""
        return self.partitioner.partition(batch)

    # -- Strategy interface ------------------------------------------------------

    def plan_layer(self, batch: Batch, phase: str = "forward") -> ExecutionPlan:
        plan = ExecutionPlan(name=f"zeppelin:{phase}")
        partition = self.partitioner.partition(batch)
        plan.metadata["partition"] = partition
        plan.metadata["total_tokens"] = batch.total_tokens
        plan.metadata["strategy"] = self.name
        plan.metadata["phase"] = phase

        # 1. Attention: hierarchical queues + (optionally routed) ring rounds.
        attn_tasks = self.engine.emit_attention(plan, partition, self.spec, phase=phase)

        # 2. Linear modules, optionally remapped to a token-balanced layout.
        # Remapping is only worth its two alltoallv transfers when the time the
        # slowest rank saves in the linear modules exceeds the transfer cost
        # (§3.4: "minimal overhead").
        tokens_per_rank = partition.tokens_per_rank()
        apply_remap = False
        remap_plan = None
        if self.use_remapping:
            from repro.model.memory import hidden_bytes_per_token

            remap_plan = self.remapping.plan(
                tokens_per_rank, bytes_per_token=hidden_bytes_per_token(self.spec)
            )
            counts = list(tokens_per_rank.values())
            imbalance_tokens = max(counts) - sum(counts) / len(counts)
            linear_saving = self.compute.linear_time(
                self.spec, int(imbalance_tokens), num_layers=1
            )
            apply_remap = (
                remap_plan.total_moved_tokens > 0
                and linear_saving > 2.0 * remap_plan.max_rank_cost_s
            )
        if apply_remap:
            incoming = self.emit_remap(
                plan, remap_plan, attn_tasks, phase=phase, label="remap_fwd"
            )
            linear_tokens = {
                rank: int(round(tokens))
                for rank, tokens in zip(remap_plan.ranks, remap_plan.resulting_tokens())
            }
            linear_deps = {
                rank: attn_tasks.get(rank, []) + incoming.get(rank, [])
                for rank in tokens_per_rank
            }
            linear_ids = self.emit_linear(plan, linear_tokens, linear_deps, phase=phase)
            # 3. Inverse remapping restores the attention layout.
            inverse = remap_plan.inverse()
            linear_dep_lists = {
                rank: [tid] for rank, tid in linear_ids.items()
            }
            self.emit_remap(
                plan, inverse, linear_dep_lists, phase=phase, label="remap_bwd"
            )
            plan.metadata["remap_plan"] = remap_plan
        else:
            self.emit_linear(plan, tokens_per_rank, attn_tasks, phase=phase)

        plan.validate()
        return plan
