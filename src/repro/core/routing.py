"""Communication Routing Layer (§3.3).

Ring attention sends KV activations from one rank to the next.  When that hop
crosses nodes, the static GPU-NIC affinity means the whole transfer funnels
through a single NIC while the node's other NICs sit idle — and ring traffic is
unidirectional, so even the active NIC only uses half its duplex capacity.

The routing layer replaces the direct transfer of ``n`` bytes with three steps:

1. **Workload dispatch (intra-node):** the source rank scatters its payload to
   ``x1`` send-proxy ranks over NVSwitch (each proxy receives ``n / x1``).
2. **Inter-node transfer (multi-NIC):** each send proxy forwards its share to a
   matching receive proxy on the destination node through its own NIC.
3. **Workload combine (intra-node):** the ``x2`` receive proxies forward their
   shares to the destination rank over NVSwitch.

The per-round cost drops from ``b_inter * n`` to Eq. (1):

``b_intra * n (x1-1)/x1  +  b_inter * max(n/x1, n/x2)  +  b_intra * n (x2-1)/x2``

:class:`RoutingLayer` selects proxy ranks (balancing them over the node's NICs)
and both evaluates the analytic Eq. (1) cost and emits the per-step transfer
list a strategy turns into simulator tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import Cluster
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class ProxyTransfer:
    """One point-to-point transfer inside a routed send."""

    src_rank: int
    dst_rank: int
    nbytes: float
    step: str
    """``"dispatch"``, ``"transfer"`` or ``"combine"``."""

    def __post_init__(self) -> None:
        check_non_negative("nbytes", self.nbytes)
        if self.step not in ("dispatch", "transfer", "combine"):
            raise ValueError(f"unknown routing step {self.step!r}")


@dataclass(frozen=True)
class RoutingDecision:
    """The routed decomposition of one inter-node send of ``total_bytes``.

    Attributes
    ----------
    src_rank, dst_rank:
        Logical endpoints of the original ring hop.
    send_proxies, recv_proxies:
        Proxy ranks used on the source and destination nodes (``x1``/``x2``).
    transfers:
        All point-to-point transfers, grouped by step.
    total_bytes:
        Payload size of the original hop.
    """

    src_rank: int
    dst_rank: int
    send_proxies: tuple[int, ...]
    recv_proxies: tuple[int, ...]
    transfers: tuple[ProxyTransfer, ...]
    total_bytes: float

    @property
    def x1(self) -> int:
        return len(self.send_proxies)

    @property
    def x2(self) -> int:
        return len(self.recv_proxies)

    def transfers_for_step(self, step: str) -> list[ProxyTransfer]:
        return [t for t in self.transfers if t.step == step]


@dataclass
class RoutingLayer:
    """Selects proxy ranks and decomposes inter-node ring hops.

    Parameters
    ----------
    cluster:
        The training cluster (provides node membership, NIC affinity and the
        bandwidth hierarchy).
    enabled:
        When ``False``, :meth:`route` returns the direct single-hop transfer —
        used by the ablation study (Fig. 11).
    """

    cluster: Cluster
    enabled: bool = True

    # -- proxy selection ----------------------------------------------------------

    def select_proxies(
        self,
        node_id: int,
        preferred_ranks: tuple[int, ...] = (),
        count: int | None = None,
    ) -> tuple[int, ...]:
        """Choose proxy ranks on ``node_id``, spreading them across distinct NICs.

        GPUs already participating in the ring (``preferred_ranks``) are used
        first; remaining proxies are taken from the node's other GPUs, one per
        still-unused NIC before doubling up, so the transfer step engages as
        many NICs as possible.
        """
        node_ranks = list(self.cluster.ranks_on_node(node_id))
        if count is None:
            count = len(node_ranks)
        check_positive("count", count)
        count = min(count, len(node_ranks))

        chosen: list[int] = []
        used_nics: set[int] = set()

        def try_add(rank: int) -> None:
            if len(chosen) >= count or rank in chosen:
                return
            chosen.append(rank)
            used_nics.add(self.cluster.nic_of(rank).nic_id)

        preferred = [r for r in preferred_ranks if r in node_ranks]
        # First pass: preferred ranks on not-yet-used NICs, then any rank on a
        # fresh NIC, then fill up with whatever is left.
        for rank in preferred:
            if self.cluster.nic_of(rank).nic_id not in used_nics:
                try_add(rank)
        for rank in node_ranks:
            if len(chosen) >= count:
                break
            if self.cluster.nic_of(rank).nic_id not in used_nics:
                try_add(rank)
        for rank in preferred:
            try_add(rank)
        for rank in node_ranks:
            try_add(rank)
        return tuple(chosen[:count])

    # -- routing a hop --------------------------------------------------------------

    def route(
        self,
        src_rank: int,
        dst_rank: int,
        nbytes: float,
        ring_ranks: tuple[int, ...] = (),
    ) -> RoutingDecision:
        """Decompose the inter-node hop ``src_rank -> dst_rank`` of ``nbytes``.

        ``ring_ranks`` are the ranks of the ring the hop belongs to; ring
        members on the source/destination nodes are preferred as proxies (they
        already hold related data), and the proxy counts are matched so that
        senders and receivers pair one-to-one (§3.3).
        """
        check_non_negative("nbytes", nbytes)
        if self.cluster.same_node(src_rank, dst_rank):
            raise ValueError("routing only applies to inter-node hops")
        if not self.enabled:
            transfer = ProxyTransfer(
                src_rank=src_rank, dst_rank=dst_rank, nbytes=nbytes, step="transfer"
            )
            return RoutingDecision(
                src_rank=src_rank,
                dst_rank=dst_rank,
                send_proxies=(src_rank,),
                recv_proxies=(dst_rank,),
                transfers=(transfer,),
                total_bytes=nbytes,
            )

        src_node = self.cluster.gpu(src_rank).node_id
        dst_node = self.cluster.gpu(dst_rank).node_id
        ring_on_src = tuple(
            r for r in ring_ranks if self.cluster.gpu(r).node_id == src_node
        )
        ring_on_dst = tuple(
            r for r in ring_ranks if self.cluster.gpu(r).node_id == dst_node
        )

        send_proxies = self.select_proxies(src_node, preferred_ranks=ring_on_src or (src_rank,))
        recv_proxies = self.select_proxies(dst_node, preferred_ranks=ring_on_dst or (dst_rank,))
        # One-to-one pairing of senders and receivers.
        pairs = min(len(send_proxies), len(recv_proxies))
        send_proxies = send_proxies[:pairs]
        recv_proxies = recv_proxies[:pairs]

        transfers: list[ProxyTransfer] = []
        share = nbytes / pairs if pairs else nbytes
        for send_proxy, recv_proxy in zip(send_proxies, recv_proxies):
            if send_proxy != src_rank and share > 0:
                transfers.append(
                    ProxyTransfer(
                        src_rank=src_rank,
                        dst_rank=send_proxy,
                        nbytes=share,
                        step="dispatch",
                    )
                )
            transfers.append(
                ProxyTransfer(
                    src_rank=send_proxy,
                    dst_rank=recv_proxy,
                    nbytes=share,
                    step="transfer",
                )
            )
            if recv_proxy != dst_rank and share > 0:
                transfers.append(
                    ProxyTransfer(
                        src_rank=recv_proxy,
                        dst_rank=dst_rank,
                        nbytes=share,
                        step="combine",
                    )
                )
        return RoutingDecision(
            src_rank=src_rank,
            dst_rank=dst_rank,
            send_proxies=send_proxies,
            recv_proxies=recv_proxies,
            transfers=tuple(transfers),
            total_bytes=nbytes,
        )

    # -- analytic cost (Eq. 1) ---------------------------------------------------------

    def routed_cost(self, nbytes: float, x1: int, x2: int) -> float:
        """Eq. (1): the analytic cost of the three-step routed transfer."""
        check_non_negative("nbytes", nbytes)
        check_positive("x1", x1)
        check_positive("x2", x2)
        profile = self.cluster.profile
        dispatch = profile.b_intra * nbytes * (x1 - 1) / x1
        inter = profile.b_inter * max(nbytes / x1, nbytes / x2)
        combine = profile.b_intra * nbytes * (x2 - 1) / x2
        return dispatch + inter + combine

    def direct_cost(self, nbytes: float) -> float:
        """Cost of the unrouted single-NIC transfer (``b_inter * n``)."""
        check_non_negative("nbytes", nbytes)
        return self.cluster.profile.b_inter * nbytes

    def speedup(self, nbytes: float, x1: int, x2: int) -> float:
        """Ratio of direct to routed cost for a hop of ``nbytes``."""
        routed = self.routed_cost(nbytes, x1, x2)
        if routed == 0:
            return 1.0
        return self.direct_cost(nbytes) / routed
