"""Zeppelin's core: partitioner, attention engine, routing layer, remapping layer.

The modules in this package implement the paper's contribution (§3):

* :mod:`repro.core.plan` — the task-graph representation every strategy emits
  and the simulator executes.
* :mod:`repro.core.zones` — the local / intra-node / inter-node zone analysis
  of Fig. 5.
* :mod:`repro.core.partitioner` — Alg. 1 (inter-node) and Alg. 2 (intra-node)
  hierarchical sequence partitioning.
* :mod:`repro.core.chunking` — the causal-balanced zigzag chunk assignment of
  Fig. 6.
* :mod:`repro.core.attention_engine` — queue construction and ring-round
  scheduling (inter-node -> intra-node -> local).
* :mod:`repro.core.routing` — the three-step communication routing layer and
  its Eq. (1) cost model.
* :mod:`repro.core.remapping` — the Eq. (2) minimax transfer optimisation that
  re-balances tokens for linear modules.
* :mod:`repro.core.zeppelin` — the full strategy gluing the layers together.
"""

from repro.core.plan import ExecutionPlan, Task, TaskKind
from repro.core.strategy import Strategy, StrategyContext
from repro.core.zones import Zone, ZoneThresholds, classify_zones
from repro.core.partitioner import (
    SequencePartitioner,
    PartitionResult,
    Placement,
    NodeAssignment,
)
from repro.core.chunking import zigzag_assignment, ChunkAssignment
from repro.core.routing import RoutingLayer, RoutingDecision
from repro.core.remapping import RemappingLayer, RemapPlan
from repro.core.attention_engine import AttentionEngine, RingGroup, SequenceQueues
from repro.core.zeppelin import ZeppelinStrategy

__all__ = [
    "ExecutionPlan",
    "Task",
    "TaskKind",
    "Strategy",
    "StrategyContext",
    "Zone",
    "ZoneThresholds",
    "classify_zones",
    "SequencePartitioner",
    "PartitionResult",
    "Placement",
    "NodeAssignment",
    "zigzag_assignment",
    "ChunkAssignment",
    "RoutingLayer",
    "RoutingDecision",
    "RemappingLayer",
    "RemapPlan",
    "AttentionEngine",
    "RingGroup",
    "SequenceQueues",
    "ZeppelinStrategy",
]
