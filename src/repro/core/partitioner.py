"""Hierarchical sequence partitioning (Alg. 1 and Alg. 2).

The partitioner decides, for every sequence in a batch, *where* it runs and at
*what granularity*:

* **Inter-node partitioning (Alg. 1)** finds the boundary ``s1`` between the
  inter-node zone and the intra-node/local zone, splits inter-node sequences
  across node buckets, and places the remaining sequences into the least-loaded
  node bucket, iteratively lowering ``s1`` whenever a sequence no longer fits
  within the per-node token budget ``P * L``.
* **Intra-node partitioning (Alg. 2)**, run per node, finds the boundary ``s0``
  between intra-node and local sequences, splits intra-node sequences across
  devices proportionally to their *quadratic* attention cost, spreads
  inter-node fragments evenly over all ``P`` devices, and places local
  sequences into the least-loaded device bucket, iteratively lowering ``s0`` on
  overflow.

``L`` is the paper's "token capacity of each GPU".  In the evaluation setup it
is the per-GPU token *budget* of an iteration (e.g. 4k tokens per GPU); GPU
memory bounds it from above (see :func:`repro.model.memory.token_capacity`).

The output records, for every global rank, the list of token placements it
received, plus the ring groups (sequence, ordered member ranks) the attention
engine will execute.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.topology import Cluster
from repro.core.zones import Zone
from repro.data.packing import split_evenly
from repro.data.sampler import Batch, Sequence
from repro.utils.validation import check_positive


class CapacityError(ValueError):
    """Raised when a batch cannot fit the cluster's total token budget."""


@dataclass(frozen=True)
class Placement:
    """Tokens of one sequence placed on one global rank."""

    seq_id: int
    tokens: int
    zone: Zone
    rank: int
    ring_id: int | None = None
    ring_index: int | None = None

    def __post_init__(self) -> None:
        check_positive("tokens", self.tokens)


@dataclass(frozen=True)
class RingSpec:
    """A ring-attention group executing one sequence.

    Attributes
    ----------
    ring_id:
        Unique id within the partition result.
    seq_id:
        The sequence executed by the ring.
    zone:
        ``INTER_NODE`` or ``INTRA_NODE``.
    ranks:
        Ordered global ranks forming the ring.
    seq_len:
        Total length of the sequence.
    """

    ring_id: int
    seq_id: int
    zone: Zone
    ranks: tuple[int, ...]
    seq_len: int

    def __post_init__(self) -> None:
        check_positive("seq_len", self.seq_len)
        if len(self.ranks) < 2:
            raise ValueError("a ring needs at least 2 ranks")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError("ring ranks must be distinct")

    @property
    def group_size(self) -> int:
        return len(self.ranks)


@dataclass
class NodeAssignment:
    """Output of Alg. 1 for one node: which sequences (or fragments) it hosts."""

    node_id: int
    inter_fragments: list[tuple[int, int]] = field(default_factory=list)
    """``(seq_id, tokens)`` fragments of inter-node sequences on this node."""
    whole_sequences: list[Sequence] = field(default_factory=list)
    """Sequences placed whole on this node (handled by Alg. 2)."""

    @property
    def total_tokens(self) -> int:
        return sum(t for _, t in self.inter_fragments) + sum(
            s.length for s in self.whole_sequences
        )


@dataclass
class PartitionResult:
    """Complete output of the hierarchical partitioning."""

    placements: dict[int, list[Placement]]
    """Per global rank: the token placements it received."""
    rings: list[RingSpec]
    """All inter-node and intra-node ring groups."""
    node_assignments: list[NodeAssignment]
    """Alg. 1 output (per node)."""
    inter_threshold: int
    """Final value of ``s1``."""
    local_thresholds: dict[int, int]
    """Final value of ``s0`` per node."""
    token_budget: int
    """The per-GPU token budget ``L`` used."""

    # -- derived views -------------------------------------------------------

    def tokens_per_rank(self) -> dict[int, int]:
        """Total tokens placed on each rank (ranks with no placement map to 0)."""
        return {
            rank: sum(p.tokens for p in placements)
            for rank, placements in self.placements.items()
        }

    def placements_by_zone(self, zone: Zone) -> list[Placement]:
        """All placements of a given zone."""
        return [p for ps in self.placements.values() for p in ps if p.zone == zone]

    def rings_by_zone(self, zone: Zone) -> list[RingSpec]:
        """Ring groups of a given zone."""
        return [r for r in self.rings if r.zone == zone]

    def total_tokens(self) -> int:
        """Total tokens across all placements."""
        return sum(self.tokens_per_rank().values())

    def max_tokens_on_rank(self) -> int:
        """Heaviest per-rank token load."""
        per_rank = self.tokens_per_rank()
        return max(per_rank.values()) if per_rank else 0


def _argmin_load(loads: list[int]) -> int:
    """Index of the smallest load (ties broken by lowest index)."""
    best = 0
    for i in range(1, len(loads)):
        if loads[i] < loads[best]:
            best = i
    return best


@dataclass
class SequencePartitioner:
    """Runs Alg. 1 + Alg. 2 for a cluster and per-GPU token budget.

    Parameters
    ----------
    cluster:
        The training cluster; provides ``N`` (nodes), ``P`` (GPUs per node) and
        the rank numbering.
    token_budget:
        The paper's ``L``: tokens each GPU processes per iteration.
    """

    cluster: Cluster
    token_budget: int

    def __post_init__(self) -> None:
        check_positive("token_budget", self.token_budget)

    # -- Alg. 1: inter-node partitioning ---------------------------------------

    def partition_inter_node(
        self, batch: Batch
    ) -> tuple[list[NodeAssignment], dict[int, list[int]], int]:
        """Assign sequences to node buckets (Alg. 1).

        Returns
        -------
        (node_assignments, inter_seq_nodes, s1)
            ``inter_seq_nodes`` maps each inter-node sequence id to the ordered
            list of node ids hosting its fragments; ``s1`` is the final
            inter-node threshold.
        """
        num_nodes = self.cluster.num_nodes
        gpus_per_node = self.cluster.gpus_per_node
        node_capacity = gpus_per_node * self.token_budget
        total = batch.total_tokens
        if total > num_nodes * node_capacity:
            raise CapacityError(
                f"batch of {total} tokens exceeds cluster budget "
                f"{num_nodes * node_capacity} tokens "
                f"({num_nodes} nodes x {node_capacity} tokens)"
            )

        ordered = list(batch.sorted_by_length(descending=True))
        s1 = node_capacity

        while True:
            assignments = [NodeAssignment(node_id=i) for i in range(num_nodes)]
            loads = [0] * num_nodes
            inter_seq_nodes: dict[int, list[int]] = {}

            z2 = [s for s in ordered if s.length >= s1]
            z01 = [s for s in ordered if s.length < s1]
            overflow = False

            if z2:
                s_avg = sum(s.length for s in z2) / num_nodes
                for seq in z2:
                    parts = max(1, math.ceil(seq.length / s_avg))
                    parts = min(parts, num_nodes)
                    # Prefer the least-loaded (ideally empty) node buckets so a
                    # long sequence gets dedicated nodes where possible.
                    order = sorted(range(num_nodes), key=lambda i: loads[i])
                    chosen = sorted(order[:parts])
                    fragments = split_evenly(seq.length, parts)
                    inter_seq_nodes[seq.seq_id] = chosen
                    for node_id, frag_tokens in zip(chosen, fragments):
                        if frag_tokens <= 0:
                            continue
                        assignments[node_id].inter_fragments.append(
                            (seq.seq_id, frag_tokens)
                        )
                        loads[node_id] += frag_tokens

            for seq in z01:
                idx = _argmin_load(loads)
                if seq.length + loads[idx] > node_capacity:
                    s1 = max(s.length for s in z01)
                    overflow = True
                    break
                assignments[idx].whole_sequences.append(seq)
                loads[idx] += seq.length

            if not overflow:
                return assignments, inter_seq_nodes, s1

    # -- Alg. 2: intra-node partitioning ----------------------------------------

    def partition_intra_node(
        self, assignment: NodeAssignment
    ) -> tuple[dict[int, list[tuple[int, int, Zone]]], dict[int, list[int]], int]:
        """Partition one node's sequences across its devices (Alg. 2).

        Parameters
        ----------
        assignment:
            The node's Alg. 1 output.

        Returns
        -------
        (device_buckets, intra_seq_devices, s0)
            ``device_buckets`` maps local rank to ``(seq_id, tokens, zone)``
            entries; ``intra_seq_devices`` maps each intra-node sequence id to
            the ordered local ranks of its ring; ``s0`` is the final local
            threshold.
        """
        gpus_per_node = self.cluster.gpus_per_node
        device_capacity = self.token_budget
        ordered = sorted(
            assignment.whole_sequences, key=lambda s: s.length, reverse=True
        )
        s0 = device_capacity

        while True:
            buckets: dict[int, list[tuple[int, int, Zone]]] = {
                local: [] for local in range(gpus_per_node)
            }
            loads = [0] * gpus_per_node
            intra_seq_devices: dict[int, list[int]] = {}
            overflow = False

            # Inter-node fragments are split evenly over all P devices.
            for seq_id, frag_tokens in assignment.inter_fragments:
                shares = split_evenly(frag_tokens, gpus_per_node)
                for local, share in enumerate(shares):
                    if share <= 0:
                        continue
                    buckets[local].append((seq_id, share, Zone.INTER_NODE))
                    loads[local] += share

            z1 = [s for s in ordered if s.length >= s0]
            z0 = [s for s in ordered if s.length < s0]

            if z1:
                c_avg = sum(s.length**2 for s in z1) / gpus_per_node
                cursor = 0
                for seq in z1:
                    parts = max(1, math.ceil(seq.length**2 / c_avg)) if c_avg > 0 else 1
                    parts = min(parts, gpus_per_node)
                    if parts == 1 and seq.length > device_capacity:
                        parts = min(
                            gpus_per_node, math.ceil(seq.length / device_capacity)
                        )
                    parts = min(parts, seq.length)
                    fragments = split_evenly(seq.length, parts)
                    devices = []
                    for frag_tokens in fragments:
                        if frag_tokens <= 0:
                            continue
                        local = cursor % gpus_per_node
                        cursor += 1
                        devices.append(local)
                        buckets[local].append((seq.seq_id, frag_tokens, Zone.INTRA_NODE))
                        loads[local] += frag_tokens
                    if len(devices) >= 2:
                        intra_seq_devices[seq.seq_id] = devices
                    else:
                        # A single-device "ring" degenerates to local execution.
                        buckets[devices[0]][-1] = (
                            seq.seq_id,
                            seq.length,
                            Zone.LOCAL,
                        )

            for seq in z0:
                idx = _argmin_load(loads)
                if seq.length + loads[idx] > device_capacity:
                    s0 = max(s.length for s in z0)
                    overflow = True
                    break
                buckets[idx].append((seq.seq_id, seq.length, Zone.LOCAL))
                loads[idx] += seq.length

            if not overflow:
                return buckets, intra_seq_devices, s0

    # -- full pipeline -------------------------------------------------------------

    def partition(self, batch: Batch) -> PartitionResult:
        """Run the full two-level partitioning and assemble the result."""
        node_assignments, inter_seq_nodes, s1 = self.partition_inter_node(batch)
        gpus_per_node = self.cluster.gpus_per_node

        placements: dict[int, list[Placement]] = {
            rank: [] for rank in self.cluster.iter_ranks()
        }
        rings: list[RingSpec] = []
        local_thresholds: dict[int, int] = {}
        seq_lengths = {s.seq_id: s.length for s in batch}

        # Ring membership of inter-node sequences: all ranks of every spanned
        # node, in node order then local-rank order.
        inter_ring_ranks: dict[int, list[int]] = {}
        for seq_id, nodes in inter_seq_nodes.items():
            ranks: list[int] = []
            for node_id in nodes:
                ranks.extend(self.cluster.ranks_on_node(node_id))
            inter_ring_ranks[seq_id] = ranks

        ring_id = 0
        inter_ring_ids: dict[int, int] = {}
        for seq_id, ranks in inter_ring_ranks.items():
            rings.append(
                RingSpec(
                    ring_id=ring_id,
                    seq_id=seq_id,
                    zone=Zone.INTER_NODE,
                    ranks=tuple(ranks),
                    seq_len=seq_lengths[seq_id],
                )
            )
            inter_ring_ids[seq_id] = ring_id
            ring_id += 1

        for assignment in node_assignments:
            buckets, intra_seq_devices, s0 = self.partition_intra_node(assignment)
            local_thresholds[assignment.node_id] = s0
            base_rank = assignment.node_id * gpus_per_node

            intra_ring_ids: dict[int, int] = {}
            for seq_id, devices in intra_seq_devices.items():
                ranks = tuple(base_rank + local for local in devices)
                rings.append(
                    RingSpec(
                        ring_id=ring_id,
                        seq_id=seq_id,
                        zone=Zone.INTRA_NODE,
                        ranks=ranks,
                        seq_len=seq_lengths[seq_id],
                    )
                )
                intra_ring_ids[seq_id] = ring_id
                ring_id += 1

            for local, entries in buckets.items():
                rank = base_rank + local
                for seq_id, tokens, zone in entries:
                    if zone == Zone.INTER_NODE:
                        rid = inter_ring_ids[seq_id]
                        ring_ranks = rings[rid].ranks
                        ring_index = ring_ranks.index(rank)
                    elif zone == Zone.INTRA_NODE:
                        rid = intra_ring_ids[seq_id]
                        ring_ranks = rings[rid].ranks
                        ring_index = ring_ranks.index(rank)
                    else:
                        rid = None
                        ring_index = None
                    placements[rank].append(
                        Placement(
                            seq_id=seq_id,
                            tokens=tokens,
                            zone=zone,
                            rank=rank,
                            ring_id=rid,
                            ring_index=ring_index,
                        )
                    )

        result = PartitionResult(
            placements=placements,
            rings=rings,
            node_assignments=node_assignments,
            inter_threshold=s1,
            local_thresholds=local_thresholds,
            token_budget=self.token_budget,
        )
        self._validate(result, batch)
        return result

    # -- invariants ------------------------------------------------------------------

    def _validate(self, result: PartitionResult, batch: Batch) -> None:
        """Check that every token of the batch was placed exactly once."""
        placed: dict[int, int] = {}
        for placements in result.placements.values():
            for p in placements:
                placed[p.seq_id] = placed.get(p.seq_id, 0) + p.tokens
        for seq in batch:
            got = placed.get(seq.seq_id, 0)
            if got != seq.length:
                raise RuntimeError(
                    f"partitioner placed {got} tokens of sequence {seq.seq_id}, "
                    f"expected {seq.length}"
                )
        extra = set(placed) - {s.seq_id for s in batch}
        if extra:
            raise RuntimeError(f"partitioner produced unknown sequence ids {extra}")
