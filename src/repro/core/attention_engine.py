"""Attention Engine (§3.2): queue construction and ring-round scheduling.

Given a :class:`~repro.core.partitioner.PartitionResult`, the engine builds the
three sequence queues each device executes — inter-node rings, intra-node
rings, and local sequences — and emits the corresponding task graph for one
transformer layer:

* ring groups execute ``G`` rounds; in round ``k`` every rank computes the
  causal-visible attention pairs between its query chunks and the KV chunks it
  currently holds, while forwarding its held KV payload to the next rank,
* inter-node hops are decomposed by the routing layer (§3.3) into dispatch /
  multi-NIC transfer / combine tasks,
* local sequences execute a single variable-length attention task,
* queue priorities encode the inter -> intra -> local execution order that lets
  inter-node rings launch first and local work fill the gaps.

Causal balance within a ring comes from the zigzag chunk assignment
(:mod:`repro.core.chunking`); the per-round work is the exact number of
mask-visible (query, key) pairs, so tests can check that the per-rank totals
sum to the monolithic causal cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.topology import Cluster
from repro.core.chunking import ChunkAssignment, contiguous_assignment, zigzag_assignment
from repro.core.partitioner import PartitionResult, Placement, RingSpec
from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.routing import RoutingLayer
from repro.core.zones import Zone
from repro.costs.comm import CommCostModel
from repro.costs.compute import ComputeCostModel
from repro.model.spec import TransformerSpec
from repro.utils.validation import check_in

# Queue priorities: lower starts first on a busy compute stream.
_PRIORITY = {Zone.INTER_NODE: 0, Zone.INTRA_NODE: 1, Zone.LOCAL: 2}

# Backward passes move gradients of KV alongside KV and roughly double compute.
_BACKWARD_COMPUTE_FACTOR = 2.0
_BACKWARD_COMM_FACTOR = 2.0


def causal_pairs_between(
    q_range: tuple[int, int], kv_range: tuple[int, int]
) -> float:
    """Number of causal-mask-visible (query, key) pairs between two token ranges.

    ``q_range`` and ``kv_range`` are ``(start, length)`` spans of absolute
    positions within the same sequence; a query at position ``p`` sees keys at
    positions ``<= p``.
    """
    q_start, q_len = q_range
    kv_start, kv_len = kv_range
    if q_len <= 0 or kv_len <= 0:
        return 0.0
    kv_end = kv_start + kv_len  # exclusive
    total = 0.0
    lo = q_start
    hi = q_start + q_len - 1
    # Region where the query sees the full KV range: p >= kv_end - 1.
    full_lo = max(lo, kv_end - 1)
    if full_lo <= hi:
        total += (hi - full_lo + 1) * kv_len
    # Region where the query sees a prefix of the KV range: kv_start <= p < kv_end - 1.
    part_lo = max(lo, kv_start)
    part_hi = min(hi, kv_end - 2)
    if part_lo <= part_hi:
        count = part_hi - part_lo + 1
        first = part_lo + 1 - kv_start
        last = part_hi + 1 - kv_start
        total += count * (first + last) / 2.0
    return total


@dataclass(frozen=True)
class RingGroup:
    """A ring specification plus the chunk assignment of each member rank."""

    spec: RingSpec
    assignments: tuple[ChunkAssignment, ...]

    @property
    def group_size(self) -> int:
        return self.spec.group_size

    def tokens_of(self, ring_index: int) -> int:
        return self.assignments[ring_index].tokens

    def query_chunks(self, ring_index: int) -> tuple[tuple[int, int], tuple[int, int]]:
        a = self.assignments[ring_index]
        return (a.head_chunk, a.tail_chunk)

    def round_pairs(self, ring_index: int, round_index: int) -> float:
        """Causal pairs rank ``ring_index`` evaluates in round ``round_index``.

        In round ``k`` the rank holds the KV chunks originally owned by ring
        index ``(ring_index - k) mod G``.
        """
        g = self.group_size
        owner = (ring_index - round_index) % g
        pairs = 0.0
        for q_chunk in self.query_chunks(ring_index):
            for kv_chunk in self.query_chunks(owner):
                pairs += causal_pairs_between(q_chunk, kv_chunk)
        return pairs


@dataclass
class SequenceQueues:
    """The three per-zone work queues built from a partition result."""

    inter: list[RingGroup] = field(default_factory=list)
    intra: list[RingGroup] = field(default_factory=list)
    local: dict[int, list[Placement]] = field(default_factory=dict)

    def all_rings(self) -> list[RingGroup]:
        return list(self.inter) + list(self.intra)

    def local_tokens(self, rank: int) -> int:
        return sum(p.tokens for p in self.local.get(rank, []))


@dataclass
class AttentionEngine:
    """Builds queues and emits the attention task graph for one layer.

    Parameters
    ----------
    cluster, compute, comm:
        Hardware model and cost models.
    routing:
        The routing layer used for inter-node hops; pass one with
        ``enabled=False`` to reproduce the no-routing ablation.
    balanced_chunking:
        Use the zigzag causal-balanced assignment (default).  ``False`` falls
        back to a contiguous even split, used to quantify the benefit of
        balance in the ablation tests.
    """

    cluster: Cluster
    compute: ComputeCostModel
    comm: CommCostModel
    routing: RoutingLayer
    balanced_chunking: bool = True

    # -- queue construction -------------------------------------------------------

    def build_queues(self, partition: PartitionResult) -> SequenceQueues:
        """Construct inter/intra/local queues from a partition result."""
        queues = SequenceQueues()
        for ring in partition.rings:
            if self.balanced_chunking:
                assignments = tuple(zigzag_assignment(ring.seq_len, ring.group_size))
            else:
                assignments = tuple(
                    contiguous_assignment(ring.seq_len, ring.group_size)
                )
            group = RingGroup(spec=ring, assignments=assignments)
            if ring.zone == Zone.INTER_NODE:
                queues.inter.append(group)
            else:
                queues.intra.append(group)
        for rank, placements in partition.placements.items():
            locals_ = [p for p in placements if p.zone == Zone.LOCAL]
            if locals_:
                queues.local[rank] = locals_
        return queues

    # -- emission -----------------------------------------------------------------

    def emit_attention(
        self,
        plan: ExecutionPlan,
        partition: PartitionResult,
        spec: TransformerSpec,
        phase: str = "forward",
    ) -> dict[int, list[int]]:
        """Emit the attention tasks of one layer into ``plan``.

        Returns a mapping from global rank to the ids of the attention tasks
        attributed to that rank, so downstream stages (remapping, linear
        modules) can depend on them.
        """
        check_in("phase", phase, ("forward", "backward"))
        queues = self.build_queues(partition)
        return self.emit_queues(plan, queues, spec, phase)

    def emit_queues(
        self,
        plan: ExecutionPlan,
        queues: SequenceQueues,
        spec: TransformerSpec,
        phase: str = "forward",
    ) -> dict[int, list[int]]:
        """Emit tasks for pre-built queues (used by baselines sharing the engine)."""
        check_in("phase", phase, ("forward", "backward"))
        compute_factor = 1.0 if phase == "forward" else _BACKWARD_COMPUTE_FACTOR
        comm_factor = 1.0 if phase == "forward" else _BACKWARD_COMM_FACTOR

        rank_tasks: dict[int, list[int]] = {r: [] for r in self.cluster.iter_ranks()}

        for group in queues.inter:
            self._emit_ring(plan, group, spec, compute_factor, comm_factor, rank_tasks)
        for group in queues.intra:
            self._emit_ring(plan, group, spec, compute_factor, comm_factor, rank_tasks)
        for rank, placements in queues.local.items():
            self._emit_local(
                plan, rank, placements, spec, compute_factor, rank_tasks
            )
        return rank_tasks

    # -- ring emission ----------------------------------------------------------------

    def _emit_ring(
        self,
        plan: ExecutionPlan,
        group: RingGroup,
        spec: TransformerSpec,
        compute_factor: float,
        comm_factor: float,
        rank_tasks: dict[int, list[int]],
        initial_deps: tuple[int, ...] = (),
    ) -> None:
        ring = group.spec
        g = ring.group_size
        priority = _PRIORITY[ring.zone]
        kv_per_token = self.comm.kv_chunk_bytes(spec, 1)

        # recv_ready[i] holds the task id after which rank i holds the payload
        # for the *next* round (i.e. the hop into rank i has completed).
        recv_ready: list[int | None] = [None] * g

        for round_index in range(g):
            compute_ids: list[int | None] = [None] * g
            for i, rank in enumerate(ring.ranks):
                pairs = group.round_pairs(i, round_index)
                deps = list(initial_deps) if recv_ready[i] is None else []
                if recv_ready[i] is not None:
                    deps.append(recv_ready[i])
                if pairs > 0:
                    duration = (
                        self.compute.attention_pairs_time(spec, pairs, num_layers=1)
                        * compute_factor
                    )
                    compute_ids[i] = plan.add(
                        name=f"attn:{ring.zone.value}:seq{ring.seq_id}:r{round_index}:rank{rank}",
                        kind=TaskKind.ATTENTION,
                        duration_s=duration,
                        resources=(ExecutionPlan.compute_resource(rank),),
                        deps=deps,
                        rank=rank,
                        priority=priority,
                    )
                    rank_tasks[rank].append(compute_ids[i])

            if round_index == g - 1:
                break

            # Send the payload each rank currently holds to its successor.
            new_recv_ready: list[int | None] = [None] * g
            for i, rank in enumerate(ring.ranks):
                owner = (i - round_index) % g
                payload_tokens = group.tokens_of(owner)
                nbytes = payload_tokens * kv_per_token * comm_factor
                dst_rank = ring.ranks[(i + 1) % g]
                deps = list(initial_deps) if recv_ready[i] is None else []
                if recv_ready[i] is not None:
                    deps.append(recv_ready[i])
                hop_end = self._emit_hop(
                    plan,
                    src_rank=rank,
                    dst_rank=dst_rank,
                    nbytes=nbytes,
                    ring_ranks=ring.ranks,
                    deps=deps,
                    priority=priority,
                    label=f"{ring.zone.value}:seq{ring.seq_id}:r{round_index}",
                )
                new_recv_ready[(i + 1) % g] = hop_end
            recv_ready = new_recv_ready

    def _emit_hop(
        self,
        plan: ExecutionPlan,
        src_rank: int,
        dst_rank: int,
        nbytes: float,
        ring_ranks: tuple[int, ...],
        deps: list[int],
        priority: int,
        label: str,
    ) -> int:
        """Emit the communication tasks of one ring hop; return the final task id."""
        if nbytes <= 0:
            return plan.add(
                name=f"hop:{label}:{src_rank}->{dst_rank}:empty",
                kind=TaskKind.INTRA_COMM,
                duration_s=0.0,
                resources=(),
                deps=deps,
                rank=src_rank,
                priority=priority,
            )
        if self.cluster.same_node(src_rank, dst_rank):
            duration = self.comm.intra_node_time(nbytes)
            return plan.add(
                name=f"hop:{label}:{src_rank}->{dst_rank}:intra",
                kind=TaskKind.INTRA_COMM,
                duration_s=duration,
                resources=(
                    ExecutionPlan.nvlink_resource(src_rank, "tx"),
                    ExecutionPlan.nvlink_resource(dst_rank, "rx"),
                ),
                deps=deps,
                rank=src_rank,
                priority=priority,
            )

        decision = self.routing.route(src_rank, dst_rank, nbytes, ring_ranks=ring_ranks)
        transfer_deps: dict[tuple[int, int], int] = {}
        final_ids: list[int] = []

        for t in decision.transfers_for_step("dispatch"):
            tid = plan.add(
                name=f"dispatch:{label}:{t.src_rank}->{t.dst_rank}",
                kind=TaskKind.DISPATCH,
                duration_s=self.comm.intra_node_time(t.nbytes),
                resources=(
                    ExecutionPlan.nvlink_resource(t.src_rank, "tx"),
                    ExecutionPlan.nvlink_resource(t.dst_rank, "rx"),
                ),
                deps=deps,
                rank=t.src_rank,
                priority=priority,
            )
            transfer_deps[(t.dst_rank, t.src_rank)] = tid

        # Map: recv proxy rank -> id of the inter-node transfer task landing there.
        transfer_by_recv_proxy: dict[int, int] = {}
        for t in decision.transfers_for_step("transfer"):
            src_nic = self.cluster.nic_of(t.src_rank)
            dst_nic = self.cluster.nic_of(t.dst_rank)
            t_deps = list(deps)
            key = (t.src_rank, src_rank)
            if key in transfer_deps:
                t_deps.append(transfer_deps[key])
            tid = plan.add(
                name=f"transfer:{label}:{t.src_rank}->{t.dst_rank}",
                kind=TaskKind.INTER_COMM,
                duration_s=self.comm.inter_node_time(t.nbytes, nics=1),
                resources=(
                    ExecutionPlan.nic_resource(src_nic.nic_id, "tx"),
                    ExecutionPlan.nic_resource(dst_nic.nic_id, "rx"),
                ),
                deps=t_deps,
                rank=t.src_rank,
                priority=priority,
            )
            transfer_by_recv_proxy[t.dst_rank] = tid
            final_ids.append(tid)

        combine_ids: list[int] = []
        consumed_transfers: set[int] = set()
        for t in decision.transfers_for_step("combine"):
            c_deps = list(deps)
            if t.src_rank in transfer_by_recv_proxy:
                dep_tid = transfer_by_recv_proxy[t.src_rank]
                c_deps.append(dep_tid)
                consumed_transfers.add(dep_tid)
            tid = plan.add(
                name=f"combine:{label}:{t.src_rank}->{t.dst_rank}",
                kind=TaskKind.COMBINE,
                duration_s=self.comm.intra_node_time(t.nbytes),
                resources=(
                    ExecutionPlan.nvlink_resource(t.src_rank, "tx"),
                    ExecutionPlan.nvlink_resource(t.dst_rank, "rx"),
                ),
                deps=c_deps,
                rank=t.src_rank,
                priority=priority,
            )
            combine_ids.append(tid)

        # Barrier marking the hop complete at the destination: all combines plus
        # any transfer that landed directly on the destination rank.
        end_deps = combine_ids + [
            tid for tid in final_ids if tid not in consumed_transfers
        ]
        return plan.add(
            name=f"hop:{label}:{src_rank}->{dst_rank}:done",
            kind=TaskKind.INTER_COMM,
            duration_s=0.0,
            resources=(),
            deps=end_deps if end_deps else deps,
            rank=dst_rank,
            priority=priority,
        )

    # -- local queue --------------------------------------------------------------------

    def _emit_local(
        self,
        plan: ExecutionPlan,
        rank: int,
        placements: list[Placement],
        spec: TransformerSpec,
        compute_factor: float,
        rank_tasks: dict[int, list[int]],
    ) -> None:
        duration = 0.0
        for p in placements:
            duration += self.compute.attention_time(spec, p.tokens, num_layers=1)
        duration *= compute_factor
        if duration <= 0:
            return
        tid = plan.add(
            name=f"attn:local:rank{rank}:{len(placements)}seqs",
            kind=TaskKind.ATTENTION,
            duration_s=duration,
            resources=(ExecutionPlan.compute_resource(rank),),
            deps=(),
            rank=rank,
            priority=_PRIORITY[Zone.LOCAL],
        )
        rank_tasks[rank].append(tid)
