"""The serve driver: a virtual-time loop over arrivals, queue and batcher.

:class:`ServeSimulation` wires the pieces together around one frozen
:class:`~repro.serve.spec.ServeSpec`: it draws requests from the arrival
process (open-loop schedules precomputed, closed-loop clients issuing as
their completions land), walks a virtual clock over arrival / completion /
coalesce-deadline events, admits or sheds each arrival through the
:class:`~repro.serve.queue.AdmissionContext`, dispatches batches while the
concurrency limit allows, lets an optional
:class:`~repro.serve.scale.ScalePolicy` resize the virtual cluster between
dispatches, and aggregates everything into a frozen
:class:`~repro.results.ServeResult`.  Everything runs in virtual time and is
fully deterministic: two runs with the same session and spec produce
byte-identical results.

:func:`run_serve` is the functional entry point behind
:meth:`repro.api.Session.serve` and the ``repro serve`` CLI subcommand.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Any

from repro.api import DEFAULT_COMPARISON, Session
from repro.dynamics.recovery import scale_session
from repro.obs.core import Telemetry, as_telemetry
from repro.obs.sketch import LatencySketch, WindowedRate
from repro.results import ServeResult
from repro.serve.arrivals import ClosedLoopClient, Request
from repro.serve.batcher import Batcher, ExecutionBatch
from repro.serve.metrics import QueueDepthTracker, request_counters
from repro.serve.queue import AdmissionContext, RequestQueue
from repro.serve.scale import ScaleContext
from repro.serve.spec import ServeSpec

_INF = float("inf")


class ServeSimulation:
    """One serving run over a :class:`~repro.api.Session`.

    Built from a :class:`ServeSpec` (the primary form) or from the legacy
    keyword knobs, which are packaged into a spec internally.  After
    :meth:`run`, :attr:`requests` holds every request with its
    arrival/start/finish stamps and :attr:`executions` the dispatched
    batches — the raw material tests and tools can audit (no request starts
    before it arrives, concurrent executions never exceed the limit...).
    """

    def __init__(
        self,
        session: Session,
        mix: Any = None,
        *,
        spec: ServeSpec | None = None,
        telemetry: "Telemetry | str | Path | None" = None,
        **knobs: Any,
    ):
        if spec is not None:
            if mix is not None or knobs:
                raise ValueError(
                    "pass either a ServeSpec or individual knobs, not both"
                )
        else:
            spec = ServeSpec(mix=mix, **knobs)
        self.spec = spec
        self.session = session
        # Telemetry is observational, never part of the spec identity.
        self.telemetry = as_telemetry(telemetry)
        self.mix = spec.resolved_mix(DEFAULT_COMPARISON)
        self.arrival = spec.build_arrival()
        self.duration_s = float(spec.duration_s)
        self.slo_s = spec.slo_s
        self.coalesce_s = spec.coalesce_s
        self.queue = RequestQueue(spec.build_admission(), concurrency=spec.concurrency)
        self.batcher = Batcher(
            session,
            max_batch=spec.max_batch,
            cache=spec.cache,
            cache_hit_cost_s=spec.cache_hit_cost_s,
            telemetry=self.telemetry,
        )
        # Validate every cell up front (unknown strategies, bad overrides)
        # so configuration errors surface before any simulation runs.
        for cell in self.mix.cells:
            self.batcher.point_for(cell)
        self.scale_policy = spec.build_scale_policy()
        self._gpus_per_node = session.cluster.gpus_per_node
        self._nodes = session.config.num_nodes
        self._ladder = self._capacity_ladder()
        self._rung = self._ladder.index(self._nodes)
        self._last_scale_s = -_INF
        self.capacity_timeline: list[tuple[float, int]] = (
            [(0.0, self._nodes * self._gpus_per_node)]
            if self.scale_policy is not None
            else []
        )
        self.scale_up_count = 0
        self.scale_down_count = 0
        self.shed_count = 0
        self.requests: list[Request] = list(
            self.arrival.schedule(self.mix, self.duration_s, seed=session.config.seed)
        )
        self._clients: dict[int, ClosedLoopClient] = {}
        if getattr(self.arrival, "closed_loop", False):
            self._clients = {
                client.cid: client
                for client in self.arrival.clients(self.mix, seed=session.config.seed)
            }
        self.executions: list[ExecutionBatch] = []
        self._result: ServeResult | None = None

    # -- capacity ----------------------------------------------------------------

    def _capacity_ladder(self) -> list[int]:
        """The node counts autoscaling may visit: doublings of the minimum.

        Capacity moves on a doubling ladder (min, 2*min, 4*min, ... capped at
        ``max_gpus``) rather than node-by-node: token budgets divide the
        context evenly on power-of-two multiples of a feasible base, and the
        ladder mirrors how real clusters scale in instance-sized steps.
        """
        spec = self.spec
        gpn = self._gpus_per_node
        base_gpus = self.session.config.num_gpus
        if self.scale_policy is None:
            return [self._nodes]
        min_gpus = spec.min_gpus if spec.min_gpus is not None else base_gpus
        max_gpus = spec.max_gpus if spec.max_gpus is not None else base_gpus
        for label, gpus in (("min_gpus", min_gpus), ("max_gpus", max_gpus)):
            if gpus % gpn != 0:
                raise ValueError(
                    f"{label} {gpus} must be a multiple of the cluster's "
                    f"{gpn} GPUs per node"
                )
        if not min_gpus <= base_gpus <= max_gpus:
            raise ValueError(
                f"the session's {base_gpus} GPUs must lie within the autoscale "
                f"bounds [{min_gpus}, {max_gpus}]"
            )
        ladder = [min_gpus // gpn]
        while ladder[-1] * 2 * gpn <= max_gpus:
            ladder.append(ladder[-1] * 2)
        if self._nodes not in ladder:
            rungs = [n * gpn for n in ladder]
            raise ValueError(
                f"the session's {base_gpus} GPUs must sit on the autoscale "
                f"capacity ladder {rungs} (doublings of min_gpus={min_gpus})"
            )
        return ladder

    def _maybe_scale(
        self,
        now: float,
        in_flight: int,
        sketch: LatencySketch,
        completion_rate: WindowedRate,
    ) -> None:
        """Consult the scale policy and apply at most one ladder step."""
        policy = self.scale_policy
        if policy is None or len(self._ladder) == 1:
            return
        since = now - self._last_scale_s
        if since < policy.cooldown_s:
            return
        ctx = ScaleContext(
            now_s=now,
            nodes=self._nodes,
            min_nodes=self._ladder[0],
            max_nodes=self._ladder[-1],
            gpus_per_node=self._gpus_per_node,
            queue_depth=self.queue.depth,
            in_flight=in_flight,
            concurrency=self.queue.concurrency,
            slo_s=self.slo_s,
            latency=sketch,
            completion_rate=completion_rate,
            time_since_scale_s=since,
        )
        target = int(policy.decide(ctx))
        if target == self._nodes:
            return
        # One ladder rung per decision: capacity moves in auditable doubling
        # steps, and the cooldown paces how fast a policy can ramp.
        grew = target > self._nodes
        rung = self._rung + (1 if grew else -1)
        if rung < 0 or rung >= len(self._ladder):
            return
        nodes = self._ladder[rung]
        scaled = scale_session(self.session, nodes)
        self.batcher.rescale(scaled.config)
        self._rung = rung
        self._nodes = nodes
        self._last_scale_s = now
        gpus = nodes * self._gpus_per_node
        self.capacity_timeline.append((round(now, 6), gpus))
        if grew:
            self.scale_up_count += 1
        else:
            self.scale_down_count += 1
        if self.telemetry.enabled:
            self.telemetry.event(
                "scale_up" if grew else "scale_down", vt=round(now, 6), gpus=gpus
            )

    # -- admission and closed-loop issuance ---------------------------------------

    def _admission_context(
        self,
        now: float,
        in_flight: int,
        sketch: LatencySketch,
        completion_rate: WindowedRate,
    ) -> AdmissionContext:
        return AdmissionContext(
            now_s=now,
            queue_depth=self.queue.depth,
            queued_work_s=self.queue.queued_work_s(self.batcher.cost_estimate),
            in_flight=in_flight,
            concurrency=self.queue.concurrency,
            slo_s=self.slo_s,
            latency=sketch,
            completion_rate=completion_rate,
            cost_estimate=self.batcher.cost_estimate,
        )

    def _reissue(self, request: Request, now: float, pending: list) -> None:
        """Issue the closed-loop client's next request after this one ends."""
        client = self._clients.get(request.client) if request.client is not None else None
        if client is None:
            return
        nxt = client.issue(now, len(self.requests))
        if nxt.arrival_s >= self.duration_s:
            return
        self.requests.append(nxt)
        heapq.heappush(pending, (nxt.arrival_s, nxt.rid, nxt))

    # -- the event loop ----------------------------------------------------------

    def _hold_until(self, head: Request) -> float:
        """Latest virtual time dispatch of ``head`` may be delayed to coalesce.

        The coalescing window is capped by the head's deadline slack: with an
        SLO and a known cell cost, holding longer than ``slo_s - cost`` would
        turn a meetable request into a miss, so the deadline wins over the
        window.
        """
        window = self.coalesce_s
        if self.slo_s is not None:
            cost = self.batcher.cost_estimate(head.cell)
            if cost is not None:
                window = min(window, max(0.0, self.slo_s - cost))
        return head.arrival_s + window

    def run(self) -> ServeResult:
        """Simulate the run to completion (idempotent) and return the result.

        Arrivals stop at the duration horizon; the queue then drains, so
        every admitted request completes and has a defined latency.
        """
        if self._result is not None:
            return self._result
        tele = self.telemetry
        tracker = QueueDepthTracker()
        # Latency accounting is streaming: a bounded sketch and a windowed
        # completion rate, fed as batches finish — state stays O(1) no
        # matter how many requests the run serves.
        sketch = LatencySketch()
        completion_rate = WindowedRate()
        good = 0
        in_flight: list[tuple[float, int, ExecutionBatch]] = []
        pending: list[tuple[float, int, Request]] = []
        for request in self.requests:
            heapq.heappush(pending, (request.arrival_s, request.rid, request))
        for client in self._clients.values():
            first = client.issue(0.0, len(self.requests))
            if first.arrival_s >= self.duration_s:
                continue
            self.requests.append(first)
            heapq.heappush(pending, (first.arrival_s, first.rid, first))
        seq = 0
        now = 0.0
        while True:
            self._maybe_scale(now, len(in_flight), sketch, completion_rate)
            # Dispatch while a slot is free and requests are queued — unless
            # the head is worth holding to coalesce a larger batch.
            hold_timer = _INF
            while self.queue.can_dispatch(len(in_flight)):
                head = self.queue.peek()
                if self.coalesce_s > 0:
                    hold_until = self._hold_until(head)
                    if (
                        now < hold_until
                        and self.queue.count_matching(head.cell) < self.batcher.max_batch
                    ):
                        hold_timer = hold_until
                        break
                head = self.queue.pop()
                batch = self.batcher.execute(self.batcher.collect(self.queue, head), now)
                heapq.heappush(in_flight, (batch.finish_s, seq, batch))
                seq += 1
                self.executions.append(batch)
                tracker.sample(now, self.queue.depth)
                if tele.enabled:
                    for request in batch.requests:
                        tele.event(
                            "request_dispatch",
                            request=request.rid,
                            vt=round(now, 6),
                            batch_size=batch.size,
                            served_by=request.served_by,
                        )
            next_arrival = pending[0][0] if pending else _INF
            next_finish = in_flight[0][0] if in_flight else _INF
            if next_arrival == _INF and next_finish == _INF and hold_timer == _INF:
                break
            if next_arrival <= next_finish and next_arrival <= hold_timer:
                now = next_arrival
                _, _, request = heapq.heappop(pending)
                ctx = self._admission_context(now, len(in_flight), sketch, completion_rate)
                if self.queue.offer(request, ctx):
                    if tele.enabled:
                        tele.event(
                            "request_enqueue", request=request.rid, vt=round(now, 6)
                        )
                else:
                    request.served_by = "shed"
                    self.shed_count += 1
                    if tele.enabled:
                        tele.event("request_shed", request=request.rid, vt=round(now, 6))
                    # A closed-loop user whose request was shed comes back
                    # after a think time, like any other completion.
                    self._reissue(request, now, pending)
            elif next_finish <= hold_timer:
                now = next_finish
                _, _, batch = heapq.heappop(in_flight)
                for request in batch.requests:
                    latency = request.latency_s
                    sketch.add(latency)
                    completion_rate.add(now)
                    if self.slo_s is None or latency <= self.slo_s:
                        good += 1
                    if tele.enabled:
                        tele.event(
                            "request_complete",
                            request=request.rid,
                            vt=round(now, 6),
                            latency_s=round(latency, 6),
                        )
                    self._reissue(request, now, pending)
            else:
                # Coalesce deadline: advance to it and re-enter dispatch.
                now = hold_timer
            tracker.sample(now, self.queue.depth)
        if tele.enabled:
            tele.counter("serve_requests_completed", sketch.count)
            tele.gauge("serve_completion_rps", round(completion_rate.rate(now), 6))
            if self.shed_count:
                tele.counter("serve_requests_shed", self.shed_count)
        self._result = self._build_result(now, tracker, sketch, good)
        return self._result

    # -- aggregation -------------------------------------------------------------

    def _build_result(
        self,
        end_s: float,
        tracker: QueueDepthTracker,
        sketch: LatencySketch,
        good: int,
    ) -> ServeResult:
        makespan_s = max(self.duration_s, end_s)
        counters = request_counters(self.requests)
        summary = sketch.summary()
        spec = self.spec
        return ServeResult(
            arrival=self.arrival.name,
            admission=self.queue.admission.name,
            concurrency=self.queue.concurrency,
            max_batch=self.batcher.max_batch,
            seed=self.session.config.seed,
            duration_s=round(self.duration_s, 6),
            makespan_s=round(makespan_s, 6),
            num_requests=len(self.requests),
            completed=counters["completed"],
            simulations=self.batcher.simulations_executed,
            batched_requests=counters["batched_requests"],
            cache_hits=counters["cache_hits"],
            cache_hit_rate=round(counters["cache_hit_rate"], 6),
            offered_rps=round(len(self.requests) / self.duration_s, 6),
            throughput_rps=round(counters["completed"] / makespan_s, 6),
            goodput_rps=round(good / makespan_s, 6),
            slo_s=self.slo_s,
            mean_latency_s=round(summary["mean_latency_s"], 6),
            p50_latency_s=round(summary["p50_latency_s"], 6),
            p95_latency_s=round(summary["p95_latency_s"], 6),
            p99_latency_s=round(summary["p99_latency_s"], 6),
            max_latency_s=round(summary["max_latency_s"], 6),
            mean_queue_depth=round(tracker.mean_depth(makespan_s), 6),
            max_queue_depth=tracker.max_depth,
            queue_depth_timeline=tracker.timeline(),
            shed_count=counters["shed"],
            scale_policy=(
                self.scale_policy.name if self.scale_policy is not None else None
            ),
            capacity_timeline=tuple(self.capacity_timeline),
            scale_up_count=self.scale_up_count,
            scale_down_count=self.scale_down_count,
            config=self.session.config.to_dict(),
            mix=tuple(self.mix.to_dicts()),
        )


def run_serve(
    session: Session,
    mix: Any = None,
    *,
    spec: ServeSpec | None = None,
    **knobs: Any,
) -> ServeResult:
    """Run one serving workload and return its metrics.

    ``spec`` (a :class:`ServeSpec`) is the primary form; the keyword knobs
    (``rate``, ``duration_s``, ``arrival``, ``admission``, ``concurrency``,
    ``max_batch``, ``cache``, ``slo_s``, ``coalesce_s``,
    ``clients``/``think_time_s`` for ``arrival="closed"``,
    ``scale_policy``/``min_gpus``/``max_gpus`` for autoscaling, and
    ``trace_times``/``trace_period`` for ``arrival="trace"``) are a shim
    that builds the same spec.  ``telemetry`` — a hub or JSONL path
    receiving request enqueue/dispatch/complete/shed and scale events — is
    purely observational: results are byte-identical with telemetry on or
    off.
    """
    return ServeSimulation(session, mix, spec=spec, **knobs).run()
