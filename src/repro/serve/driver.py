"""The serve driver: a virtual-time loop over arrivals, queue and batcher.

:class:`ServeSimulation` wires the pieces together: it draws the request
schedule from the arrival process (seeded by the session seed), walks a
virtual clock over arrival and completion events, dispatches batches while
the concurrency limit allows, and aggregates everything into a frozen
:class:`~repro.results.ServeResult`.  The loop is open-loop — arrivals do
not wait for completions — and fully deterministic: two runs with the same
session, mix and knobs produce byte-identical results.

:func:`run_serve` is the functional entry point behind
:meth:`repro.api.Session.serve` and the ``repro serve`` CLI subcommand.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Any

from repro.api import DEFAULT_COMPARISON, Session
from repro.obs.core import Telemetry, as_telemetry
from repro.obs.sketch import LatencySketch, WindowedRate
from repro.results import ServeResult
from repro.serve.arrivals import ArrivalProcess, as_arrival, as_mix
from repro.serve.batcher import DEFAULT_CACHE_HIT_COST_S, Batcher, ExecutionBatch
from repro.serve.metrics import QueueDepthTracker, request_counters
from repro.serve.queue import AdmissionPolicy, RequestQueue


class ServeSimulation:
    """One open-loop serving run over a :class:`~repro.api.Session`.

    After :meth:`run`, :attr:`requests` holds every request with its
    arrival/start/finish stamps and :attr:`executions` the dispatched
    batches — the raw material tests and tools can audit (no request starts
    before it arrives, concurrent executions never exceed the limit...).
    """

    def __init__(
        self,
        session: Session,
        mix: Any = None,
        *,
        rate: float = 10.0,
        duration_s: float = 60.0,
        arrival: "str | ArrivalProcess | None" = None,
        admission: "str | AdmissionPolicy | None" = "fifo",
        concurrency: int = 4,
        max_batch: int = 8,
        cache: bool = True,
        slo_s: float | None = None,
        cache_hit_cost_s: float = DEFAULT_CACHE_HIT_COST_S,
        trace_times: Any = (),
        trace_period: float | None = None,
        telemetry: "Telemetry | str | Path | None" = None,
    ):
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if slo_s is not None and slo_s <= 0:
            raise ValueError(f"slo_s must be positive, got {slo_s}")
        self.session = session
        self.telemetry = as_telemetry(telemetry)
        self.mix = as_mix(mix if mix is not None else DEFAULT_COMPARISON)
        self.arrival = as_arrival(
            arrival, rate=rate, trace_times=trace_times, trace_period=trace_period
        )
        self.duration_s = float(duration_s)
        self.slo_s = slo_s
        self.queue = RequestQueue(admission, concurrency=concurrency)
        self.batcher = Batcher(
            session,
            max_batch=max_batch,
            cache=cache,
            cache_hit_cost_s=cache_hit_cost_s,
            telemetry=self.telemetry,
        )
        # Validate every cell up front (unknown strategies, bad overrides)
        # so configuration errors surface before any simulation runs.
        for cell in self.mix.cells:
            self.batcher.point_for(cell)
        self.requests = self.arrival.schedule(
            self.mix, self.duration_s, seed=session.config.seed
        )
        self.executions: list[ExecutionBatch] = []
        self._result: ServeResult | None = None

    # -- the event loop ----------------------------------------------------------

    def run(self) -> ServeResult:
        """Simulate the run to completion (idempotent) and return the result.

        Arrivals stop at the duration horizon; the queue then drains, so
        every request completes and has a defined latency.
        """
        if self._result is not None:
            return self._result
        tele = self.telemetry
        tracker = QueueDepthTracker()
        # Latency accounting is streaming: a bounded sketch and a windowed
        # completion rate, fed as batches finish — state stays O(1) no
        # matter how many requests the run serves.
        sketch = LatencySketch()
        completion_rate = WindowedRate()
        good = 0
        in_flight: list[tuple[float, int, ExecutionBatch]] = []
        seq = 0
        i = 0
        now = 0.0
        while True:
            # Dispatch while a slot is free and requests are queued.
            while self.queue.can_dispatch(len(in_flight)):
                head = self.queue.pop()
                batch = self.batcher.execute(self.batcher.collect(self.queue, head), now)
                heapq.heappush(in_flight, (batch.finish_s, seq, batch))
                seq += 1
                self.executions.append(batch)
                tracker.sample(now, self.queue.depth)
                if tele.enabled:
                    for request in batch.requests:
                        tele.event(
                            "request_dispatch",
                            request=request.rid,
                            vt=round(now, 6),
                            batch_size=batch.size,
                            served_by=request.served_by,
                        )
            next_arrival = (
                self.requests[i].arrival_s if i < len(self.requests) else float("inf")
            )
            next_finish = in_flight[0][0] if in_flight else float("inf")
            if next_arrival == float("inf") and next_finish == float("inf"):
                break
            if next_arrival <= next_finish:
                now = next_arrival
                self.queue.push(self.requests[i])
                if tele.enabled:
                    tele.event(
                        "request_enqueue",
                        request=self.requests[i].rid,
                        vt=round(now, 6),
                    )
                i += 1
            else:
                now = next_finish
                _, _, batch = heapq.heappop(in_flight)
                for request in batch.requests:
                    latency = request.latency_s
                    sketch.add(latency)
                    completion_rate.add(now)
                    if self.slo_s is None or latency <= self.slo_s:
                        good += 1
                    if tele.enabled:
                        tele.event(
                            "request_complete",
                            request=request.rid,
                            vt=round(now, 6),
                            latency_s=round(latency, 6),
                        )
            tracker.sample(now, self.queue.depth)
        if tele.enabled:
            tele.counter("serve_requests_completed", sketch.count)
            tele.gauge("serve_completion_rps", round(completion_rate.rate(now), 6))
        self._result = self._build_result(now, tracker, sketch, good)
        return self._result

    # -- aggregation -------------------------------------------------------------

    def _build_result(
        self,
        end_s: float,
        tracker: QueueDepthTracker,
        sketch: LatencySketch,
        good: int,
    ) -> ServeResult:
        makespan_s = max(self.duration_s, end_s)
        counters = request_counters(self.requests)
        summary = sketch.summary()
        return ServeResult(
            arrival=self.arrival.name,
            admission=self.queue.admission.name,
            concurrency=self.queue.concurrency,
            max_batch=self.batcher.max_batch,
            seed=self.session.config.seed,
            duration_s=round(self.duration_s, 6),
            makespan_s=round(makespan_s, 6),
            num_requests=len(self.requests),
            completed=counters["completed"],
            simulations=self.batcher.simulations_executed,
            batched_requests=counters["batched_requests"],
            cache_hits=counters["cache_hits"],
            cache_hit_rate=round(counters["cache_hit_rate"], 6),
            offered_rps=round(len(self.requests) / self.duration_s, 6),
            throughput_rps=round(counters["completed"] / makespan_s, 6),
            goodput_rps=round(good / makespan_s, 6),
            slo_s=self.slo_s,
            mean_latency_s=round(summary["mean_latency_s"], 6),
            p50_latency_s=round(summary["p50_latency_s"], 6),
            p95_latency_s=round(summary["p95_latency_s"], 6),
            p99_latency_s=round(summary["p99_latency_s"], 6),
            max_latency_s=round(summary["max_latency_s"], 6),
            mean_queue_depth=round(tracker.mean_depth(makespan_s), 6),
            max_queue_depth=tracker.max_depth,
            queue_depth_timeline=tracker.timeline(),
            config=self.session.config.to_dict(),
            mix=tuple(self.mix.to_dicts()),
        )


def run_serve(session: Session, mix: Any = None, **knobs: Any) -> ServeResult:
    """Run one open-loop serving workload and return its metrics.

    See :class:`ServeSimulation` for the knobs (``rate``, ``duration_s``,
    ``arrival``, ``admission``, ``concurrency``, ``max_batch``, ``cache``,
    ``slo_s``, ``trace_times``/``trace_period`` for ``arrival="trace"``,
    and ``telemetry`` — a hub or JSONL path receiving request
    enqueue/dispatch/complete events; purely observational, results are
    byte-identical with telemetry on or off).
    """
    return ServeSimulation(session, mix, **knobs).run()
