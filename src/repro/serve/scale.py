"""Telemetry-driven autoscaling of the serving cluster.

A :class:`ScalePolicy` watches the serve driver's *streaming* signals —
queue depth, the windowed completion rate and the live latency sketch (the
same objects :mod:`repro.obs` exports as gauges) — and decides, between
dispatches, how many nodes the virtual cluster should have.  The scale
primitive is :func:`repro.dynamics.recovery.scale_session`: growing or
shrinking replans every strategy onto the resized cluster through derived
sessions, exactly like an ``elastic`` recovery shrink, so repeated visits to
a capacity level reuse cached plans.

Policies register with ``@register_scale`` (and are listed by ``repro
list``); the built-in ``queue_depth`` policy adds a node while the queue
stays above its high watermark and removes one when the system is draining
below its low watermark, with a cooldown between steps.  Everything runs in
virtual time, so scaling decisions are deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.registry import get_scale, register_scale
from repro.utils.validation import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sketch import LatencySketch, WindowedRate


@dataclass
class ScaleContext:
    """One autoscaling decision point: load signals plus capacity bounds.

    ``latency`` and ``completion_rate`` are the driver's live streaming
    sketches; ``queue_depth``/``in_flight`` are instantaneous.  ``nodes`` is
    the current capacity; decisions are clamped to
    ``[min_nodes, max_nodes]`` by the driver, so a policy may return any
    target.
    """

    now_s: float
    nodes: int
    min_nodes: int
    max_nodes: int
    gpus_per_node: int
    queue_depth: int
    in_flight: int
    concurrency: int
    slo_s: float | None = None
    latency: "LatencySketch | None" = None
    completion_rate: "WindowedRate | None" = None
    time_since_scale_s: float = field(default=float("inf"))

    @property
    def gpus(self) -> int:
        return self.nodes * self.gpus_per_node


class ScalePolicy:
    """Base class: a target node count per decision point.

    :meth:`decide` returns the node count the cluster *should* have; the
    driver moves at most one rung of its capacity ladder (doublings of the
    minimum, capped at the maximum) toward that target per decision, and
    enforces :attr:`cooldown_s` of virtual time between capacity changes
    (decisions inside the cooldown are ignored).  Policies are consulted
    between dispatches only — in-flight executions always finish at the
    capacity they started on.
    """

    name = "abstract"
    cooldown_s: float = 5.0

    def decide(self, ctx: ScaleContext) -> int:
        """The desired node count given the current signals."""
        raise NotImplementedError


@register_scale(
    "queue_depth",
    description="grow on a deep queue, shrink when idle (watermarks + cooldown)",
)
class QueueDepthScaler(ScalePolicy):
    """Hysteresis scaler on instantaneous queue depth.

    Grows by one node while ``queue_depth >= high_watermark`` and shrinks by
    one while the system is nearly idle (``queue_depth <= low_watermark``
    and no more work in flight than the concurrency limit would refill
    immediately).  The gap between the watermarks plus the cooldown gives
    hysteresis, so capacity tracks sustained pressure instead of chattering
    on every burst.
    """

    name = "queue_depth"

    def __init__(
        self,
        high_watermark: int = 8,
        low_watermark: int = 0,
        cooldown_s: float = 5.0,
    ):
        check_positive("high_watermark", high_watermark)
        check_non_negative("low_watermark", low_watermark)
        check_non_negative("cooldown_s", cooldown_s)
        if low_watermark >= high_watermark:
            raise ValueError(
                f"low_watermark {low_watermark} must be below "
                f"high_watermark {high_watermark}"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.cooldown_s = cooldown_s

    def decide(self, ctx: ScaleContext) -> int:
        if ctx.queue_depth >= self.high_watermark:
            return ctx.nodes + 1
        if ctx.queue_depth <= self.low_watermark and ctx.in_flight == 0:
            return ctx.nodes - 1
        return ctx.nodes


def as_scale_policy(policy: "str | ScalePolicy | None") -> ScalePolicy | None:
    """Normalise the ``scale_policy`` argument of the serve driver."""
    if policy is None or isinstance(policy, ScalePolicy):
        return policy
    instance = get_scale(policy).obj()
    if instance.name == ScalePolicy.name:
        # A registered policy that never set ``name`` still reports its
        # registry key in ServeResult.scale_policy.
        instance.name = policy
    return instance
