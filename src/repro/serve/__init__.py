"""Open-loop online serving workloads over the planning/simulation stack.

``repro.serve`` turns the compiled-plan engine into a traffic simulator: a
seeded :class:`~repro.serve.arrivals.ArrivalProcess` emits evaluation
requests drawn from a weighted :class:`~repro.serve.arrivals.RequestMix` of
(model, context, strategy) cells; a virtual-time
:class:`~repro.serve.queue.RequestQueue` admits them under a pluggable
admission policy and a concurrency limit; the
:class:`~repro.serve.batcher.Batcher` coalesces compatible queued requests
into shared plan executions; and the driver
(:func:`~repro.serve.driver.run_serve`) reuses the
:class:`~repro.api.Session` plan caches and an in-run result cache so
repeated cells are near-free.  Metrics (throughput, goodput, latency
percentiles, queue depth over time, cache hit rate) come back as a frozen
:class:`~repro.results.ServeResult`.

Entry points: :meth:`repro.api.Session.serve` and the ``repro serve`` CLI
subcommand.  Arrival processes and admission policies are registry-driven
(``@register_arrival`` / ``@register_admission``) and listed by
``repro list``.
"""

from repro.serve.arrivals import (
    ArrivalProcess,
    PoissonArrivals,
    Request,
    RequestCell,
    RequestMix,
    TraceArrivals,
    as_arrival,
    as_mix,
)
from repro.serve.batcher import Batcher
from repro.serve.driver import ServeSimulation, run_serve
from repro.serve.queue import (
    AdmissionPolicy,
    FifoAdmission,
    PriorityAdmission,
    RequestQueue,
    as_admission,
)

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "TraceArrivals",
    "Request",
    "RequestCell",
    "RequestMix",
    "as_arrival",
    "as_mix",
    "AdmissionPolicy",
    "FifoAdmission",
    "PriorityAdmission",
    "RequestQueue",
    "as_admission",
    "Batcher",
    "ServeSimulation",
    "run_serve",
]
