"""Online serving workloads over the planning/simulation stack.

``repro.serve`` turns the compiled-plan engine into a traffic simulator,
configured by one frozen :class:`~repro.serve.spec.ServeSpec`: a seeded
:class:`~repro.serve.arrivals.ArrivalProcess` emits evaluation requests
drawn from a weighted :class:`~repro.serve.arrivals.RequestMix` of (model,
context, strategy) cells — open-loop (``poisson``/``trace``) or closed-loop
(``closed``: virtual users re-issuing after a think time); a virtual-time
:class:`~repro.serve.queue.RequestQueue` admits or *sheds* them through an
:class:`~repro.serve.queue.AdmissionContext`-aware policy under a
concurrency limit; the :class:`~repro.serve.batcher.Batcher` coalesces
compatible queued requests into shared plan executions (held at most to
each request's deadline slack); an optional
:class:`~repro.serve.scale.ScalePolicy` grows and shrinks the virtual
cluster with load; and the driver (:func:`~repro.serve.driver.run_serve`)
reuses the :class:`~repro.api.Session` plan caches and an in-run result
cache so repeated cells are near-free.  Metrics (throughput, goodput,
latency percentiles, queue depth and capacity over time, shed counts,
cache hit rate) come back as a frozen :class:`~repro.results.ServeResult`.

Entry points: :meth:`repro.api.Session.serve` and the ``repro serve`` CLI
subcommand.  Arrival processes, admission policies and scale policies are
registry-driven (``@register_arrival`` / ``@register_admission`` /
``@register_scale``) and listed by ``repro list``.
"""

from repro.serve.arrivals import (
    ArrivalProcess,
    ClosedLoopArrivals,
    PoissonArrivals,
    Request,
    RequestCell,
    RequestMix,
    TraceArrivals,
    as_arrival,
    as_mix,
)
from repro.serve.batcher import Batcher
from repro.serve.driver import ServeSimulation, run_serve
from repro.serve.queue import (
    AdmissionContext,
    AdmissionPolicy,
    FifoAdmission,
    PriorityAdmission,
    RequestQueue,
    SloAwareAdmission,
    as_admission,
)
from repro.serve.scale import QueueDepthScaler, ScaleContext, ScalePolicy, as_scale_policy
from repro.serve.spec import ServeSpec

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "ClosedLoopArrivals",
    "TraceArrivals",
    "Request",
    "RequestCell",
    "RequestMix",
    "as_arrival",
    "as_mix",
    "AdmissionContext",
    "AdmissionPolicy",
    "FifoAdmission",
    "PriorityAdmission",
    "SloAwareAdmission",
    "RequestQueue",
    "as_admission",
    "ScaleContext",
    "ScalePolicy",
    "QueueDepthScaler",
    "as_scale_policy",
    "ServeSpec",
    "Batcher",
    "ServeSimulation",
    "run_serve",
]
