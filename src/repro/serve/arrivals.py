"""Seeded open-loop arrival processes over a weighted request mix.

An :class:`ArrivalProcess` turns (mix, duration, seed) into a deterministic
sequence of :class:`Request`\\ s: arrival timestamps drawn by the process and
request cells drawn from the :class:`RequestMix` by weight, both from one
``random.Random(seed)`` stream — the same seed always yields the same
schedule, byte for byte.

Three built-ins register with :mod:`repro.registry`:

* ``poisson`` — memoryless open-loop traffic at a configurable mean rate
  (exponential inter-arrival gaps), the classic load-curve driver,
* ``trace`` — replay of explicit arrival timestamps (optionally tiled with a
  period), for bursty or recorded workloads, and
* ``closed`` — a *closed-loop* pool of virtual users: each client re-issues
  its next request a think-time draw after its previous completion, so the
  offered load responds to system state (the traffic shape of interactive
  users).  Closed-loop schedules cannot be precomputed — the driver issues
  requests through :meth:`ClosedLoopArrivals.clients` as completions land;
  every draw still comes from per-client seeded streams, so a run is a pure
  function of (process config, mix, duration, seed).

New processes plug in with ``@register_admission``'s sibling decorator::

    @register_arrival("my_arrivals", description="...")
    class MyArrivals(ArrivalProcess):
        def arrival_times(self, duration_s, rng):
            ...
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.registry import get_arrival, register_arrival

# Session-field overrides a cell may carry, beyond the strategy itself.
# (Mirrors repro.exec.spec.SESSION_FIELDS minus the seed, which belongs to
# the serve run, not to individual requests.)
_CELL_OVERRIDE_FIELDS = frozenset(
    {
        "model",
        "cluster_preset",
        "num_gpus",
        "dataset",
        "total_context",
        "tensor_parallel",
        "num_steps",
    }
)


@dataclass(frozen=True)
class RequestCell:
    """One kind of request: a (strategy, session-overrides) evaluation cell.

    Attributes
    ----------
    strategy:
        Registry key of the strategy the request evaluates.
    weight:
        Relative draw weight within the mix (must be positive).
    priority:
        Admission priority (larger is served first under ``priority``
        admission; ignored by ``fifo``).
    overrides:
        Session-field overrides for this cell (``model``, ``total_context``,
        ``dataset``...), stored as a sorted tuple of pairs so cells are
        hashable cache keys.
    """

    strategy: str
    weight: float = 1.0
    priority: int = 0
    overrides: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"cell weight must be positive, got {self.weight}")
        items = self.overrides
        if isinstance(items, Mapping):
            items = tuple(sorted(items.items()))
        else:
            items = tuple(sorted(tuple(pair) for pair in items))
        unknown = [k for k, _ in items if k not in _CELL_OVERRIDE_FIELDS]
        if unknown:
            raise ValueError(
                f"unknown cell override field(s) {unknown}; "
                f"allowed: {sorted(_CELL_OVERRIDE_FIELDS)}"
            )
        object.__setattr__(self, "strategy", self.strategy.lower())
        object.__setattr__(self, "overrides", items)

    def override_dict(self) -> dict[str, Any]:
        return dict(self.overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "weight": self.weight,
            "priority": self.priority,
            "overrides": self.override_dict(),
        }


@dataclass(frozen=True)
class RequestMix:
    """A weighted set of request cells, drawn from per arrival."""

    cells: tuple[RequestCell, ...]

    def __post_init__(self) -> None:
        cells = tuple(self.cells)
        if not cells:
            raise ValueError("a request mix needs at least one cell")
        object.__setattr__(self, "cells", cells)
        object.__setattr__(self, "_total_weight", sum(c.weight for c in cells))

    def draw(self, rng: random.Random) -> RequestCell:
        """Draw one cell by weight, deterministically from ``rng``."""
        pick = rng.random() * self._total_weight
        acc = 0.0
        for cell in self.cells:
            acc += cell.weight
            if pick < acc:
                return cell
        return self.cells[-1]

    def to_dicts(self) -> list[dict[str, Any]]:
        return [cell.to_dict() for cell in self.cells]


def as_mix(mix: Any) -> RequestMix:
    """Normalise a mix argument into a :class:`RequestMix`.

    Accepts a :class:`RequestMix`, a single strategy name, a sequence of
    strategy names or :class:`RequestCell`\\ s, or a mapping of strategy
    name -> weight.
    """
    if isinstance(mix, RequestMix):
        return mix
    if isinstance(mix, RequestCell):
        return RequestMix((mix,))
    if isinstance(mix, str):
        return RequestMix((RequestCell(mix),))
    if isinstance(mix, Mapping):
        return RequestMix(
            tuple(RequestCell(name, weight=weight) for name, weight in mix.items())
        )
    if isinstance(mix, Iterable):
        cells = []
        for item in mix:
            if isinstance(item, RequestCell):
                cells.append(item)
            elif isinstance(item, str):
                cells.append(RequestCell(item))
            else:
                raise TypeError(
                    f"mix entries must be strategy names or RequestCells, "
                    f"got {type(item).__name__}"
                )
        return RequestMix(tuple(cells))
    raise TypeError(f"cannot interpret {type(mix).__name__} as a request mix")


@dataclass
class Request:
    """One in-flight evaluation request.

    ``arrival_s``/``start_s``/``finish_s`` are virtual-time stamps;
    ``served_by`` records how the request was satisfied: ``"simulate"`` (it
    paid for a fresh simulation), ``"batch"`` (it rode another request's
    execution), ``"cache"`` (its batch was answered from the in-run result
    cache) or ``"shed"`` (admission rejected it; ``finish_s`` stays ``None``).
    """

    rid: int
    arrival_s: float
    cell: RequestCell
    start_s: float | None = None
    finish_s: float | None = None
    served_by: str | None = None
    client: int | None = None  # issuing closed-loop client, if any

    @property
    def priority(self) -> int:
        return self.cell.priority

    @property
    def latency_s(self) -> float:
        if self.finish_s is None:
            raise ValueError(f"request {self.rid} has not completed")
        return self.finish_s - self.arrival_s


class ArrivalProcess:
    """Base class: deterministic open-loop arrival schedules.

    Subclasses implement :meth:`arrival_times`; :meth:`schedule` assigns the
    mix draws and request ids.  Both time generation and cell draws consume
    the same seeded stream, so a schedule is a pure function of
    (process config, mix, duration, seed).
    """

    name = "abstract"

    def arrival_times(self, duration_s: float, rng: random.Random) -> list[float]:
        """Sorted arrival timestamps within ``[0, duration_s)``."""
        raise NotImplementedError

    def schedule(
        self, mix: RequestMix, duration_s: float, seed: int = 0
    ) -> tuple[Request, ...]:
        """The full request schedule for one serve run."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        rng = random.Random(seed)
        times = self.arrival_times(duration_s, rng)
        return tuple(
            Request(rid=i, arrival_s=t, cell=mix.draw(rng))
            for i, t in enumerate(times)
        )


@register_arrival(
    "poisson", description="open-loop Poisson arrivals at a mean rate (req/s)"
)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps at ``rate`` req/s."""

    name = "poisson"

    def __init__(self, rate: float = 10.0):
        if rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate}")
        self.rate = rate

    def arrival_times(self, duration_s: float, rng: random.Random) -> list[float]:
        times = []
        t = rng.expovariate(self.rate)
        while t < duration_s:
            times.append(t)
            t += rng.expovariate(self.rate)
        return times


class ClosedLoopClient:
    """One virtual user of a closed-loop pool.

    The client owns a private seeded stream (derived deterministically from
    the run seed and its index), so its think-time and mix draws do not
    depend on how other clients' completions interleave — the whole pool is
    reproducible regardless of event order.
    """

    def __init__(self, cid: int, seed: int, think_time_s: float, mix: RequestMix):
        self.cid = cid
        self.think_time_s = think_time_s
        self.mix = mix
        # Distinct large-prime stride keeps client streams disjoint from the
        # open-loop stream seeded with the bare run seed.
        self._rng = random.Random(seed * 1_000_003 + cid + 1)

    def think(self) -> float:
        """One think-time draw (exponential around the configured mean)."""
        return self._rng.expovariate(1.0 / self.think_time_s)

    def issue(self, now_s: float, rid: int) -> Request:
        """The client's next request, issued ``think()`` after ``now_s``."""
        return Request(
            rid=rid,
            arrival_s=now_s + self.think(),
            cell=self.mix.draw(self._rng),
            client=self.cid,
        )


@register_arrival(
    "closed",
    description="closed-loop client pool: N users re-issue after a think time",
)
class ClosedLoopArrivals(ArrivalProcess):
    """A pool of ``clients`` virtual users driving closed-loop traffic.

    Each client issues its first request one think-time draw after t=0 and
    every subsequent one a think-time draw after its previous request
    *completes* (or is shed) — offered load backs off as the system slows
    down, exactly like interactive users.  ``schedule`` is therefore empty:
    the serve driver issues requests dynamically via :meth:`clients`.
    """

    name = "closed"
    closed_loop = True

    def __init__(self, clients: int = 32, think_time_s: float = 1.0):
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        if think_time_s <= 0:
            raise ValueError(f"think_time_s must be positive, got {think_time_s}")
        self.num_clients = clients
        self.think_time_s = think_time_s

    def arrival_times(self, duration_s: float, rng: random.Random) -> list[float]:
        raise NotImplementedError(
            "closed-loop arrivals are driven by completions, not a schedule"
        )

    def schedule(
        self, mix: RequestMix, duration_s: float, seed: int = 0
    ) -> tuple[Request, ...]:
        """Empty — the driver issues closed-loop requests as completions land."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        return ()

    def clients(self, mix: RequestMix, seed: int = 0) -> list[ClosedLoopClient]:
        """The seeded client pool for one run."""
        return [
            ClosedLoopClient(cid, seed, self.think_time_s, mix)
            for cid in range(self.num_clients)
        ]


@register_arrival(
    "trace", description="replay explicit arrival timestamps (optionally tiled)"
)
class TraceArrivals(ArrivalProcess):
    """Replay a recorded list of arrival offsets.

    With ``period`` set, the trace tiles every ``period`` seconds until the
    duration is covered (for turning a short recorded burst into sustained
    load); otherwise it replays once, truncated at the duration.
    """

    name = "trace"

    def __init__(self, times: Sequence[float], period: float | None = None):
        offsets = tuple(float(t) for t in times)
        if not offsets:
            raise ValueError("a trace needs at least one arrival time")
        if any(t < 0 for t in offsets):
            raise ValueError("trace arrival times must be non-negative")
        if period is not None and period <= max(offsets):
            raise ValueError(
                f"trace period {period} must exceed the last offset {max(offsets)}"
            )
        self.times = tuple(sorted(offsets))
        self.period = period

    def arrival_times(self, duration_s: float, rng: random.Random) -> list[float]:
        if self.period is None:
            return [t for t in self.times if t < duration_s]
        times = []
        base = 0.0
        while base < duration_s:
            for t in self.times:
                if base + t < duration_s:
                    times.append(base + t)
            base += self.period
        return sorted(times)


def as_arrival(
    arrival: "str | ArrivalProcess | None",
    *,
    rate: float = 10.0,
    trace_times: Sequence[float] = (),
    trace_period: float | None = None,
    clients: int = 32,
    think_time_s: float = 1.0,
) -> ArrivalProcess:
    """Normalise the ``arrival`` argument of the serve driver.

    ``None`` and ``"poisson"`` build a :class:`PoissonArrivals` at ``rate``;
    ``"trace"`` builds a :class:`TraceArrivals` from ``trace_times`` (and
    ``trace_period``); ``"closed"`` builds a :class:`ClosedLoopArrivals`
    pool of ``clients`` users thinking ``think_time_s`` on average; other
    registered names are instantiated with no arguments; instances pass
    through unchanged.
    """
    if isinstance(arrival, ArrivalProcess):
        return arrival
    if arrival is None or arrival == "poisson":
        return PoissonArrivals(rate=rate)
    if arrival == "trace":
        if not trace_times:
            raise ValueError("trace arrivals need explicit times (trace_times=...)")
        return TraceArrivals(trace_times, period=trace_period)
    if arrival == "closed":
        return ClosedLoopArrivals(clients=clients, think_time_s=think_time_s)
    return get_arrival(arrival).obj()
