"""Virtual-time request queue with pluggable admission and a concurrency cap.

The :class:`RequestQueue` holds requests that have arrived but not yet been
dispatched, ordered by an :class:`AdmissionPolicy` sort key.  Policies see
one :class:`AdmissionContext` — a snapshot of queue state, the driver's
streaming latency/completion sketches and per-cell cost estimates — and may
both *order* the queue (:meth:`AdmissionPolicy.key`) and *shed* requests
predicted to be not worth serving (:meth:`AdmissionPolicy.admit`).

Three policies register with :mod:`repro.registry`:

* ``fifo`` — strict arrival order,
* ``priority`` — higher :attr:`RequestCell.priority` first, arrival order
  within a priority class, and
* ``slo_aware`` — sheds requests whose predicted completion (queue-wait
  estimate plus the cached cell cost) misses the run's ``slo_s``, and
  orders survivors least-slack-first.

Third-party policies written against the old single-argument ``key(request)``
contract still work: :func:`as_admission` wraps them in a deprecation shim
that drops the context and warns once.

The queue also owns the serving concurrency limit: the driver asks
:meth:`RequestQueue.can_dispatch` before starting another batch execution,
so at most ``concurrency`` executions are ever in flight.
"""

from __future__ import annotations

import bisect
import inspect
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.registry import get_admission, register_admission
from repro.serve.arrivals import Request, RequestCell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sketch import LatencySketch, WindowedRate


@dataclass
class AdmissionContext:
    """Everything an admission policy may consult for one decision.

    A fresh snapshot is built by the serve driver per admission; all times
    are virtual seconds of the serving clock, so decisions are deterministic
    per seed.  ``latency`` and ``completion_rate`` are the driver's *live*
    streaming sketches (the same objects feeding telemetry and the final
    :class:`~repro.results.ServeResult`), not copies — a policy subscribes
    to the signals that are already measured instead of growing new
    plumbing.

    Attributes
    ----------
    now_s:
        The virtual time of the decision.
    queue_depth / queued_work_s:
        Requests currently waiting, and the estimated seconds of service
        they represent (cells without a cost estimate yet contribute 0).
    in_flight / concurrency:
        Executions currently running and the driver's limit.
    slo_s:
        The run's latency objective, if any.
    latency / completion_rate:
        The driver's streaming :class:`~repro.obs.sketch.LatencySketch` and
        :class:`~repro.obs.sketch.WindowedRate` (``None`` outside a run).
    cost_estimate:
        Per-cell service-time estimates from the batcher's result cache
        (``None`` until a cell has executed once).
    """

    now_s: float = 0.0
    queue_depth: int = 0
    queued_work_s: float = 0.0
    in_flight: int = 0
    concurrency: int = 1
    slo_s: float | None = None
    latency: "LatencySketch | None" = None
    completion_rate: "WindowedRate | None" = None
    cost_estimate: "Callable[[RequestCell], float | None] | None" = field(
        default=None, repr=False
    )

    def estimated_cost_s(self, cell: RequestCell) -> float | None:
        """The cached service-time estimate for ``cell`` (``None`` if unseen)."""
        if self.cost_estimate is None:
            return None
        return self.cost_estimate(cell)

    def estimated_wait_s(self) -> float:
        """Queue-wait estimate: queued work spread over the service slots."""
        return self.queued_work_s / max(1, self.concurrency)


class AdmissionPolicy:
    """Base class: total order plus an admit/shed verdict over requests.

    ``key(request, ctx)`` orders the queue (smallest key dispatches first;
    include ``request.rid`` as the final tie-breaker so the order is total
    and deterministic).  ``admit(request, ctx)`` runs once on arrival; a
    ``False`` verdict sheds the request — it never queues, never executes,
    and is reported in :class:`~repro.results.ServeResult.shed_count`.
    ``ctx`` may be ``None`` when the queue is used standalone (tests,
    tools); policies must tolerate that by falling back to request-only
    ordering.
    """

    name = "abstract"

    def key(self, request: Request, ctx: AdmissionContext | None = None) -> tuple[Any, ...]:
        """Sort key; the smallest key is dispatched first."""
        raise NotImplementedError

    def admit(self, request: Request, ctx: AdmissionContext | None = None) -> bool:
        """Whether the request should be queued at all (default: always)."""
        return True


@register_admission("fifo", description="first-in, first-out admission (default)")
class FifoAdmission(AdmissionPolicy):
    """Serve requests strictly in arrival order."""

    name = "fifo"

    def key(self, request: Request, ctx: AdmissionContext | None = None) -> tuple[Any, ...]:
        return (request.arrival_s, request.rid)


@register_admission(
    "priority", description="higher-priority cells first, FIFO within a class"
)
class PriorityAdmission(AdmissionPolicy):
    """Serve the highest-priority queued request first."""

    name = "priority"

    def key(self, request: Request, ctx: AdmissionContext | None = None) -> tuple[Any, ...]:
        return (-request.priority, request.arrival_s, request.rid)


@register_admission(
    "slo_aware",
    description="shed requests predicted to miss the SLO; least slack first",
)
class SloAwareAdmission(AdmissionPolicy):
    """Shed predicted SLO misses; order survivors by deadline slack.

    The completion prediction is ``queue wait + cell cost``: the wait comes
    from the work already queued (cost estimates cached by the batcher)
    spread over the concurrency slots, the cost from the cell's last
    execution.  A cell that has never executed has no estimate and is
    admitted optimistically — the first request of each cell always pays its
    way in, priming the estimate for everyone behind it.  With no ``slo_s``
    on the run the policy degrades to FIFO.
    """

    name = "slo_aware"

    def predicted_latency_s(
        self, request: Request, ctx: AdmissionContext
    ) -> float | None:
        """Predicted completion latency, or ``None`` when the cost is unknown."""
        cost = ctx.estimated_cost_s(request.cell)
        if cost is None:
            return None
        return ctx.estimated_wait_s() + cost

    def admit(self, request: Request, ctx: AdmissionContext | None = None) -> bool:
        if ctx is None or ctx.slo_s is None:
            return True
        predicted = self.predicted_latency_s(request, ctx)
        return predicted is None or predicted <= ctx.slo_s

    def key(self, request: Request, ctx: AdmissionContext | None = None) -> tuple[Any, ...]:
        # Least slack first: order by the latest start that still meets the
        # SLO (deadline minus service estimate).  Unknown costs and SLO-less
        # runs fall back to arrival order.
        if ctx is not None and ctx.slo_s is not None:
            cost = ctx.estimated_cost_s(request.cell)
            if cost is not None:
                return (request.arrival_s + ctx.slo_s - cost, request.rid)
        return (request.arrival_s, request.rid)


def _takes_context(method: Any) -> bool:
    """Whether a bound policy method accepts the (request, ctx) contract."""
    try:
        sig = inspect.signature(method)
    except (TypeError, ValueError):  # builtins/partials without signatures
        return True
    params = list(sig.parameters.values())
    if any(p.kind is inspect.Parameter.VAR_POSITIONAL for p in params):
        return True
    positional = [
        p
        for p in params
        if p.kind
        in (inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD)
    ]
    return len(positional) >= 2


class LegacyAdmissionAdapter(AdmissionPolicy):
    """Shim wrapping a pre-AdmissionContext policy (``key(request)`` only).

    Keeps third-party policies working while warning that the single
    argument contract is deprecated; such policies cannot shed (their
    ``admit`` is always true) or consult queue state.
    """

    def __init__(self, inner: Any):
        self._inner = inner
        self.name = getattr(inner, "name", type(inner).__name__)
        warnings.warn(
            f"admission policy {self.name!r} uses the deprecated key(request) "
            "signature; update it to key(request, ctx) to receive the "
            "AdmissionContext (queue state, latency sketches, cost estimates)",
            DeprecationWarning,
            stacklevel=3,
        )

    def key(self, request: Request, ctx: AdmissionContext | None = None) -> tuple[Any, ...]:
        return self._inner.key(request)

    def admit(self, request: Request, ctx: AdmissionContext | None = None) -> bool:
        admit = getattr(self._inner, "admit", None)
        if admit is None:
            return True
        return admit(request) if not _takes_context(admit) else admit(request, ctx)


def as_admission(admission: "str | AdmissionPolicy | None") -> AdmissionPolicy:
    """Normalise the ``admission`` argument of the serve driver.

    Instances and registry names resolve as before; policies still written
    against the old ``key(request)`` signature are wrapped in a
    :class:`LegacyAdmissionAdapter` (with a ``DeprecationWarning``) so they
    keep working under the :class:`AdmissionContext` contract.
    """
    if isinstance(admission, AdmissionPolicy) or (
        admission is not None and not isinstance(admission, str)
    ):
        policy = admission
    elif admission is None:
        policy = FifoAdmission()
    else:
        policy = get_admission(admission).obj()
    if not _takes_context(policy.key):
        return LegacyAdmissionAdapter(policy)
    return policy


class RequestQueue:
    """Admission-ordered queue of waiting requests.

    Kept as a key-sorted list (queue depths are small relative to the cost of
    a simulation, and a scan is what the batcher needs anyway); every
    operation is deterministic because admission keys are unique.
    """

    def __init__(self, admission: "str | AdmissionPolicy | None" = None, concurrency: int = 4):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.admission = as_admission(admission)
        self.concurrency = concurrency
        self._items: list[tuple[tuple[Any, ...], Request]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def can_dispatch(self, in_flight: int) -> bool:
        """Whether another execution may start given ``in_flight`` running."""
        return self.depth > 0 and in_flight < self.concurrency

    def offer(self, request: Request, ctx: AdmissionContext | None = None) -> bool:
        """Admit-or-shed entry point: queue the request unless policy rejects it."""
        if not self.admission.admit(request, ctx):
            return False
        self.push(request, ctx)
        return True

    def push(self, request: Request, ctx: AdmissionContext | None = None) -> None:
        entry = (self.admission.key(request, ctx), request)
        bisect.insort(self._items, entry, key=lambda item: item[0])

    def peek(self) -> Request:
        """The next request in admission order, without removing it."""
        if not self._items:
            raise IndexError("peek on an empty request queue")
        return self._items[0][1]

    def pop(self) -> Request:
        """Remove and return the next request in admission order."""
        if not self._items:
            raise IndexError("pop from an empty request queue")
        return self._items.pop(0)[1]

    def count_matching(self, cell: Any) -> int:
        """Queued requests sharing ``cell`` (what one batch could coalesce)."""
        return sum(1 for _, request in self._items if request.cell == cell)

    def queued_work_s(
        self, cost_estimate: "Callable[[RequestCell], float | None]"
    ) -> float:
        """Estimated service seconds represented by the queued requests.

        Cells without an estimate yet (never executed) contribute nothing —
        the estimate is a floor, which keeps shedding conservative.
        """
        total = 0.0
        for _, request in self._items:
            cost = cost_estimate(request.cell)
            if cost is not None:
                total += cost
        return total

    def take_matching(self, cell: Any, limit: int) -> list[Request]:
        """Remove up to ``limit`` queued requests with the given cell.

        Used by the batcher to coalesce compatible requests; matches are
        taken in admission order.
        """
        if limit <= 0:
            return []
        taken: list[Request] = []
        kept: list[tuple[tuple[Any, ...], Request]] = []
        for entry in self._items:
            if len(taken) < limit and entry[1].cell == cell:
                taken.append(entry[1])
            else:
                kept.append(entry)
        self._items = kept
        return taken
