"""Virtual-time request queue with pluggable admission and a concurrency cap.

The :class:`RequestQueue` holds requests that have arrived but not yet been
dispatched, ordered by an :class:`AdmissionPolicy` sort key.  Two policies
register with :mod:`repro.registry`:

* ``fifo`` — strict arrival order, and
* ``priority`` — higher :attr:`RequestCell.priority` first, arrival order
  within a priority class.

The queue also owns the serving concurrency limit: the driver asks
:meth:`RequestQueue.can_dispatch` before starting another batch execution,
so at most ``concurrency`` executions are ever in flight.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.registry import get_admission, register_admission
from repro.serve.arrivals import Request


class AdmissionPolicy:
    """Base class: total order over queued requests via :meth:`key`."""

    name = "abstract"

    def key(self, request: Request) -> tuple[Any, ...]:
        """Sort key; the smallest key is dispatched first.

        Keys must be unique per request — include ``request.rid`` as the
        final tie-breaker so the order is total and deterministic.
        """
        raise NotImplementedError


@register_admission("fifo", description="first-in, first-out admission (default)")
class FifoAdmission(AdmissionPolicy):
    """Serve requests strictly in arrival order."""

    name = "fifo"

    def key(self, request: Request) -> tuple[Any, ...]:
        return (request.arrival_s, request.rid)


@register_admission(
    "priority", description="higher-priority cells first, FIFO within a class"
)
class PriorityAdmission(AdmissionPolicy):
    """Serve the highest-priority queued request first."""

    name = "priority"

    def key(self, request: Request) -> tuple[Any, ...]:
        return (-request.priority, request.arrival_s, request.rid)


def as_admission(admission: "str | AdmissionPolicy | None") -> AdmissionPolicy:
    """Normalise the ``admission`` argument of the serve driver."""
    if isinstance(admission, AdmissionPolicy):
        return admission
    if admission is None:
        return FifoAdmission()
    return get_admission(admission).obj()


class RequestQueue:
    """Admission-ordered queue of waiting requests.

    Kept as a key-sorted list (queue depths are small relative to the cost of
    a simulation, and a scan is what the batcher needs anyway); every
    operation is deterministic because admission keys are unique.
    """

    def __init__(self, admission: "str | AdmissionPolicy | None" = None, concurrency: int = 4):
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        self.admission = as_admission(admission)
        self.concurrency = concurrency
        self._items: list[tuple[tuple[Any, ...], Request]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    def can_dispatch(self, in_flight: int) -> bool:
        """Whether another execution may start given ``in_flight`` running."""
        return self.depth > 0 and in_flight < self.concurrency

    def push(self, request: Request) -> None:
        entry = (self.admission.key(request), request)
        bisect.insort(self._items, entry, key=lambda item: item[0])

    def pop(self) -> Request:
        """Remove and return the next request in admission order."""
        if not self._items:
            raise IndexError("pop from an empty request queue")
        return self._items.pop(0)[1]

    def take_matching(self, cell: Any, limit: int) -> list[Request]:
        """Remove up to ``limit`` queued requests with the given cell.

        Used by the batcher to coalesce compatible requests; matches are
        taken in admission order.
        """
        if limit <= 0:
            return []
        taken: list[Request] = []
        kept: list[tuple[tuple[Any, ...], Request]] = []
        for entry in self._items:
            if len(taken) < limit and entry[1].cell == cell:
                taken.append(entry[1])
            else:
                kept.append(entry)
        self._items = kept
        return taken
