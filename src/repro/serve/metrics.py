"""Serving metrics: latency percentiles, rates and queue-depth tracking.

Pure, dependency-free helpers consumed by the serve driver to assemble a
:class:`~repro.results.ServeResult`: a linear-interpolation percentile (the
same convention as ``numpy.percentile``), a latency summary, and a
:class:`QueueDepthTracker` that integrates queue depth over virtual time
(time-weighted mean, maximum, and a compact ``(time, depth)`` timeline).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.sketch import exact_percentile
from repro.serve.arrivals import Request


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    Returns 0.0 for an empty sequence so metrics of a zero-request run are
    well defined; rejects NaN inputs, which would silently corrupt the sort
    order.  Delegates to :func:`repro.obs.sketch.exact_percentile` — the
    same convention the streaming :class:`~repro.obs.sketch.LatencySketch`
    reproduces below its exact threshold.
    """
    return exact_percentile(values, q)


def latency_summary(latencies: Sequence[float]) -> dict[str, float]:
    """Mean/percentile/max summary of request latencies (seconds)."""
    mean = sum(latencies) / len(latencies) if latencies else 0.0
    return {
        "mean_latency_s": mean,
        "p50_latency_s": percentile(latencies, 50),
        "p95_latency_s": percentile(latencies, 95),
        "p99_latency_s": percentile(latencies, 99),
        "max_latency_s": max(latencies) if latencies else 0.0,
    }


class QueueDepthTracker:
    """Integrate queue depth over virtual time.

    :meth:`sample` records the depth *after* each event; between events the
    depth is constant, so the time-weighted mean is an exact integral.  The
    timeline only appends on depth changes, keeping it compact.
    """

    def __init__(self) -> None:
        self._timeline: list[tuple[float, int]] = [(0.0, 0)]
        self._last_t = 0.0
        self._last_depth = 0
        self._area = 0.0
        self.max_depth = 0

    def sample(self, t: float, depth: int) -> None:
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        self._area += self._last_depth * (t - self._last_t)
        self._last_t = t
        if depth != self._last_depth:
            self._timeline.append((t, depth))
            self._last_depth = depth
        self.max_depth = max(self.max_depth, depth)

    def mean_depth(self, horizon_s: float) -> float:
        """Time-weighted mean depth over ``[0, horizon_s]``."""
        if horizon_s <= 0:
            return 0.0
        tail = self._last_depth * max(0.0, horizon_s - self._last_t)
        return (self._area + tail) / horizon_s

    def timeline(self, round_to: int = 6) -> tuple[tuple[float, int], ...]:
        """The ``(time, depth)`` change points, times rounded for stable JSON."""
        return tuple((round(t, round_to), d) for t, d in self._timeline)


def request_counters(requests: Sequence[Request]) -> dict[str, Any]:
    """How requests were served: fresh, batched, cached — or shed.

    Shed requests (``served_by == "shed"``) never execute, so they are
    excluded from ``completed`` and counted separately.
    """
    completed = [r for r in requests if r.finish_s is not None]
    cache_hits = sum(1 for r in completed if r.served_by == "cache")
    batched = sum(1 for r in completed if r.served_by == "batch")
    shed = sum(1 for r in requests if r.served_by == "shed")
    return {
        "completed": len(completed),
        "cache_hits": cache_hits,
        "batched_requests": batched,
        "shed": shed,
        "cache_hit_rate": cache_hits / len(completed) if completed else 0.0,
    }
