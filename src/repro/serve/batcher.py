"""Batching and execution: shared plan runs over the Session machinery.

The :class:`Batcher` turns the head of the queue into an execution batch by
coalescing every queued request with the *same cell* (identical strategy and
session overrides) up to ``max_batch``, so a burst of identical requests
costs one simulation.  Execution funnels through the same
:func:`repro.exec.worker.execute_payload` path sweeps use — requests become
:class:`~repro.exec.spec.SweepPoint`\\ s resolved against a
:class:`~repro.exec.worker.SessionPool` rooted at the serving session, so
plan compilation and batch sampling are shared across requests exactly like
across sweep points — plus an in-run result cache keyed by the point's
canonical JSON (the same identity :mod:`repro.exec.cache` hashes), so a cell
seen twice skips the simulation entirely.

Below the cache sits the batched simulation kernel: a cell's simulation runs
through :func:`~repro.training.throughput.measure_throughput`, whose
per-step iterations execute as lanes of one :mod:`repro.sim.batch` pass —
repeated sampled batches inside one virtual-time step dedup to a single
lane, and structure-sharing steps amortise the event-loop setup.  With the
driver's telemetry hub attached, the kernel's ``batch_simulate`` events land
on the same stream as the request lifecycle events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.api import Session
from repro.exec.spec import SweepPoint
from repro.exec.worker import SessionPool, execute_payload
from repro.obs.core import TELEMETRY_OFF, Telemetry
from repro.registry import get_strategy
from repro.serve.arrivals import Request, RequestCell
from repro.serve.queue import RequestQueue

# Virtual service time of a request answered from the in-run result cache
# (a lookup, not a simulation).
DEFAULT_CACHE_HIT_COST_S = 0.002


@dataclass
class ExecutionBatch:
    """One shared execution: the requests it serves and its timing."""

    requests: list[Request]
    cell: RequestCell
    start_s: float
    finish_s: float
    cache_hit: bool

    @property
    def size(self) -> int:
        return len(self.requests)


class Batcher:
    """Group compatible queued requests and execute them as one plan run."""

    def __init__(
        self,
        session: Session,
        *,
        max_batch: int = 8,
        cache: bool = True,
        cache_hit_cost_s: float = DEFAULT_CACHE_HIT_COST_S,
        telemetry: Telemetry = TELEMETRY_OFF,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.session = session
        self.max_batch = max_batch
        self.cache = cache
        self.cache_hit_cost_s = cache_hit_cost_s
        self.telemetry = telemetry
        self.pool = SessionPool(session)
        self.simulations_executed = 0
        # key -> (virtual time the producing execution finishes, result dict).
        # Entries are stored at dispatch but only *answer* requests causally:
        # before ready_at_s a later batch joins the in-flight execution.
        self._results: dict[str, tuple[float, dict[str, Any]]] = {}
        # The config new dispatches resolve against.  The autoscaler swaps it
        # via rescale(); points are keyed per (config, cell) so each capacity
        # level keeps its own execution identity (and thus cache entries).
        self._config_dict = session.config.to_dict()
        self._config_key = SweepPoint(self._config_dict).canonical_json()
        self._points: dict[tuple[str, RequestCell], SweepPoint] = {}

    # -- capacity ----------------------------------------------------------------

    def rescale(self, config: Any) -> None:
        """Point subsequent dispatches at a resized session config.

        Called by the serve driver when an autoscale step changes the
        cluster; in-flight executions are unaffected (their points are
        already built), and revisiting a previously seen capacity reuses its
        cached points and results.
        """
        self._config_dict = config.to_dict()
        self._config_key = SweepPoint(self._config_dict).canonical_json()

    # -- request -> execution identity -------------------------------------------

    def point_for(self, cell: RequestCell) -> SweepPoint:
        """The sweep point a cell executes as (memoised per config and cell).

        Resolves the cell's strategy through the registry on first sight, so
        a bad mix fails before any request is simulated.
        """
        point = self._points.get((self._config_key, cell))
        if point is None:
            get_strategy(cell.strategy)
            values = {
                **self._config_dict,
                **cell.override_dict(),
                "strategy": cell.strategy,
                "strategy_kwargs": {},
                "label": None,
                "perturbation": None,
                "recovery": "checkpoint_restart",
                "num_iterations": 32,
            }
            point = SweepPoint(values)
            self._points[(self._config_key, cell)] = point
        return point

    def cost_estimate(self, cell: RequestCell) -> float | None:
        """Measured service time of ``cell`` at the current capacity, if known.

        Reads the in-run result cache: ``None`` until the cell has executed
        once (on the current config), after which the last measured iteration
        time is the estimate.  This is what SLO-aware admission and the
        deadline batcher consult — no separate model, just the cache.
        """
        key = self.point_for(cell).canonical_json()
        entry = self._results.get(key)
        if entry is None:
            return None
        return float(entry[1]["iteration_time_s"])

    # -- batching ----------------------------------------------------------------

    def collect(self, queue: RequestQueue, head: Request) -> list[Request]:
        """The batch served together with ``head``: same-cell queued requests."""
        return [head] + queue.take_matching(head.cell, self.max_batch - 1)

    # -- execution ---------------------------------------------------------------

    def execute(self, requests: list[Request], now_s: float) -> ExecutionBatch:
        """Serve one batch starting at virtual time ``now_s``.

        Causal cache semantics: a completed entry answers the batch after
        :attr:`cache_hit_cost_s` of virtual time; an entry whose producing
        execution is still in flight at ``now_s`` makes the batch *join* it
        (shared-future semantics — the batch holds its slot and completes at
        the producer's finish, never before the result virtually exists); a
        miss runs the cell's simulation (through the session pool, so plan
        caches are shared) and takes the measured iteration time.
        """
        cell = requests[0].cell
        point = self.point_for(cell)
        key = point.canonical_json()
        cached = self._results.get(key) if self.cache else None
        if cached is not None:
            ready_at_s, _ = cached
            if ready_at_s <= now_s:
                finish_s = now_s + self.cache_hit_cost_s
                served_by = "cache"
            else:
                finish_s = ready_at_s
                served_by = "batch"
        else:
            result = execute_payload(
                point.to_dict(), pool=self.pool, telemetry=self.telemetry
            )
            self.simulations_executed += 1
            finish_s = now_s + float(result["iteration_time_s"])
            if self.cache:
                self._results[key] = (finish_s, result)
            served_by = "simulate"
        for i, request in enumerate(requests):
            request.start_s = now_s
            request.finish_s = finish_s
            # The head of a fresh simulation pays for it; everyone else
            # shared an execution ("batch") or a completed entry ("cache").
            if served_by == "simulate":
                request.served_by = "simulate" if i == 0 else "batch"
            else:
                request.served_by = served_by
        return ExecutionBatch(
            requests=requests,
            cell=cell,
            start_s=now_s,
            finish_s=finish_s,
            cache_hit=served_by == "cache",
        )
