"""Declarative serving runs: the frozen :class:`ServeSpec`.

``Session.serve`` had grown a dozen loose keyword knobs (rate, duration,
arrival, admission, concurrency, batching, SLO...) and the closed-loop /
autoscaling work adds more.  :class:`ServeSpec` packages them the same way
:class:`~repro.exec.spec.SweepSpec` packages a grid: validated on
construction, immutable, and with a canonical :meth:`to_dict` /
:meth:`canonical_json` that is the run's content identity for caching and
telemetry — two specs with equal canonical JSON describe byte-identical
runs per seed.

``Session.serve(spec)`` is the primary signature; the old kwarg form is a
thin shim that builds a :class:`ServeSpec`, and ``repro serve`` flag parsing
is likewise re-expressed as spec construction.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Any, Sequence

from repro.serve.arrivals import ArrivalProcess, RequestMix, as_arrival, as_mix
from repro.serve.batcher import DEFAULT_CACHE_HIT_COST_S
from repro.serve.queue import AdmissionPolicy, as_admission
from repro.serve.scale import ScalePolicy, as_scale_policy
from repro.utils.validation import check_non_negative, check_positive


def _component_name(value: Any, default: str) -> str:
    """Canonical registry name of a component argument (instance or str)."""
    if value is None:
        return default
    if isinstance(value, str):
        return value
    return getattr(value, "name", type(value).__name__)


@dataclass(frozen=True)
class ServeSpec:
    """One serving workload, fully specified.

    Attributes
    ----------
    mix:
        The request mix — anything :func:`~repro.serve.arrivals.as_mix`
        accepts (normalised to a :class:`RequestMix` on construction;
        ``None`` means the standard comparison, equally weighted).
    rate / duration_s:
        Mean open-loop arrival rate (req per virtual second; ignored by
        ``closed``/``trace``) and the arrival window (the queue then drains).
    arrival:
        ``"poisson"`` (default), ``"trace"``, ``"closed"``, any registered
        name, or an :class:`ArrivalProcess` instance.
    clients / think_time_s:
        Closed-loop pool size and mean think time (used by
        ``arrival="closed"``; inert otherwise).
    admission:
        ``"fifo"`` (default), ``"priority"``, ``"slo_aware"``, any
        registered name, or an :class:`AdmissionPolicy` instance.
    concurrency / max_batch:
        Serving limits: simultaneous executions and requests per batch.
    coalesce_s:
        Deadline-driven batching window: a dispatch may be held up to this
        long past the head request's arrival to coalesce same-cell arrivals,
        but never past the head's deadline slack (``slo_s`` minus the cell's
        estimated cost).  0 (default) dispatches immediately.
    cache / cache_hit_cost_s:
        The in-run result cache toggle and the virtual service time of a
        cache hit.
    slo_s:
        Latency objective: goodput counts only requests meeting it, and the
        ``slo_aware`` policy sheds predicted misses against it.
    scale_policy / min_gpus / max_gpus:
        Autoscaling: a registered :class:`~repro.serve.scale.ScalePolicy`
        name (or instance) consulted between dispatches, and the GPU bounds
        it may scale within (``None`` bounds default to the serving
        session's own size).
    trace_times / trace_period:
        Arrival offsets for ``arrival="trace"``.
    """

    mix: Any = None
    rate: float = 10.0
    duration_s: float = 60.0
    arrival: "str | ArrivalProcess | None" = None
    clients: int = 32
    think_time_s: float = 1.0
    admission: "str | AdmissionPolicy | None" = "fifo"
    concurrency: int = 4
    max_batch: int = 8
    coalesce_s: float = 0.0
    cache: bool = True
    cache_hit_cost_s: float = DEFAULT_CACHE_HIT_COST_S
    slo_s: float | None = None
    scale_policy: "str | ScalePolicy | None" = None
    min_gpus: int | None = None
    max_gpus: int | None = None
    trace_times: Sequence[float] = ()
    trace_period: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mix", as_mix(self.mix) if self.mix is not None else None)
        check_positive("rate", self.rate)
        check_positive("duration_s", self.duration_s)
        check_positive("clients", self.clients)
        check_positive("think_time_s", self.think_time_s)
        check_positive("concurrency", self.concurrency)
        check_positive("max_batch", self.max_batch)
        check_non_negative("coalesce_s", self.coalesce_s)
        check_non_negative("cache_hit_cost_s", self.cache_hit_cost_s)
        if self.slo_s is not None:
            check_positive("slo_s", self.slo_s)
        if self.min_gpus is not None:
            check_positive("min_gpus", self.min_gpus)
        if self.max_gpus is not None:
            check_positive("max_gpus", self.max_gpus)
        if (
            self.min_gpus is not None
            and self.max_gpus is not None
            and self.min_gpus > self.max_gpus
        ):
            raise ValueError(
                f"min_gpus {self.min_gpus} must not exceed max_gpus {self.max_gpus}"
            )
        object.__setattr__(self, "trace_times", tuple(float(t) for t in self.trace_times))

    # -- normalised components ---------------------------------------------------

    def resolved_mix(self, default: Any = None) -> RequestMix:
        """The run's :class:`RequestMix` (``default`` when no mix was given)."""
        if self.mix is not None:
            return self.mix
        return as_mix(default)

    def build_arrival(self) -> ArrivalProcess:
        """Instantiate the arrival process the spec describes."""
        return as_arrival(
            self.arrival,
            rate=self.rate,
            trace_times=self.trace_times,
            trace_period=self.trace_period,
            clients=self.clients,
            think_time_s=self.think_time_s,
        )

    def build_admission(self) -> AdmissionPolicy:
        """Instantiate (and shim-wrap if needed) the admission policy."""
        return as_admission(self.admission)

    def build_scale_policy(self) -> ScalePolicy | None:
        """Instantiate the autoscale policy, or ``None`` for fixed capacity."""
        return as_scale_policy(self.scale_policy)

    def replace(self, **overrides: Any) -> "ServeSpec":
        """A copy of this spec with some fields overridden (re-validated)."""
        return dataclasses.replace(self, **overrides)

    # -- canonical identity ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-safe form: the run's content identity (sans seed).

        Component instances collapse to their registry names — configuration
        carried *inside* an instance (e.g. custom watermarks) is the
        caller's to track, exactly like strategy instances elsewhere.
        """
        return {
            "mix": self.mix.to_dicts() if self.mix is not None else None,
            "rate": self.rate,
            "duration_s": self.duration_s,
            "arrival": _component_name(self.arrival, "poisson"),
            "clients": self.clients,
            "think_time_s": self.think_time_s,
            "admission": _component_name(self.admission, "fifo"),
            "concurrency": self.concurrency,
            "max_batch": self.max_batch,
            "coalesce_s": self.coalesce_s,
            "cache": self.cache,
            "cache_hit_cost_s": self.cache_hit_cost_s,
            "slo_s": self.slo_s,
            "scale_policy": (
                None
                if self.scale_policy is None
                else _component_name(self.scale_policy, "")
            ),
            "min_gpus": self.min_gpus,
            "max_gpus": self.max_gpus,
            "trace_times": list(self.trace_times),
            "trace_period": self.trace_period,
        }

    def canonical_json(self) -> str:
        """Stable JSON identity string (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def describe(self) -> str:
        """One-line summary for logs and tables."""
        arrival = _component_name(self.arrival, "poisson")
        load = (
            f"{self.clients} clients/think {self.think_time_s:g}s"
            if arrival == "closed"
            else f"{self.rate:g} rps"
        )
        return (
            f"ServeSpec({arrival} {load} x {self.duration_s:g}s, "
            f"admission={_component_name(self.admission, 'fifo')}, "
            f"concurrency={self.concurrency}, max_batch={self.max_batch}"
            + (f", slo={self.slo_s:g}s" if self.slo_s is not None else "")
            + (
                f", scale={_component_name(self.scale_policy, '')}"
                if self.scale_policy is not None
                else ""
            )
            + ")"
        )
