"""Recovery policies and the resilience run driver.

A resilience run walks a global training clock over ``num_iterations``
iterations.  Each iteration is timed by the discrete-event engine under the
slowdowns active at the iteration's start; when a node failure from the
perturbation schedule lands inside an iteration, the partially-done iteration
is lost and the run's :class:`RecoveryPolicy` decides what happens next:

* :class:`CheckpointRestart` rolls the run back to the last checkpoint and
  resumes on the full cluster (a hot spare replaces the dead node), paying a
  restart cost — the classic large-scale training story.
* :class:`ElasticRepartition` drops the failed node and keeps going on the
  survivors: the strategy *replans* the same global batches onto the smaller
  cluster through the ordinary ``Strategy.plan_layer`` machinery (via a
  derived session), so only the interrupted iteration plus a replan cost is
  lost, at the price of reduced steady-state throughput.

New policies subclass :class:`RecoveryPolicy`, implement ``recover`` and
register with ``@register_recovery("name")``; they are then selectable from
``Session.run(..., recovery="name")`` and ``repro run --recovery name``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.dynamics.events import NodeFailure, PerturbationSchedule
from repro.obs.core import TELEMETRY_OFF, Telemetry
from repro.registry import get_recovery, register_recovery
from repro.sim.engine import Simulator
from repro.training.iteration import simulate_iteration, simulate_iteration_states
from repro.utils.validation import check_non_negative, check_positive

# A cache miss in the resilience driver prefetches the same iteration under
# the factor states of upcoming slowdown onsets (they are known from the
# schedule), batching up to this many states into one lane-parallel
# simulation.  Bounded so a long slowdown tail cannot balloon one miss.
_PREFETCH_STATES = 8

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.api import Session


@dataclass(frozen=True)
class FailureContext:
    """Everything a policy may consult when a failure interrupts the run."""

    failure: NodeFailure
    time_s: float
    iteration_index: int
    partial_iteration_s: float
    alive_nodes: int
    iters_since_checkpoint: int
    tokens_since_checkpoint: int
    time_since_checkpoint_s: float


@dataclass(frozen=True)
class RecoveryAction:
    """A policy's verdict: how long recovery takes and what state survives.

    Attributes
    ----------
    downtime_s:
        Wall-clock pause before training resumes (restart / replan cost).
    rollback_iterations:
        Completed iterations whose results are discarded and must be redone
        (work since the last checkpoint for checkpoint-restart).
    drop_node:
        Continue without the failed node (elastic) instead of replacing it.
    """

    downtime_s: float
    rollback_iterations: int = 0
    drop_node: bool = False

    def __post_init__(self) -> None:
        check_non_negative("downtime_s", self.downtime_s)
        check_non_negative("rollback_iterations", self.rollback_iterations)


class RecoveryPolicy(abc.ABC):
    """Decides how a training run resumes after a node failure.

    ``checkpoint_interval`` (iterations between checkpoints) and
    ``checkpoint_cost_s`` describe the policy's steady-state overhead; the
    driver charges the cost each time a checkpoint is taken.  Policies that
    never checkpoint leave ``checkpoint_interval`` as ``None``.
    """

    name: str = "recovery"
    checkpoint_interval: int | None = None
    checkpoint_cost_s: float = 0.0

    @abc.abstractmethod
    def recover(self, ctx: FailureContext) -> RecoveryAction:
        """The action taken for one failure."""

    def describe(self) -> str:
        """One-line description used in experiment output."""
        return self.name


@register_recovery(
    "checkpoint_restart",
    description="roll back to the last checkpoint, restart on the full cluster",
)
@dataclass
class CheckpointRestart(RecoveryPolicy):
    """Periodic checkpoints; on failure, restart from the last one.

    The failed node is assumed to be replaced by a hot spare during the
    restart, so the cluster returns at full capacity but all progress since
    the last checkpoint is recomputed.
    """

    checkpoint_interval: int = 8
    checkpoint_cost_s: float = 1.0
    restart_cost_s: float = 60.0
    name: str = field(default="checkpoint_restart", init=False)

    def __post_init__(self) -> None:
        check_positive("checkpoint_interval", self.checkpoint_interval)
        check_non_negative("checkpoint_cost_s", self.checkpoint_cost_s)
        check_non_negative("restart_cost_s", self.restart_cost_s)

    def recover(self, ctx: FailureContext) -> RecoveryAction:
        return RecoveryAction(
            downtime_s=self.restart_cost_s,
            rollback_iterations=ctx.iters_since_checkpoint,
        )


@register_recovery(
    "elastic",
    description="drop the failed node and replan remaining work on the survivors",
)
@dataclass
class ElasticRepartition(RecoveryPolicy):
    """Continue on the surviving ranks after a brief replanning pause.

    Only the interrupted iteration is redone (optimizer state is assumed
    redundantly replicated); the sequence partitioner replans every following
    batch onto the smaller cluster, so throughput degrades gracefully instead
    of pausing for a full restart.
    """

    replan_cost_s: float = 15.0
    name: str = field(default="elastic", init=False)

    def __post_init__(self) -> None:
        check_non_negative("replan_cost_s", self.replan_cost_s)

    def recover(self, ctx: FailureContext) -> RecoveryAction:
        return RecoveryAction(downtime_s=self.replan_cost_s, drop_node=True)


def as_policy(recovery: "RecoveryPolicy | str", **kwargs: Any) -> RecoveryPolicy:
    """Normalise the ``recovery=`` argument accepted by the public API."""
    if isinstance(recovery, RecoveryPolicy):
        if kwargs:
            raise ValueError("recovery kwargs only apply when passing a policy name")
        return recovery
    return get_recovery(recovery).obj(**kwargs)


def scale_session(session: "Session", num_nodes: int) -> "Session":
    """The elastic scale primitive: replan onto a ``num_nodes``-node cluster.

    Derives a session for the resized cluster (cached by configuration in the
    session family), so every strategy replans through its ordinary
    ``Strategy.plan_layer`` machinery and repeated visits to a node count
    reuse the derived session's batch/plan caches.  This is the one step both
    consumers of elasticity share: :func:`run_resilient` shrinking after an
    :class:`ElasticRepartition` failure, and the serve autoscaler
    (:mod:`repro.serve.scale`) growing/shrinking the virtual cluster with
    load.
    """
    check_positive("num_nodes", num_nodes)
    if num_nodes == session.config.num_nodes:
        return session
    return session.derive(num_gpus=num_nodes * session.cluster.gpus_per_node)


@dataclass(frozen=True)
class ResilienceReport:
    """Raw outcome of one resilience run (wrapped by ``repro.results``).

    ``useful_tokens`` counts only tokens whose work survived to the end of the
    run (rolled-back iterations are discounted), so
    ``goodput = useful_tokens / wall_time`` is the metric the paper's regime
    cares about: training progress per wall-clock second under faults.
    """

    strategy: str
    recovery: str
    wall_time_s: float  # repro: allow(S001) virtual seconds, deterministic per seed
    useful_tokens: int
    time_lost_s: float
    restart_count: int
    num_failures: int
    completed_iterations: int
    num_iterations: int
    final_num_nodes: int
    cluster_died: bool

    @property
    def goodput_tokens_per_second(self) -> float:
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.useful_tokens / self.wall_time_s


def run_resilient(
    session: "Session",
    strategy: str,
    schedule: PerturbationSchedule,
    policy: RecoveryPolicy,
    num_iterations: int = 32,
    telemetry: Telemetry = TELEMETRY_OFF,
    **strategy_kwargs: Any,
) -> ResilienceReport:
    """Simulate ``num_iterations`` training iterations under a perturbation
    schedule, applying ``policy`` whenever a node fails.

    The run cycles over the session's sampled batches.  Iteration times come
    from the discrete-event engine with the slowdown state active at the
    iteration's start; after an elastic shrink, plans are rebuilt for the
    surviving cluster through ``session.derive`` (same batches, fewer ranks),
    i.e. the strategy's own ``plan_layer``.  Everything is deterministic given
    the session seed and the schedule; ``telemetry`` (observational only)
    receives one ``failure``/``recovery`` event pair per handled fault.
    """
    check_positive("num_iterations", num_iterations)
    config = session.config
    full_nodes = config.num_nodes
    batches = session.batches

    # (nodes, batch index, active-factor state) -> iteration seconds.  The
    # condition changes only at perturbation onsets and failures, so nearly
    # every iteration is a cache hit.
    iteration_cache: dict[tuple, float] = {}
    # Single-state misses share one simulator; multi-state misses batch
    # through the lane kernel.  Either way the plans come out of the session
    # plan caches with their CompiledPlan already built, so a resilience run
    # compiles each (strategy, batch, phase, nodes) plan once.
    simulator = Simulator(record_trace=False)

    def iteration_time(nodes: int, batch_index: int, clock: float) -> float:
        factors = schedule.active_factors(clock, session.cluster)
        key = (nodes, batch_index, tuple(sorted(factors.items())))
        cached = iteration_cache.get(key)
        if cached is not None:
            return cached
        sess = scale_session(session, nodes)
        strat = sess.strategy(strategy, **strategy_kwargs)
        # The factor state only changes at slowdown onsets, so the states
        # this run will need later are already known.  A miss therefore
        # prefetches: the same iteration under the current state plus the
        # next distinct upcoming states runs as lanes of one batched
        # simulation (same plans, different speed schedules), priming the
        # cache for the iterations that cross those onsets.
        states = [(key, schedule.active_resource_events(clock, session.cluster))]
        seen = {key}
        for event in schedule.slowdowns:
            if len(states) >= _PREFETCH_STATES:
                break
            if event.time_s <= clock:
                continue
            future = schedule.active_factors(event.time_s, session.cluster)
            future_key = (nodes, batch_index, tuple(sorted(future.items())))
            if future_key in seen or future_key in iteration_cache:
                continue
            seen.add(future_key)
            states.append(
                (
                    future_key,
                    schedule.active_resource_events(event.time_s, session.cluster),
                )
            )
        if len(states) == 1:
            result = simulate_iteration(
                strat, batches[batch_index], simulator=simulator, events=states[0][1]
            )
            iteration_cache[key] = result.iteration_time_s
        else:
            results = simulate_iteration_states(
                strat, batches[batch_index], [events for _, events in states]
            )
            for (state_key, _), state_result in zip(states, results):
                iteration_cache[state_key] = state_result.iteration_time_s
        return iteration_cache[key]

    pending_failures = list(schedule.failures)
    clock = 0.0
    useful_tokens = 0
    time_lost = 0.0
    restarts = 0
    failures_seen = 0
    alive_nodes = full_nodes
    # (tokens, duration) of each completed-but-not-yet-checkpointed iteration,
    # newest last; a rollback discards entries from the tail.
    since_ckpt: list[tuple[int, float]] = []
    i = 0
    cluster_died = False

    while i < num_iterations:
        batch_index = i % len(batches)
        duration = iteration_time(alive_nodes, batch_index, clock)

        failure = None
        if pending_failures and pending_failures[0].time_s < clock + duration:
            failure = pending_failures.pop(0)

        if failure is None:
            clock += duration
            tokens = batches[batch_index].total_tokens
            useful_tokens += tokens
            i += 1
            since_ckpt.append((tokens, duration))
            interval = policy.checkpoint_interval
            if interval is not None and len(since_ckpt) >= interval:
                clock += policy.checkpoint_cost_s
                since_ckpt.clear()
            continue

        # A failure lands inside this iteration (or happened during the
        # previous recovery's downtime, in which case it strikes immediately).
        effective_time = max(failure.time_s, clock)
        partial = effective_time - clock
        failures_seen += 1
        telemetry.event(
            "failure",
            node=failure.node_id,
            vt=round(effective_time, 6),
            iteration=i,
        )
        ctx = FailureContext(
            failure=failure,
            time_s=effective_time,
            iteration_index=i,
            partial_iteration_s=partial,
            alive_nodes=alive_nodes,
            iters_since_checkpoint=len(since_ckpt),
            tokens_since_checkpoint=sum(t for t, _ in since_ckpt),
            time_since_checkpoint_s=sum(d for _, d in since_ckpt),
        )
        action = policy.recover(ctx)
        telemetry.event(
            "recovery",
            policy=policy.name,
            downtime_s=round(action.downtime_s, 6),
            rollback=int(action.rollback_iterations),
            drop_node=action.drop_node,
        )
        restarts += 1
        clock = effective_time + action.downtime_s
        time_lost += partial + action.downtime_s
        rollback = min(action.rollback_iterations, len(since_ckpt))
        for _ in range(rollback):
            tokens, iter_duration = since_ckpt.pop()
            i -= 1
            useful_tokens -= tokens
            time_lost += iter_duration
        if action.drop_node:
            alive_nodes -= 1
            if alive_nodes == 0:
                cluster_died = True
                break

    return ResilienceReport(
        strategy=strategy.lower(),
        recovery=policy.name,
        wall_time_s=clock,
        useful_tokens=useful_tokens,
        time_lost_s=time_lost,
        restart_count=restarts,
        num_failures=failures_seen,
        completed_iterations=i,
        num_iterations=num_iterations,
        final_num_nodes=alive_nodes,
        cluster_died=cluster_died,
    )
