"""Seeded stochastic models that generate perturbation schedules.

:class:`PerturbationModel` draws timed events from the distributions that
production log studies report for large GPU clusters: persistent compute
stragglers affecting a fraction of GPUs, bandwidth degradation on a fraction
of NICs with random onset, and node failures as a Poisson process with a
configurable per-node MTTF.  Generation is driven entirely by one
``numpy`` generator, so a schedule is a pure function of (config, cluster,
seed) — the bit-for-bit determinism the resilience experiments rely on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.cluster.topology import Cluster
from repro.dynamics.events import (
    GpuSlowdown,
    NicDegrade,
    NodeFailure,
    PerturbationEvent,
    PerturbationSchedule,
)
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class PerturbationConfig:
    """Knobs of the perturbation model.

    Attributes
    ----------
    seed:
        RNG seed for event generation.  ``None`` inherits the seed of the
        session the perturbation is applied to, so one ``--seed`` flag
        reproduces both batch sampling and dynamics.
    horizon_s:
        Length of the generated schedule; no events occur after it.
    mttf_s:
        Per-node mean time to failure in seconds (exponential inter-arrival
        model, aggregated across alive nodes).  ``None`` disables failures.
    max_failures:
        Upper bound on generated node failures.
    straggler_frac:
        Fraction of GPUs that are persistent stragglers (present from t=0).
    straggler_slowdown:
        Mean speed factor of straggler GPUs (e.g. 0.7 = 30% slower).
    straggler_jitter:
        Standard deviation of the straggler speed factor.
    nic_degrade_frac:
        Fraction of NICs that degrade at a random onset time in the horizon.
    nic_degrade_factor:
        Bandwidth factor of a degraded NIC.
    """

    seed: int | None = None
    horizon_s: float = 3600.0
    mttf_s: float | None = None
    max_failures: int = 2
    straggler_frac: float = 0.0
    straggler_slowdown: float = 0.7
    straggler_jitter: float = 0.1
    nic_degrade_frac: float = 0.0
    nic_degrade_factor: float = 0.5

    def __post_init__(self) -> None:
        check_positive("horizon_s", self.horizon_s)
        check_non_negative("max_failures", self.max_failures)
        if self.mttf_s is not None:
            check_positive("mttf_s", self.mttf_s)
        for name in ("straggler_frac", "nic_degrade_frac"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("straggler_slowdown", "nic_degrade_factor"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        check_non_negative("straggler_jitter", self.straggler_jitter)

    @property
    def is_null(self) -> bool:
        """True when the configuration generates no events at all."""
        return (
            self.mttf_s is None
            and self.straggler_frac == 0.0
            and self.nic_degrade_frac == 0.0
        )

    def replace(self, **overrides: Any) -> "PerturbationConfig":
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


# Speed factors are clipped away from zero so a straggler never becomes an
# accidental failure (failures are modelled explicitly).
_MIN_SPEED_FACTOR = 0.05


class PerturbationModel:
    """Generates deterministic perturbation schedules from a config."""

    def __init__(self, config: PerturbationConfig | None = None, **overrides: Any):
        if config is None:
            config = PerturbationConfig(**overrides)
        elif overrides:
            config = config.replace(**overrides)
        self.config = config

    def generate(self, cluster: Cluster, seed: int | None = None) -> PerturbationSchedule:
        """Draw one schedule for ``cluster``.

        ``seed`` is the fallback when the config leaves its own seed unset
        (the session passes its batch-sampling seed here).  Event groups are
        drawn in a fixed order — stragglers, NIC degradations, failures — so
        the schedule is reproducible run to run.
        """
        config = self.config
        effective_seed = config.seed if config.seed is not None else (seed or 0)
        rng = np.random.default_rng(effective_seed)
        events: list[PerturbationEvent] = []
        events.extend(self._stragglers(cluster, rng))
        events.extend(self._nic_degradations(cluster, rng))
        events.extend(self._failures(cluster, rng))
        return PerturbationSchedule(events=tuple(events))

    # -- event groups ------------------------------------------------------------

    def _stragglers(self, cluster: Cluster, rng: np.random.Generator) -> list[GpuSlowdown]:
        config = self.config
        count = int(round(config.straggler_frac * cluster.world_size))
        if count == 0:
            return []
        ranks = rng.choice(cluster.world_size, size=count, replace=False)
        factors = rng.normal(config.straggler_slowdown, config.straggler_jitter, size=count)
        return [
            GpuSlowdown(
                time_s=0.0,
                rank=int(rank),
                factor=float(np.clip(factor, _MIN_SPEED_FACTOR, 1.0)),
            )
            for rank, factor in zip(ranks, factors)
        ]

    def _nic_degradations(
        self, cluster: Cluster, rng: np.random.Generator
    ) -> list[NicDegrade]:
        config = self.config
        num_nics = cluster.num_nodes * cluster.profile.nics_per_node
        count = int(round(config.nic_degrade_frac * num_nics))
        if count == 0:
            return []
        nic_ids = rng.choice(num_nics, size=count, replace=False)
        onsets = rng.uniform(0.0, config.horizon_s, size=count)
        return [
            NicDegrade(
                time_s=float(onset),
                nic_id=int(nic_id),
                factor=config.nic_degrade_factor,
            )
            for nic_id, onset in zip(nic_ids, onsets)
        ]

    def _failures(self, cluster: Cluster, rng: np.random.Generator) -> list[NodeFailure]:
        config = self.config
        if config.mttf_s is None or config.max_failures == 0:
            return []
        events: list[NodeFailure] = []
        alive = list(range(cluster.num_nodes))
        clock = 0.0
        while alive and len(events) < config.max_failures:
            # Aggregate failure rate of the surviving nodes.
            clock += float(rng.exponential(config.mttf_s / len(alive)))
            if clock > config.horizon_s:
                break
            node = alive.pop(int(rng.integers(len(alive))))
            events.append(NodeFailure(time_s=clock, node_id=node))
        return events


def as_model(
    perturbation: PerturbationModel | PerturbationConfig | Mapping[str, Any],
) -> PerturbationModel:
    """Normalise the ``perturbation=`` argument accepted by the public API."""
    if isinstance(perturbation, PerturbationModel):
        return perturbation
    if isinstance(perturbation, PerturbationConfig):
        return PerturbationModel(perturbation)
    if isinstance(perturbation, Mapping):
        return PerturbationModel(PerturbationConfig(**perturbation))
    raise TypeError(
        "perturbation must be a PerturbationModel, PerturbationConfig or mapping "
        f"of config fields, got {type(perturbation).__name__}"
    )
