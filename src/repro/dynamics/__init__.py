"""Fault and variability injection for the simulated cluster.

The dynamics subsystem perturbs the otherwise perfectly healthy, perfectly
uniform simulated cluster with the phenomena that dominate real large-scale
training: per-GPU stragglers, degraded NIC links, and node failures.

Three layers:

* :mod:`repro.dynamics.models` — a seeded, deterministic
  :class:`PerturbationModel` draws timed events from configurable MTTF /
  straggler distributions.
* :mod:`repro.dynamics.events` — the cluster-level event vocabulary
  (:class:`GpuSlowdown`, :class:`NicDegrade`, :class:`NodeFailure`) and the
  :class:`PerturbationSchedule` that compiles it down to engine-level
  :class:`~repro.sim.events.ResourceEvent` streams.
* :mod:`repro.dynamics.recovery` — recovery policies (checkpoint-restart,
  elastic re-partition) and the resilience run driver that walks a global
  training clock, injecting the schedule and applying the policy on failure.

End-to-end entry points: ``Session.run(strategy, perturbation=...)``,
``repro run/compare --mttf ... --recovery ...`` and the ``fig13_resilience``
experiment.
"""

from repro.dynamics.events import (
    GpuSlowdown,
    NicDegrade,
    NodeFailure,
    PerturbationSchedule,
)
from repro.dynamics.models import PerturbationConfig, PerturbationModel, as_model
from repro.dynamics.recovery import (
    CheckpointRestart,
    ElasticRepartition,
    RecoveryPolicy,
    run_resilient,
)

__all__ = [
    "GpuSlowdown",
    "NicDegrade",
    "NodeFailure",
    "PerturbationSchedule",
    "PerturbationConfig",
    "PerturbationModel",
    "as_model",
    "RecoveryPolicy",
    "CheckpointRestart",
    "ElasticRepartition",
    "run_resilient",
]
