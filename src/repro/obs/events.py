"""The versioned telemetry event vocabulary.

Every telemetry event is one JSON object (one line in a JSONL sink) with
three envelope fields —

* ``v`` — the schema version (:data:`EVENT_SCHEMA_VERSION`),
* ``type`` — one of the :data:`EVENT_TYPES` below,
* ``t`` — seconds since the emitting :class:`~repro.obs.core.Telemetry`
  hub was created (wall clock, *never* part of result identity),

— plus the type's required fields and any number of extra context fields.
The vocabulary is deliberately closed: producers may add fields freely but
may not invent types without registering them here, so consumers (the
``repro obs report`` aggregator, CI schema checks, external log pipelines)
can rely on a stable, enumerable stream instead of free-form log lines.

:func:`validate_event` is the single checker used by tests, the CI
telemetry smoke step and :func:`repro.obs.export.read_events`.
"""

from __future__ import annotations

from typing import Any, Mapping

EVENT_SCHEMA_VERSION = 1

# type -> required fields (beyond the v/type/t envelope).  Extra fields are
# always allowed; missing required fields are a schema violation.
EVENT_TYPES: dict[str, frozenset[str]] = {
    # generic instrumentation
    "span": frozenset({"name", "dur_s"}),
    "counter": frozenset({"name", "value"}),
    "gauge": frozenset({"name", "value"}),
    # sweep driver (repro.exec)
    "sweep_start": frozenset({"backend", "num_points"}),
    "sweep_finish": frozenset({"backend", "num_points", "executed", "dur_s"}),
    "point_start": frozenset({"index"}),
    "point_finish": frozenset({"index", "dur_s"}),
    "cache_hit": frozenset({"scope"}),
    "cache_miss": frozenset({"scope"}),
    # cluster backend (repro.exec.cluster)
    "round_start": frozenset({"round", "jobs", "payloads"}),
    "round_finish": frozenset(
        {"round", "completed_jobs", "failed_jobs", "dur_s"}
    ),
    "job_submit": frozenset({"job", "attempt"}),
    "job_complete": frozenset({"job"}),
    "job_fail": frozenset({"job", "reason"}),
    "job_resubmit": frozenset({"job", "attempt"}),
    "job_cancel": frozenset({"job", "reason"}),
    # batched simulation kernel (repro.sim.batch)
    "batch_simulate": frozenset({"lanes", "deduped", "structures"}),
    # serving (repro.serve) — vt is *virtual* time inside the run
    "request_enqueue": frozenset({"request", "vt"}),
    "request_dispatch": frozenset({"request", "vt", "batch_size", "served_by"}),
    "request_complete": frozenset({"request", "vt", "latency_s"}),
    "request_shed": frozenset({"request", "vt"}),
    # serving autoscaler (repro.serve.scale) — capacity changes in GPUs
    "scale_up": frozenset({"vt", "gpus"}),
    "scale_down": frozenset({"vt", "gpus"}),
    # dynamics (repro.dynamics) — failures and recovery actions
    "failure": frozenset({"node", "vt", "iteration"}),
    "recovery": frozenset({"policy", "downtime_s", "rollback", "drop_node"}),
}


def make_event(type: str, t: float, **fields: Any) -> dict[str, Any]:
    """Assemble one schema-valid event document (validated at build time)."""
    doc = {"v": EVENT_SCHEMA_VERSION, "type": type, "t": round(t, 6), **fields}
    validate_event(doc)
    return doc


def validate_event(doc: Mapping[str, Any]) -> None:
    """Raise ``ValueError`` unless ``doc`` is a schema-valid event."""
    version = doc.get("v")
    if version != EVENT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported event schema version {version!r} "
            f"(this build reads v{EVENT_SCHEMA_VERSION})"
        )
    event_type = doc.get("type")
    required = EVENT_TYPES.get(event_type)
    if required is None:
        raise ValueError(
            f"unknown event type {event_type!r}; known: "
            f"{', '.join(sorted(EVENT_TYPES))}"
        )
    if "t" not in doc:
        raise ValueError(f"event {event_type!r} is missing its timestamp 't'")
    missing = required - doc.keys()
    if missing:
        raise ValueError(
            f"event {event_type!r} is missing required field(s) "
            f"{', '.join(sorted(missing))}"
        )
