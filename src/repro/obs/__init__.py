"""``repro.obs`` — unified, dependency-free instrumentation.

One subsystem answers "where did this run spend its time" across every
layer of the stack:

* :mod:`repro.obs.core` — the :class:`Telemetry` hub: nestable ``span()``
  timers, monotonic counters and gauges.  Disabled by default via the
  :data:`TELEMETRY_OFF` no-op singleton, so instrumented hot paths pay
  near-zero overhead unless a run opts in.
* :mod:`repro.obs.sketch` — O(1)-memory streaming statistics: the P²
  quantile estimator, a latency sketch that keeps exact percentiles under a
  size threshold, and windowed rate counters.
* :mod:`repro.obs.events` — the versioned, schema-stable JSON-lines event
  vocabulary (sweep points, cache hits, cluster job lifecycle, serve
  request lifecycle, recovery actions).
* :mod:`repro.obs.export` — the JSONL file sink, Prometheus-style text
  rendering, and the ``repro obs report`` run summary.

Telemetry never enters result identity: every result is byte-identical per
seed with telemetry on or off (wall-clock observability lives in dedicated
``meta["timing"]`` subtrees that serialisation can drop).
"""

from repro.obs.core import (
    TELEMETRY_OFF,
    Telemetry,
    as_telemetry,
    current_telemetry,
    telemetry_scope,
)
from repro.obs.events import EVENT_SCHEMA_VERSION, validate_event
from repro.obs.export import JsonlSink, read_events, render_prometheus, summarize_events
from repro.obs.sketch import LatencySketch, P2Quantile, WindowedRate

__all__ = [
    "TELEMETRY_OFF",
    "Telemetry",
    "as_telemetry",
    "current_telemetry",
    "telemetry_scope",
    "EVENT_SCHEMA_VERSION",
    "validate_event",
    "JsonlSink",
    "read_events",
    "render_prometheus",
    "summarize_events",
    "LatencySketch",
    "P2Quantile",
    "WindowedRate",
]
