"""Telemetry export: the JSONL sink, Prometheus text, and run reports.

Three consumers of one event vocabulary (:mod:`repro.obs.events`):

* :class:`JsonlSink` — the file sink a :class:`~repro.obs.core.Telemetry`
  hub writes through: one compact JSON object per line, flushed on close.
* :func:`render_prometheus` — Prometheus-style text exposition of a hub's
  counters, gauges and span totals (for scraping or eyeballing).
* :func:`read_events` / :func:`summarize_events` / :func:`render_report` —
  the ``repro obs report PATH`` pipeline: parse and validate a JSONL event
  log, aggregate it (event counts, span time breakdown, cache/job/request
  tallies), and render the human summary tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.obs.events import validate_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.core import Telemetry


class JsonlSink:
    """Append schema-valid events to a JSON-lines file, one object per line."""

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self._file = self.path.open("w", encoding="utf-8")

    def emit(self, doc: Mapping[str, Any]) -> None:
        if self._file is None:
            raise ValueError(f"sink {self.path} is closed")
        self._file.write(json.dumps(doc, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class ListSink:
    """In-memory sink collecting events (tests and programmatic consumers)."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, doc: Mapping[str, Any]) -> None:
        self.events.append(dict(doc))


def read_events(path: "str | Path", validate: bool = True) -> list[dict[str, Any]]:
    """Parse a JSONL event log, optionally validating every line's schema.

    Raises ``ValueError`` naming the offending line for unparseable or (when
    ``validate``) schema-invalid entries — a telemetry file must be either
    trustworthy or loudly broken, never silently partial.
    """
    events: list[dict[str, Any]] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: unparseable event: {exc}") from exc
            if validate:
                try:
                    validate_event(doc)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from exc
            events.append(doc)
    return events


def render_prometheus(telemetry: "Telemetry") -> str:
    """Prometheus text exposition of a hub's aggregate state."""
    lines: list[str] = []
    if telemetry.counters:
        lines.append("# TYPE repro_counter_total counter")
        for name in sorted(telemetry.counters):
            lines.append(
                f'repro_counter_total{{name="{name}"}} {telemetry.counters[name]}'
            )
    if telemetry.gauges:
        lines.append("# TYPE repro_gauge gauge")
        for name in sorted(telemetry.gauges):
            lines.append(f'repro_gauge{{name="{name}"}} {telemetry.gauges[name]:g}')
    if telemetry.span_totals:
        lines.append("# TYPE repro_span_seconds_total counter")
        lines.append("# TYPE repro_span_count_total counter")
        for name in sorted(telemetry.span_totals):
            count, total = telemetry.span_totals[name]
            lines.append(
                f'repro_span_seconds_total{{name="{name}"}} {total:.6f}'
            )
            lines.append(f'repro_span_count_total{{name="{name}"}} {int(count)}')
    return "\n".join(lines) + ("\n" if lines else "")


def summarize_events(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate an event stream into the ``repro obs report`` summary.

    Returns a plain dict: per-type event counts, a span time breakdown
    (count, total seconds per span path), cache hit/miss tallies by scope,
    cluster job lifecycle totals, request latency aggregates, batched
    simulation totals, and the final values of any flushed counters/gauges.
    """
    type_counts: dict[str, int] = {}
    spans: dict[str, dict[str, float]] = {}
    cache: dict[str, dict[str, int]] = {}
    jobs = {
        "submitted": 0,
        "completed": 0,
        "failed": 0,
        "resubmitted": 0,
        "cancelled": 0,
    }
    requests = {"completed": 0, "latency_sum_s": 0.0, "latency_max_s": 0.0}
    batch = {"calls": 0, "lanes": 0, "deduped": 0, "structures": 0}
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    first_t: float | None = None
    last_t = 0.0

    for doc in events:
        event_type = doc["type"]
        type_counts[event_type] = type_counts.get(event_type, 0) + 1
        t = float(doc.get("t", 0.0))
        first_t = t if first_t is None else min(first_t, t)
        last_t = max(last_t, t)
        if event_type == "span":
            entry = spans.setdefault(doc["name"], {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += float(doc["dur_s"])
        elif event_type in ("cache_hit", "cache_miss"):
            scope = cache.setdefault(doc["scope"], {"hits": 0, "misses": 0})
            scope["hits" if event_type == "cache_hit" else "misses"] += 1
        elif event_type == "job_submit":
            jobs["submitted"] += 1
        elif event_type == "job_complete":
            jobs["completed"] += 1
        elif event_type == "job_fail":
            jobs["failed"] += 1
        elif event_type == "job_resubmit":
            jobs["resubmitted"] += 1
        elif event_type == "job_cancel":
            jobs["cancelled"] += 1
        elif event_type == "request_complete":
            requests["completed"] += 1
            latency = float(doc["latency_s"])
            requests["latency_sum_s"] += latency
            requests["latency_max_s"] = max(requests["latency_max_s"], latency)
        elif event_type == "batch_simulate":
            batch["calls"] += 1
            batch["lanes"] += int(doc["lanes"])
            batch["deduped"] += int(doc["deduped"])
            batch["structures"] += int(doc["structures"])
        elif event_type == "counter":
            counters[doc["name"]] = int(doc["value"])
        elif event_type == "gauge":
            gauges[doc["name"]] = float(doc["value"])

    return {
        "num_events": sum(type_counts.values()),
        "duration_s": round(max(0.0, last_t - (first_t or 0.0)), 6),
        "event_counts": dict(sorted(type_counts.items())),
        "spans": {name: spans[name] for name in sorted(spans)},
        "cache": {scope: cache[scope] for scope in sorted(cache)},
        "jobs": jobs,
        "requests": requests,
        "batch": batch,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
    }


def render_report(summary: Mapping[str, Any]) -> str:
    """Render :func:`summarize_events` output as the human report tables."""
    from repro.utils.tables import render_table

    parts: list[str] = [
        f"{summary['num_events']} events over {summary['duration_s']:.2f}s"
    ]
    if summary["event_counts"]:
        rows = [[name, count] for name, count in summary["event_counts"].items()]
        parts.append(render_table(["event", "count"], rows))
    if summary["spans"]:
        grand_total = sum(s["total_s"] for s in summary["spans"].values())
        rows = [
            [
                name,
                int(entry["count"]),
                f"{entry['total_s']:.3f}",
                (
                    f"{100.0 * entry['total_s'] / grand_total:.1f}%"
                    if grand_total
                    else "-"
                ),
            ]
            for name, entry in summary["spans"].items()
        ]
        parts.append(render_table(["span", "count", "total_s", "share"], rows))
    if summary["cache"]:
        rows = [
            [scope, entry["hits"], entry["misses"]]
            for scope, entry in summary["cache"].items()
        ]
        parts.append(render_table(["cache scope", "hits", "misses"], rows))
    if any(summary["jobs"].values()):
        rows = [[name, count] for name, count in summary["jobs"].items()]
        parts.append(render_table(["cluster jobs", "count"], rows))
    if summary.get("batch", {}).get("calls"):
        batch = summary["batch"]
        rows = [
            ["calls", batch["calls"]],
            ["lanes", batch["lanes"]],
            ["deduped", batch["deduped"]],
            ["structures", batch["structures"]],
        ]
        parts.append(render_table(["batch simulate", "count"], rows))
    if summary["requests"]["completed"]:
        completed = summary["requests"]["completed"]
        rows = [
            ["completed", completed],
            [
                "mean_latency_s",
                round(summary["requests"]["latency_sum_s"] / completed, 6),
            ],
            ["max_latency_s", round(summary["requests"]["latency_max_s"], 6)],
        ]
        parts.append(render_table(["requests", "value"], rows))
    if summary["counters"]:
        rows = [[name, value] for name, value in summary["counters"].items()]
        parts.append(render_table(["counter", "value"], rows))
    return "\n\n".join(parts)
