"""The telemetry hub: nestable span timers, counters and gauges.

:class:`Telemetry` is the one object producers talk to.  It aggregates —

* **spans**: ``with telemetry.span("simulate"):`` times a block; spans nest,
  and the recorded name is the ``/``-joined path of the active stack
  (``sweep/point/simulate``), so a time-breakdown table falls out of the
  aggregate totals.
* **counters**: monotonic ``counter("cache_hits")`` increments.
* **gauges**: last-write-wins ``gauge("queue_depth", 3)`` samples.

— and, when constructed with a sink (usually a
:class:`~repro.obs.export.JsonlSink`), emits every span and every
:meth:`event` as one schema-valid JSON line (:mod:`repro.obs.events`).

The default is **off**: :data:`TELEMETRY_OFF` is a no-op singleton whose
methods return immediately without reading the clock, so instrumented hot
paths cost one attribute lookup and one function call when telemetry is
disabled.  Producers accept ``telemetry=None`` and normalise through
:func:`as_telemetry`, which falls back to the ambient default installed by
:func:`telemetry_scope` (how the CLI's ``--telemetry PATH`` reaches
experiment sweeps without threading a parameter through every signature).

Telemetry is observational only: nothing recorded here may feed back into
simulation results, which stay byte-identical per seed with telemetry on or
off.
"""

from __future__ import annotations

import contextlib
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.events import make_event


class SpanHandle:
    """One live (or finished) span; ``elapsed_s`` is valid after exit.

    While the span is open, :attr:`elapsed_s` holds the running elapsed time
    of the *last* :meth:`checkpoint`; after ``__exit__`` it is the span's
    final duration.
    """

    __slots__ = ("_telemetry", "name", "path", "attrs", "elapsed_s", "_start")

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.path = name
        self.attrs = attrs
        self.elapsed_s = 0.0
        self._start = 0.0

    def __enter__(self) -> "SpanHandle":
        tele = self._telemetry
        tele._stack.append(self.name)
        self.path = "/".join(tele._stack)
        self._start = tele._clock()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        tele = self._telemetry
        self.elapsed_s = tele._clock() - self._start
        tele._stack.pop()
        total = tele.span_totals.get(self.path)
        if total is None:
            tele.span_totals[self.path] = [1, self.elapsed_s]
        else:
            total[0] += 1
            total[1] += self.elapsed_s
        if tele._sink is not None:
            tele.event(
                "span", name=self.path, dur_s=round(self.elapsed_s, 6), **self.attrs
            )

    def checkpoint(self) -> float:
        """Elapsed seconds so far (without closing the span)."""
        self.elapsed_s = self._telemetry._clock() - self._start
        return self.elapsed_s


class _NullSpan:
    """Reentrant no-op span; shared by every disabled ``span()`` call."""

    __slots__ = ()
    name = path = ""
    attrs: dict[str, Any] = {}
    elapsed_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def checkpoint(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class Telemetry:
    """An enabled instrumentation hub (see the module docstring).

    Parameters
    ----------
    sink:
        Optional event sink with ``emit(dict)`` (and optionally ``close()``),
        usually a :class:`~repro.obs.export.JsonlSink`.  Without one the hub
        still aggregates spans/counters/gauges in memory.
    clock:
        Monotonic clock, injectable for tests (default
        :func:`time.perf_counter`).
    """

    enabled = True

    def __init__(
        self,
        sink: Any = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._clock = clock
        self._t0 = clock()
        self._sink = sink
        self._stack: list[str] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        # span path -> [count, total seconds]
        self.span_totals: dict[str, list[float]] = {}

    # -- recording ---------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this hub was created (the event ``t`` origin)."""
        return self._clock() - self._t0

    def span(self, name: str, **attrs: Any) -> SpanHandle:
        """Context manager timing a block under ``name`` (nestable)."""
        return SpanHandle(self, name, attrs)

    def counter(self, name: str, inc: int = 1) -> None:
        """Increment the monotonic counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + inc

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of gauge ``name`` (last write wins)."""
        self.gauges[name] = value

    def event(self, type: str, **fields: Any) -> None:
        """Emit one structured event to the sink (no-op without a sink)."""
        if self._sink is None:
            return
        self._sink.emit(make_event(type, self.now(), **fields))

    def stopwatch(self) -> "Telemetry":
        """A hub whose spans always measure elapsed time.

        ``self`` when enabled; a private enabled hub when this is the no-op
        singleton — so producers that must populate wall-clock fields (e.g.
        ``meta["timing"]``) time through one code path regardless of whether
        telemetry was requested.
        """
        return self

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Flush final counter/gauge values as events and close the sink."""
        if self._sink is not None:
            for name in sorted(self.counters):
                self.event("counter", name=name, value=self.counters[name])
            for name in sorted(self.gauges):
                self.event("gauge", name=name, value=self.gauges[name])
            close = getattr(self._sink, "close", None)
            if close is not None:
                close()
            self._sink = None

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class NullTelemetry(Telemetry):
    """The disabled hub: every method is a near-zero-cost no-op.

    A singleton (:data:`TELEMETRY_OFF`) stands in wherever telemetry was not
    requested, so producers never branch on ``if telemetry is not None``.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(clock=lambda: 0.0)

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def counter(self, name: str, inc: int = 1) -> None:
        return None

    def gauge(self, name: str, value: float) -> None:
        return None

    def event(self, type: str, **fields: Any) -> None:
        return None

    def stopwatch(self) -> Telemetry:
        return Telemetry()

    def close(self) -> None:
        return None


TELEMETRY_OFF = NullTelemetry()

# The ambient default consulted by as_telemetry(None); installed for the
# duration of a CLI invocation by telemetry_scope().
_DEFAULT: Telemetry = TELEMETRY_OFF


def current_telemetry() -> Telemetry:
    """The ambient telemetry hub (:data:`TELEMETRY_OFF` unless installed)."""
    return _DEFAULT


@contextlib.contextmanager
def telemetry_scope(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the ambient default for the ``with`` body."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = telemetry
    try:
        yield telemetry
    finally:
        _DEFAULT = previous


def as_telemetry(telemetry: "Telemetry | str | Path | None") -> Telemetry:
    """Normalise the ``telemetry=`` argument accepted across the stack.

    ``None`` resolves to the ambient default (usually :data:`TELEMETRY_OFF`);
    a path opens a JSONL-sinked hub writing there; a hub passes through.
    """
    if telemetry is None:
        return _DEFAULT
    if isinstance(telemetry, Telemetry):
        return telemetry
    if isinstance(telemetry, (str, Path)):
        from repro.obs.export import JsonlSink

        return Telemetry(sink=JsonlSink(telemetry))
    raise TypeError(
        f"telemetry must be a Telemetry, a path, or None; "
        f"got {type(telemetry).__name__}"
    )
