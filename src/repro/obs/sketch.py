"""O(1)-memory streaming statistics: P² quantiles and windowed rates.

The serving stack's latency summaries must not store every sample — a
million-request run would hold a million floats just to report three
percentiles.  This module provides the bounded-state replacements:

* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtáč, 1985): five
  markers track one quantile of an unbounded stream with parabolic
  interpolation, no samples retained.
* :class:`LatencySketch` — the consumer-facing summary: mean/max/count plus
  a set of P² percentile estimators.  Below ``exact_threshold`` samples it
  also keeps the raw values and reports *exact* percentiles (so small runs
  — and every existing test — are bit-identical to the store-everything
  implementation); past the threshold the sample list is dropped and the
  estimators take over.
* :class:`WindowedRate` — a ring of fixed-width time buckets giving a
  trailing-window event rate in constant memory.

Everything is deterministic: feeding the same values in the same order
always produces the same estimates.
"""

from __future__ import annotations

import math
from typing import Sequence

# Sample count up to which LatencySketch keeps raw values and reports exact
# percentiles; beyond it, memory stays O(1) and P² estimates take over.
DEFAULT_EXACT_THRESHOLD = 4096


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (numpy convention) of ``values``.

    Rejects NaN inputs (a NaN silently corrupts ``sorted()`` ordering) and
    returns 0.0 for an empty sequence so zero-request summaries are defined.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if any(math.isnan(v) for v in values):
        raise ValueError("percentile is undefined for NaN values")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(pos)
    frac = pos - lo
    if frac == 0.0:
        # Also sidesteps inf * 0.0 -> nan when interpolating at an exact rank.
        return ordered[lo]
    return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Five markers (minimum, three interior, maximum) hold heights and
    positions; each observation shifts the markers toward their desired
    positions using piecewise-parabolic (falling back to linear)
    interpolation.  State is five floats per marker set — independent of the
    stream length.
    """

    __slots__ = ("q", "count", "_heights", "_pos", "_desired", "_rate")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rate = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, value: float) -> None:
        """Observe one sample."""
        if math.isnan(value):
            raise ValueError("cannot add NaN to a quantile estimator")
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(value)
            heights.sort()
            return

        pos = self._pos
        # Locate the cell the new value falls into, updating extremes.
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            while value >= heights[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._rate[i]

        # Nudge interior markers toward their desired positions.
        for i in (1, 2, 3):
            delta = self._desired[i] - pos[i]
            if (delta >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                delta <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        pos, h = self._pos, self._heights
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i])
            / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1])
            / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        pos, h = self._pos, self._heights
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """The current estimate (exact while five or fewer samples seen)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            return exact_percentile(self._heights, self.q * 100.0)
        return self._heights[2]


class LatencySketch:
    """Bounded-memory latency summary: mean, max and percentile estimates.

    Drop-in for the list-of-latencies + :func:`exact_percentile` pattern:
    exact (bit-identical) below ``exact_threshold`` samples, O(1) memory and
    P² estimates above it.
    """

    def __init__(
        self,
        quantiles: Sequence[float] = (50.0, 95.0, 99.0),
        exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
    ):
        self.exact_threshold = exact_threshold
        self.count = 0
        self.sum = 0.0
        self.max = 0.0
        self._estimators = {q: P2Quantile(q / 100.0) for q in quantiles}
        self._samples: "list[float] | None" = []

    @property
    def exact(self) -> bool:
        """Whether percentiles are still computed from retained samples."""
        return self._samples is not None

    def add(self, value: float) -> None:
        """Observe one latency sample."""
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value
        for estimator in self._estimators.values():
            estimator.add(value)
        if self._samples is not None:
            if self.count <= self.exact_threshold:
                self._samples.append(value)
            else:
                self._samples = None  # cross the threshold: go O(1)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (exact under the threshold, P² beyond)."""
        if self._samples is not None:
            return exact_percentile(self._samples, q)
        estimator = self._estimators.get(q)
        if estimator is None:
            raise KeyError(
                f"quantile {q} was not tracked; tracked: "
                f"{sorted(self._estimators)}"
            )
        return estimator.value()

    def summary(self) -> dict[str, float]:
        """The serve-metrics latency summary shape (seconds).

        Quantile estimates are monotonized in rank order: P² markers can
        momentarily invert on heavily correlated streams (e.g. a burst of
        large latencies followed by thousands of identical small ones), and
        a reported p99 below p50 would be nonsense.  Exact mode is already
        monotone, so this only touches approximate estimates.
        """
        floor = 0.0
        quantiles = {}
        for q in sorted(self._estimators):
            floor = max(floor, self.quantile(q))
            quantiles[f"p{q:g}_latency_s"] = floor
        return {
            "mean_latency_s": self.mean,
            **quantiles,
            "max_latency_s": self.max if self.count else 0.0,
        }


class WindowedRate:
    """Trailing-window event rate over a ring of fixed-width time buckets.

    ``add(t)`` drops an event into the bucket covering ``t``; ``rate(t)``
    sums the buckets still inside ``[t - window_s, t]`` and divides by the
    window.  Reusing a ring slot whose epoch has expired resets it, so
    memory is ``buckets`` integers forever.  Timestamps must not move
    backwards by more than the window (same discipline as the queue-depth
    tracker).
    """

    def __init__(self, window_s: float = 10.0, buckets: int = 10):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.window_s = window_s
        self._width = window_s / buckets
        self._counts = [0] * buckets
        self._epochs = [-1] * buckets
        self.total = 0

    def _slot(self, t: float) -> tuple[int, int]:
        epoch = int(t / self._width)
        return epoch, epoch % len(self._counts)

    def add(self, t: float, n: int = 1) -> None:
        """Record ``n`` events at time ``t`` (seconds)."""
        epoch, slot = self._slot(t)
        if self._epochs[slot] != epoch:
            self._epochs[slot] = epoch
            self._counts[slot] = 0
        self._counts[slot] += n
        self.total += n

    def rate(self, t: float) -> float:
        """Events per second over the window ending at ``t``."""
        epoch, _ = self._slot(t)
        oldest = epoch - len(self._counts) + 1
        in_window = sum(
            count
            for count, e in zip(self._counts, self._epochs)
            if oldest <= e <= epoch
        )
        # A stream younger than the window is rated over its actual age so
        # early rates are not diluted by empty future buckets.
        horizon = min(self.window_s, max(t, self._width))
        return in_window / horizon
