"""Analytical compute and communication cost models.

These translate the structural quantities (FLOPs, bytes) into time on a given
cluster.  The compute model applies device-specific efficiency factors (an
attention kernel does not hit peak FLOP/s); the communication model applies the
alpha-beta link models of :mod:`repro.cluster.bandwidth` to point-to-point and
collective transfers.
"""

from repro.costs.compute import ComputeCostModel
from repro.costs.comm import CommCostModel
from repro.costs.calibration import CALIBRATION_POINTS, CalibrationPoint

__all__ = [
    "ComputeCostModel",
    "CommCostModel",
    "CALIBRATION_POINTS",
    "CalibrationPoint",
]
