"""Published calibration points from the paper.

The paper reports a handful of absolute timings (Fig. 5, Fig. 12, §5.4) that we
use to sanity-check the analytical cost model.  We do not fit to these values;
they serve as "is the model in the right ballpark / does the shape hold"
checks in the test suite and in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CalibrationPoint:
    """A single published measurement.

    Attributes
    ----------
    name:
        Identifier used in tests and EXPERIMENTS.md.
    description:
        Where the number comes from in the paper.
    value_s:
        Published value in seconds.
    rtol:
        Relative tolerance used when checking the reproduction (these are
        order-of-magnitude sanity checks, not exact targets).
    """

    name: str
    description: str
    value_s: float
    rtol: float = 1.0

    def __post_init__(self) -> None:
        check_positive("value_s", self.value_s)
        check_positive("rtol", self.rtol)


CALIBRATION_POINTS: dict[str, CalibrationPoint] = {
    # Fig. 5: attention computation cost on an A800 approaches ~200-240 ms at
    # 64k tokens (7B-scale hidden size, full layer stack).
    "fig5_attention_64k_a800": CalibrationPoint(
        name="fig5_attention_64k_a800",
        description="Fig. 5: 64k-token causal attention on one A800, 7B model",
        value_s=0.220,
        rtol=0.6,
    ),
    # Fig. 12.a: TE CP inter-node KV transfer per ring round for a 64k sequence
    # split over 16 ranks (4k tokens per chunk) crossing a single NIC: 2.18 ms.
    "fig12_te_inter_node_round": CalibrationPoint(
        name="fig12_te_inter_node_round",
        description="Fig. 12.a: per-round inter-node KV send (4k-token chunk, one NIC)",
        value_s=2.18e-3,
        rtol=0.8,
    ),
    # Fig. 12.b: with routing the same transfer drops to 411 us (all 4 NICs).
    "fig12_zeppelin_inter_node_round": CalibrationPoint(
        name="fig12_zeppelin_inter_node_round",
        description="Fig. 12.b: per-round inter-node KV send with 3-step routing",
        value_s=411e-6,
        rtol=0.8,
    ),
    # Table 3: forward pass of the 7B model on 32 H200 GPUs, 128k context,
    # balanced distribution: 316-817 ms across ranks.
    "table3_forward_balanced_upper": CalibrationPoint(
        name="table3_forward_balanced_upper",
        description="Table 3: slowest-rank forward time, balanced distribution",
        value_s=0.817,
        rtol=1.0,
    ),
}


def get_calibration(name: str) -> CalibrationPoint:
    """Look up a calibration point by name."""
    if name not in CALIBRATION_POINTS:
        raise KeyError(
            f"unknown calibration point {name!r}; available: "
            f"{sorted(CALIBRATION_POINTS)}"
        )
    return CALIBRATION_POINTS[name]
