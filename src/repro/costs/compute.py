"""GPU compute-time model.

Compute time = FLOPs / (peak FLOP/s * kernel efficiency) + a fixed kernel
launch overhead.  Efficiency factors are per device and per kernel family;
attention kernels (FlashAttention-style) sustain a lower fraction of peak than
large GEMMs, and very small workloads are dominated by the launch overhead —
which is exactly why short sequences cannot hide communication (Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.flops import (
    BACKWARD_FLOP_MULTIPLIER,
    attention_flops,
    attention_flops_chunk,
    causal_chunk_flops,
    linear_flops_per_token,
)
from repro.model.spec import TransformerSpec
from repro.utils.validation import check_non_negative, check_positive

# Sustained fraction of peak FLOP/s by kernel family and device generation.
_DEFAULT_EFFICIENCY = {
    "A800": {"attention": 0.52, "linear": 0.62},
    "H800": {"attention": 0.42, "linear": 0.55},
    "H200": {"attention": 0.45, "linear": 0.58},
}

# Fixed launch/setup overhead per kernel invocation (seconds).
_KERNEL_OVERHEAD_S = 25e-6


@dataclass(frozen=True)
class ComputeCostModel:
    """Times transformer workloads on a specific device type.

    Parameters
    ----------
    peak_flops:
        Peak dense BF16 throughput of the device in FLOP/s.
    device_type:
        Device model name; selects efficiency factors.
    tensor_parallel:
        Tensor-parallel degree; FLOPs per rank are divided by this factor.
    efficiency_override:
        Optional ``{"attention": x, "linear": y}`` overriding the defaults.
    """

    peak_flops: float
    device_type: str = "A800"
    tensor_parallel: int = 1
    efficiency_override: dict | None = None
    kernel_overhead_s: float = _KERNEL_OVERHEAD_S
    _efficiency: dict = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        check_positive("peak_flops", self.peak_flops)
        check_positive("tensor_parallel", self.tensor_parallel)
        check_non_negative("kernel_overhead_s", self.kernel_overhead_s)
        eff = dict(_DEFAULT_EFFICIENCY.get(self.device_type, _DEFAULT_EFFICIENCY["A800"]))
        if self.efficiency_override:
            eff.update(self.efficiency_override)
        object.__setattr__(self, "_efficiency", eff)

    # -- primitive timings ---------------------------------------------------

    def _time(self, flops: float, kind: str) -> float:
        """Time to execute ``flops`` of kernel family ``kind`` on one rank."""
        check_non_negative("flops", flops)
        if flops == 0:
            return 0.0
        eff = self._efficiency[kind]
        sustained = self.peak_flops * eff
        return self.kernel_overhead_s + flops / self.tensor_parallel / sustained

    # -- attention -------------------------------------------------------------

    def attention_time(
        self,
        spec: TransformerSpec,
        seq_len: int,
        causal: bool = True,
        num_layers: int | None = None,
    ) -> float:
        """Forward attention time (seconds) for a full sequence on one rank."""
        return self._time(
            attention_flops(spec, seq_len, causal=causal, num_layers=num_layers),
            "attention",
        )

    def attention_chunk_time(
        self,
        spec: TransformerSpec,
        query_tokens: int,
        kv_tokens: int,
        num_layers: int | None = None,
    ) -> float:
        """Forward time of one ring-attention round: queries vs one KV chunk."""
        return self._time(
            attention_flops_chunk(spec, query_tokens, kv_tokens, num_layers=num_layers),
            "attention",
        )

    def attention_pairs_time(
        self,
        spec: TransformerSpec,
        num_pairs: float,
        num_layers: int | None = None,
    ) -> float:
        """Forward time for an exact number of (query, key) attention pairs.

        Used by the attention engine, which computes the precise number of
        causal-mask-visible pairs per ring round.
        """
        check_non_negative("num_pairs", num_pairs)
        if num_pairs == 0:
            return 0.0
        layers = spec.num_layers if num_layers is None else num_layers
        return self._time(4.0 * num_pairs * spec.hidden_size * layers, "attention")

    def causal_chunk_time(
        self,
        spec: TransformerSpec,
        chunk_start: int,
        chunk_len: int,
        num_layers: int | None = None,
    ) -> float:
        """Forward time of a causal chunk starting at offset ``chunk_start``."""
        return self._time(
            causal_chunk_flops(spec, chunk_start, chunk_len, num_layers=num_layers),
            "attention",
        )

    # -- linear modules --------------------------------------------------------

    def linear_time(
        self,
        spec: TransformerSpec,
        num_tokens: int,
        num_layers: int | None = None,
    ) -> float:
        """Forward time of the linear modules over ``num_tokens`` tokens."""
        check_non_negative("num_tokens", num_tokens)
        return self._time(
            linear_flops_per_token(spec, num_layers=num_layers) * num_tokens, "linear"
        )

    # -- whole-layer helpers -----------------------------------------------------

    def backward_multiplier(self) -> float:
        """Backward-to-forward time ratio (FLOP-proportional)."""
        return BACKWARD_FLOP_MULTIPLIER

    def sequence_forward_time(
        self, spec: TransformerSpec, seq_len: int, num_layers: int | None = None
    ) -> float:
        """Forward time of one whole sequence (attention + linear) on one rank."""
        return self.attention_time(spec, seq_len, num_layers=num_layers) + self.linear_time(
            spec, seq_len, num_layers=num_layers
        )

    def describe(self) -> str:
        """Human-readable summary of the model parameters."""
        eff = self._efficiency
        return (
            f"{self.device_type}: peak {self.peak_flops / 1e12:.0f} TFLOP/s, "
            f"attention eff {eff['attention']:.2f}, linear eff {eff['linear']:.2f}, "
            f"TP={self.tensor_parallel}"
        )
