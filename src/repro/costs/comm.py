"""Communication cost model: point-to-point transfers and collectives.

Builds on the per-link alpha-beta models of the cluster profile to time the
communication primitives the strategies use:

* ``send_recv`` — one ring-attention round hop (KV activations of a chunk),
* ``allgather`` — LLaMA CP's KV all-gather across a group,
* ``all_to_all`` — the remapping layer's alltoallv and Ulysses-style exchanges,
* ``allreduce`` — gradient reduction (shared by all strategies, usually hidden
  behind backward compute and therefore excluded from iteration-time deltas).

Collective times use standard ring-algorithm volume formulas; when a group
spans several nodes the inter-node hop (possibly aggregated over the node's
NICs) dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.topology import Cluster
from repro.model.memory import hidden_bytes_per_token, kv_bytes_per_token
from repro.model.spec import TransformerSpec
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CommCostModel:
    """Times communication primitives on a specific cluster."""

    cluster: Cluster

    # -- byte helpers ------------------------------------------------------------

    def kv_chunk_bytes(self, spec: TransformerSpec, num_tokens: int) -> float:
        """Bytes of the per-layer KV activations for ``num_tokens`` tokens."""
        check_non_negative("num_tokens", num_tokens)
        return kv_bytes_per_token(spec) * num_tokens

    def hidden_bytes(self, spec: TransformerSpec, num_tokens: int) -> float:
        """Bytes of one hidden-state tensor for ``num_tokens`` tokens."""
        check_non_negative("num_tokens", num_tokens)
        return hidden_bytes_per_token(spec) * num_tokens

    # -- point to point ------------------------------------------------------------

    def p2p_time(self, src_rank: int, dst_rank: int, nbytes: float) -> float:
        """Time of a point-to-point transfer between two ranks.

        Intra-node transfers use the NVSwitch link; inter-node transfers use a
        single NIC (the static GPU-NIC affinity the routing layer relaxes).
        """
        check_non_negative("nbytes", nbytes)
        link = self.cluster.link_between(src_rank, dst_rank)
        if link is None:
            return 0.0
        return link.transfer_time(nbytes)

    def intra_node_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` over the intra-node (NVSwitch) link."""
        check_non_negative("nbytes", nbytes)
        return self.cluster.profile.intra_node.transfer_time(nbytes)

    def inter_node_time(self, nbytes: float, nics: int = 1) -> float:
        """Time to move ``nbytes`` across nodes using ``nics`` NICs in parallel."""
        check_non_negative("nbytes", nbytes)
        check_positive("nics", nics)
        nics = min(nics, self.cluster.profile.nics_per_node)
        return self.cluster.profile.nic.scaled(nics).transfer_time(nbytes)

    # -- collectives --------------------------------------------------------------

    def _group_spans_nodes(self, ranks: tuple[int, ...]) -> bool:
        nodes = {self.cluster.gpu(r).node_id for r in ranks}
        return len(nodes) > 1

    def allgather_time(
        self,
        ranks: tuple[int, ...],
        bytes_per_rank: float,
        use_all_nics: bool = True,
        nics: int | None = None,
    ) -> float:
        """Ring all-gather of ``bytes_per_rank`` contributed by each rank.

        Each rank sends/receives ``(g-1)/g`` of the total volume.  For groups
        spanning nodes, the bottleneck hop is inter-node.  ``nics`` sets how
        many NICs the node-boundary traffic is striped over; the default
        (``use_all_nics=True``) uses all of the node's NICs, which models a
        fully optimised hierarchical collective, while ``nics=2`` models a
        standard NCCL ring whose path crosses each node boundary twice.
        """
        check_non_negative("bytes_per_rank", bytes_per_rank)
        g = len(ranks)
        if g <= 1 or bytes_per_rank == 0:
            return 0.0
        total = bytes_per_rank * g
        volume = total * (g - 1) / g
        if self._group_spans_nodes(ranks):
            if nics is None:
                nics = self.cluster.profile.nics_per_node if use_all_nics else 1
            # Volume crossing the node boundary: each node must receive every
            # other node's share.
            nodes = {self.cluster.gpu(r).node_id for r in ranks}
            n = len(nodes)
            cross = total * (n - 1) / n
            return self.inter_node_time(cross, nics=nics) + self.intra_node_time(
                volume - cross
            )
        return self.intra_node_time(volume)

    def reduce_scatter_time(
        self,
        ranks: tuple[int, ...],
        bytes_per_rank: float,
        use_all_nics: bool = True,
        nics: int | None = None,
    ) -> float:
        """Ring reduce-scatter; same volume profile as all-gather."""
        return self.allgather_time(
            ranks, bytes_per_rank, use_all_nics=use_all_nics, nics=nics
        )

    def allreduce_time(
        self, ranks: tuple[int, ...], nbytes: float, use_all_nics: bool = True
    ) -> float:
        """Ring all-reduce of ``nbytes`` (reduce-scatter + all-gather)."""
        check_non_negative("nbytes", nbytes)
        g = len(ranks)
        if g <= 1 or nbytes == 0:
            return 0.0
        per_rank = nbytes / g
        return 2.0 * self.allgather_time(ranks, per_rank, use_all_nics=use_all_nics)

    def all_to_all_time(
        self,
        ranks: tuple[int, ...],
        send_matrix: list[list[float]] | None = None,
        uniform_bytes: float | None = None,
        use_all_nics: bool = True,
    ) -> float:
        """Time of an all-to-all(-v) exchange within a rank group.

        Either ``send_matrix[i][j]`` gives the bytes rank ``ranks[i]`` sends to
        rank ``ranks[j]``, or ``uniform_bytes`` gives the per-pair volume.  The
        time is the maximum over ranks of the larger of its send and receive
        totals, split between intra-node and inter-node portions.
        """
        g = len(ranks)
        if g <= 1:
            return 0.0
        if send_matrix is None:
            if uniform_bytes is None:
                raise ValueError("provide either send_matrix or uniform_bytes")
            check_non_negative("uniform_bytes", uniform_bytes)
            send_matrix = [
                [0.0 if i == j else uniform_bytes for j in range(g)] for i in range(g)
            ]
        if len(send_matrix) != g or any(len(row) != g for row in send_matrix):
            raise ValueError("send_matrix must be square with one row per rank")

        worst = 0.0
        nics = self.cluster.profile.nics_per_node if use_all_nics else 1
        for i in range(g):
            send_intra = send_inter = 0.0
            recv_intra = recv_inter = 0.0
            for j in range(g):
                if i == j:
                    continue
                same = self.cluster.same_node(ranks[i], ranks[j])
                if same:
                    send_intra += send_matrix[i][j]
                    recv_intra += send_matrix[j][i]
                else:
                    send_inter += send_matrix[i][j]
                    recv_inter += send_matrix[j][i]
            t_send = self.intra_node_time(send_intra) + self.inter_node_time(
                send_inter, nics=nics
            )
            t_recv = self.intra_node_time(recv_intra) + self.inter_node_time(
                recv_inter, nics=nics
            )
            worst = max(worst, t_send, t_recv)
        return worst

    # -- ring attention helpers -----------------------------------------------------

    def ring_round_time(
        self,
        ring_ranks: tuple[int, ...],
        kv_bytes: float,
    ) -> float:
        """Time of one ring-attention send/receive round without routing.

        Every rank sends its current KV chunk to its successor; the round
        completes when the slowest hop (typically the node-boundary hop over a
        single NIC) completes.
        """
        check_non_negative("kv_bytes", kv_bytes)
        g = len(ring_ranks)
        if g <= 1 or kv_bytes == 0:
            return 0.0
        worst = 0.0
        for i in range(g):
            src = ring_ranks[i]
            dst = ring_ranks[(i + 1) % g]
            worst = max(worst, self.p2p_time(src, dst, kv_bytes))
        return worst
