"""Structured run results: frozen dataclasses with stable dict/JSON forms.

:class:`RunResult` captures one strategy's measured throughput on one
configuration; :class:`CompareResult` groups several runs over identical
batches and normalises them against a baseline.  Both serialise with
``to_dict()``/``to_json()`` and are consumed uniformly by the CLI
(``repro compare --json``), the experiment modules and the examples,
replacing the loose ``speedup_table`` row dicts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Iterator, Mapping


def _frozen_mapping(value: Mapping[str, Any]) -> Mapping[str, Any]:
    if isinstance(value, MappingProxyType):
        return value
    return MappingProxyType(dict(value))


def _deep_frozen(value: Any) -> Any:
    """Recursively freeze mappings and sequences (for nested result fields)."""
    if isinstance(value, Mapping):
        return MappingProxyType({k: _deep_frozen(v) for k, v in value.items()})
    if isinstance(value, (list, tuple)):
        return tuple(_deep_frozen(v) for v in value)
    return value


def _thawed(value: Any) -> Any:
    """Recursively convert frozen mappings/tuples back to JSON-safe forms."""
    if isinstance(value, Mapping):
        return {k: _thawed(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_thawed(v) for v in value]
    return value


@dataclass(frozen=True)
class RunResult:
    """Measured throughput of one strategy on one configuration.

    Attributes
    ----------
    strategy:
        Registry key the strategy was built from (e.g. ``"zeppelin"``).
    label:
        Human-readable strategy name (e.g. ``"Zeppelin"`` or
        ``"Zeppelin (no routing)"``).
    tokens_per_second:
        Average training throughput over the measured batches.
    iteration_time_s:
        Mean simulated iteration time.
    total_tokens:
        Tokens processed across all measured batches.
    num_batches:
        Number of batches averaged over.
    config:
        The session configuration the run was measured under, as a mapping.
    """

    strategy: str
    label: str
    tokens_per_second: float
    iteration_time_s: float
    total_tokens: int
    num_batches: int
    config: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _frozen_mapping(self.config))

    def speedup_over(self, baseline: "RunResult") -> float:
        """Throughput ratio against a baseline run."""
        if baseline.tokens_per_second == 0:
            raise ZeroDivisionError("baseline throughput is zero")
        return self.tokens_per_second / baseline.tokens_per_second

    def to_dict(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "label": self.label,
            "tokens_per_second": self.tokens_per_second,
            "iteration_time_s": self.iteration_time_s,
            "total_tokens": self.total_tokens,
            "num_batches": self.num_batches,
            "config": dict(self.config),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


@dataclass(frozen=True)
class ResilienceResult:
    """Outcome of one strategy trained under faults with a recovery policy.

    Produced by ``Session.run(strategy, perturbation=...)``.  Exposes
    ``tokens_per_second`` (= goodput) so it slots into :class:`CompareResult`
    exactly like a :class:`RunResult`: resilience comparisons and speedup
    tables work unchanged.

    Attributes
    ----------
    strategy / label:
        Registry key and display name of the strategy.
    recovery:
        Registry key of the recovery policy applied on failures.
    goodput_tokens_per_second:
        Useful tokens (surviving roll-backs) per wall-clock second.
    healthy_tokens_per_second:
        The same strategy's throughput on the unperturbed cluster.
    wall_time_s:
        Total simulated wall-clock time of the run.
    time_lost_s:
        Time spent on lost partial iterations, recovery downtime and
        recomputed work.
    restart_count:
        Recovery invocations (restarts or elastic replans).
    num_failures:
        Node failures that struck during the run.
    completed_iterations / num_iterations:
        Iterations whose work survived vs. the requested run length.
    final_num_nodes:
        Nodes alive at the end (shrinks under elastic recovery).
    total_tokens:
        Useful tokens accumulated over the run.
    config:
        The session configuration, as a mapping.
    perturbation:
        The perturbation configuration the schedule was drawn from.
    """

    strategy: str
    label: str
    recovery: str
    goodput_tokens_per_second: float
    healthy_tokens_per_second: float
    wall_time_s: float  # repro: allow(S001) virtual seconds, deterministic per seed
    time_lost_s: float
    restart_count: int
    num_failures: int
    completed_iterations: int
    num_iterations: int
    final_num_nodes: int
    total_tokens: int
    config: Mapping[str, Any] = field(default_factory=dict)
    perturbation: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _frozen_mapping(self.config))
        object.__setattr__(self, "perturbation", _frozen_mapping(self.perturbation))

    @property
    def tokens_per_second(self) -> float:
        """Goodput, aliased so comparison machinery treats this like a run."""
        return self.goodput_tokens_per_second

    @property
    def goodput_fraction(self) -> float:
        """Goodput as a fraction of the healthy-cluster throughput."""
        if self.healthy_tokens_per_second == 0:
            return 0.0
        return self.goodput_tokens_per_second / self.healthy_tokens_per_second

    def speedup_over(self, baseline: "RunResult | ResilienceResult") -> float:
        """Goodput ratio against a baseline result."""
        if baseline.tokens_per_second == 0:
            raise ZeroDivisionError("baseline throughput is zero")
        return self.tokens_per_second / baseline.tokens_per_second

    def to_dict(self) -> dict[str, Any]:
        return {
            "strategy": self.strategy,
            "label": self.label,
            "recovery": self.recovery,
            "goodput_tokens_per_second": self.goodput_tokens_per_second,
            "healthy_tokens_per_second": self.healthy_tokens_per_second,
            "goodput_fraction": self.goodput_fraction,
            "wall_time_s": self.wall_time_s,  # repro: allow(S001) virtual time
            "time_lost_s": self.time_lost_s,
            "restart_count": self.restart_count,
            "num_failures": self.num_failures,
            "completed_iterations": self.completed_iterations,
            "num_iterations": self.num_iterations,
            "final_num_nodes": self.final_num_nodes,
            "total_tokens": self.total_tokens,
            "config": dict(self.config),
            "perturbation": dict(self.perturbation),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


@dataclass(frozen=True)
class ServeResult:
    """Metrics of one serving run (:mod:`repro.serve`).

    Produced by :meth:`Session.serve` / ``repro serve``.  All timestamps are
    *virtual* seconds of the serving clock; nothing here depends on
    wall-clock time, so results are byte-identical across runs of the same
    configuration and seed.

    Attributes
    ----------
    arrival / admission:
        Registry names of the arrival process and admission policy.
    concurrency / max_batch:
        Serving limits: simultaneous executions and requests per batch.
    seed:
        The session seed that drove arrivals and mix draws.
    duration_s / makespan_s:
        The arrival window and the total virtual time until the queue
        drained (``makespan_s >= duration_s``).
    num_requests / completed:
        Requests that arrived vs. completed (they differ only by shed
        requests — everything admitted completes when the queue drains).
    simulations:
        Fresh plan simulations executed; batching and caching push this far
        below ``num_requests`` for repetitive mixes.
    batched_requests / cache_hits / cache_hit_rate:
        Requests that rode another request's execution, requests answered
        from the in-run result cache, and the cached fraction of completions.
    offered_rps / throughput_rps / goodput_rps:
        Arrival rate over the duration, completions per virtual second of
        the makespan, and SLO-meeting completions per second (with no
        ``slo_s`` goodput equals throughput).
    slo_s:
        Latency objective a request must meet to count as goodput, if any.
    mean/p50/p95/p99/max_latency_s:
        Request latency (completion minus arrival) statistics.
    mean_queue_depth / max_queue_depth / queue_depth_timeline:
        Time-weighted mean depth, peak depth, and the ``(time, depth)``
        change points of the queue over the run.
    shed_count:
        Requests rejected by the admission policy (never queued or executed).
    scale_policy / capacity_timeline / scale_up_count / scale_down_count:
        Autoscaling record: the policy's registry name (``None`` for a fixed
        cluster), the ``(time, gpus)`` capacity change points starting at the
        initial capacity, and how many grow/shrink steps were taken.
    config:
        The serving session's configuration, as a mapping.
    mix:
        The request mix, one mapping per cell (strategy, weight, priority,
        overrides).
    """

    arrival: str
    admission: str
    concurrency: int
    max_batch: int
    seed: int
    duration_s: float
    makespan_s: float
    num_requests: int
    completed: int
    simulations: int
    batched_requests: int
    cache_hits: int
    cache_hit_rate: float
    offered_rps: float
    throughput_rps: float
    goodput_rps: float
    slo_s: float | None
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    mean_queue_depth: float
    max_queue_depth: int
    queue_depth_timeline: tuple[tuple[float, int], ...] = ()
    shed_count: int = 0
    scale_policy: str | None = None
    capacity_timeline: tuple[tuple[float, int], ...] = ()
    scale_up_count: int = 0
    scale_down_count: int = 0
    config: Mapping[str, Any] = field(default_factory=dict)
    mix: tuple[Mapping[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _frozen_mapping(self.config))
        object.__setattr__(
            self,
            "queue_depth_timeline",
            tuple((float(t), int(d)) for t, d in self.queue_depth_timeline),
        )
        object.__setattr__(
            self,
            "capacity_timeline",
            tuple((float(t), int(g)) for t, g in self.capacity_timeline),
        )
        object.__setattr__(
            self, "mix", tuple(_deep_frozen(cell) for cell in self.mix)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "arrival": self.arrival,
            "admission": self.admission,
            "concurrency": self.concurrency,
            "max_batch": self.max_batch,
            "seed": self.seed,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "num_requests": self.num_requests,
            "completed": self.completed,
            "simulations": self.simulations,
            "batched_requests": self.batched_requests,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "offered_rps": self.offered_rps,
            "throughput_rps": self.throughput_rps,
            "goodput_rps": self.goodput_rps,
            "slo_s": self.slo_s,
            "mean_latency_s": self.mean_latency_s,
            "p50_latency_s": self.p50_latency_s,
            "p95_latency_s": self.p95_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "max_latency_s": self.max_latency_s,
            "mean_queue_depth": self.mean_queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "queue_depth_timeline": [[t, d] for t, d in self.queue_depth_timeline],
            "shed_count": self.shed_count,
            "scale_policy": self.scale_policy,
            "capacity_timeline": [[t, g] for t, g in self.capacity_timeline],
            "scale_up_count": self.scale_up_count,
            "scale_down_count": self.scale_down_count,
            "config": dict(self.config),
            "mix": [_thawed(cell) for cell in self.mix],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def result_from_dict(
    data: Mapping[str, Any],
) -> "RunResult | ResilienceResult | ServeResult":
    """Rebuild a result from its ``to_dict()`` form.

    Used wherever results cross a serialisation boundary — the process sweep
    backend (``MappingProxyType`` configs do not pickle) and the on-disk
    result cache.  Reconstruction is lossless: derived fields emitted by
    ``to_dict()`` (``goodput_fraction``) are recomputed, not stored.
    """
    payload = dict(data)
    if "throughput_rps" in payload:
        return ServeResult(**payload)
    if "goodput_tokens_per_second" in payload:
        payload.pop("goodput_fraction", None)
        return ResilienceResult(**payload)
    return RunResult(**payload)


@dataclass(frozen=True)
class CompareResult:
    """Several strategies measured on identical batches, with a baseline.

    Attributes
    ----------
    runs:
        One :class:`RunResult` (or :class:`ResilienceResult`, for perturbed
        comparisons) per compared strategy, in comparison order.
    baseline:
        Registry key of the run speedups are normalised against (the paper
        normalises against TE CP, which comparisons list first).
    config:
        The shared session configuration.
    """

    runs: "tuple[RunResult | ResilienceResult, ...]"
    baseline: str = ""
    config: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("a comparison needs at least one run")
        object.__setattr__(self, "config", _frozen_mapping(self.config))
        baseline = self.baseline or self.runs[0].strategy
        object.__setattr__(self, "baseline", baseline)
        if not any(r.strategy == baseline for r in self.runs):
            raise ValueError(
                f"baseline {baseline!r} is not among the compared strategies: "
                f"{[r.strategy for r in self.runs]}"
            )

    # -- access -----------------------------------------------------------------

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    def get(self, strategy: str) -> RunResult:
        """The run for one strategy key (or display label)."""
        for run in self.runs:
            if run.strategy == strategy or run.label == strategy:
                return run
        raise KeyError(
            f"no run for strategy {strategy!r}; have {[r.strategy for r in self.runs]}"
        )

    @property
    def baseline_run(self) -> RunResult:
        return self.get(self.baseline)

    def speedup(self, strategy: str) -> float:
        """Throughput of ``strategy`` normalised to the baseline."""
        return self.get(strategy).speedup_over(self.baseline_run)

    # -- serialisation ----------------------------------------------------------

    def rows(self) -> list[dict[str, Any]]:
        """Flat comparison rows (label, tokens/s, speedup) for table output."""
        base = self.baseline_run
        return [
            {
                "strategy": run.label,
                "tokens_per_second": run.tokens_per_second,
                "speedup": run.speedup_over(base),
            }
            for run in self.runs
        ]

    def to_dict(self) -> dict[str, Any]:
        base = self.baseline_run
        return {
            "config": dict(self.config),
            "baseline": self.baseline,
            "runs": [
                {**run.to_dict(), "speedup": run.speedup_over(base)}
                for run in self.runs
            ],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
