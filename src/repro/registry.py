"""Decorator-based registries for strategies and experiments.

Strategies and experiments self-register at import time::

    from repro.registry import register_strategy

    @register_strategy("my_strategy", description="what it does")
    class MyStrategy(Strategy):
        ...

Built-in entries are *lazy*: the registry knows which module provides each
built-in name and imports it on first lookup, so ``available_strategies()``
and CLI argument parsing stay cheap.  Registering a new strategy or
experiment requires no change to :mod:`repro.training.runner` or
:mod:`repro.cli` — the CLI, :class:`repro.api.Session` and ``repro list``
all read from these registries.

Public helpers:

* :func:`register_strategy` / :func:`register_experiment` /
  :func:`register_recovery` / :func:`register_backend` /
  :func:`register_submitter` / :func:`register_arrival` /
  :func:`register_admission` / :func:`register_rule` — decorators.
* :func:`get_strategy` / :func:`get_experiment` / :func:`get_recovery` /
  :func:`get_backend` / :func:`get_submitter` / :func:`get_arrival` /
  :func:`get_admission` — name
  -> entry lookup (experiments also accept their module-basename aliases,
  e.g. ``fig09_scalability`` for ``fig9``).
* ``available_*`` — sorted names; ``*_entries`` — full metadata.
* ``unregister_*`` — removal (primarily for tests registering throwaway
  entries).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping


class RegistryError(Exception):
    """Base class for registry failures."""


class DuplicateEntryError(RegistryError, ValueError):
    """A name was registered twice."""


class UnknownEntryError(RegistryError, ValueError, KeyError):
    """A name was looked up that no entry (eager or lazy) provides.

    Subclasses both :class:`ValueError` and :class:`KeyError` so callers of
    the pre-registry APIs (``build_strategy`` raised ``ValueError``,
    ``get_model`` raises ``KeyError``) keep working unchanged.
    """

    def __str__(self) -> str:  # KeyError quotes its message; undo that.
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class RegistryEntry:
    """One registered strategy or experiment.

    Attributes
    ----------
    name:
        Registry key (lower-case short name, e.g. ``"te_cp"`` or ``"fig11"``).
    obj:
        The registered object: a :class:`~repro.core.strategy.Strategy`
        subclass for strategies, a zero-argument ``run()`` callable returning
        an :class:`~repro.experiments.common.ExperimentResult` for experiments.
    description:
        One-line human description shown by ``repro list``.
    module:
        Dotted module path the entry was registered from.
    metadata:
        Free-form extra metadata passed to the decorator.
    """

    name: str
    obj: Any
    description: str
    module: str
    metadata: Mapping[str, Any] = field(default_factory=dict)


def _first_doc_line(obj: Any) -> str:
    doc = getattr(obj, "__doc__", None) or ""
    for line in doc.splitlines():
        line = line.strip()
        if line:
            return line
    return ""


class Registry:
    """A named mapping from short names to :class:`RegistryEntry`.

    ``lazy_modules`` maps names to the dotted module that registers them when
    imported; lookups and listings resolve these hints on demand.
    """

    def __init__(self, kind: str, lazy_modules: Mapping[str, str] | None = None):
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}
        self._lazy_modules: dict[str, str] = dict(lazy_modules or {})

    # -- registration -----------------------------------------------------------

    def register(
        self,
        name: str,
        obj: Any,
        *,
        description: str | None = None,
        metadata: Mapping[str, Any] | None = None,
    ) -> RegistryEntry:
        """Register ``obj`` under ``name``; duplicate names raise.

        A collision with a lazily-known built-in counts as a duplicate, unless
        it is that built-in's providing module registering itself.
        """
        key = name.lower()
        provider = self._lazy_modules.get(key)
        registrant = getattr(obj, "__module__", "")
        if key in self._entries or (provider is not None and provider != registrant):
            existing = self._entries.get(key)
            owner = existing.module if existing is not None else provider
            raise DuplicateEntryError(
                f"{self.kind} {name!r} is already registered by {owner}"
            )
        entry = RegistryEntry(
            name=key,
            obj=obj,
            description=description if description is not None else _first_doc_line(obj),
            module=getattr(obj, "__module__", ""),
            metadata=dict(metadata or {}),
        )
        self._entries[key] = entry
        return entry

    def decorator(
        self, name: str, *, description: str | None = None, **metadata: Any
    ) -> Callable[[Any], Any]:
        """Decorator form of :meth:`register`; returns the object unchanged."""

        def _register(obj: Any) -> Any:
            self.register(name, obj, description=description, metadata=metadata)
            return obj

        return _register

    def unregister(self, name: str) -> None:
        """Remove an entry (and any lazy hint) by name."""
        key = name.lower()
        found = self._entries.pop(key, None) is not None
        found = self._lazy_modules.pop(key, None) is not None or found
        if not found:
            raise UnknownEntryError(f"unknown {self.kind} {name!r}; nothing to unregister")

    # -- lookup -----------------------------------------------------------------

    def get(self, name: str) -> RegistryEntry:
        """Look up an entry, importing its providing module if needed."""
        key = name.lower()
        if key not in self._entries and key in self._lazy_modules:
            importlib.import_module(self._lazy_modules[key])
        if key not in self._entries:
            available = ", ".join(self.names()) or "<none>"
            raise UnknownEntryError(
                f"unknown {self.kind} {name!r}; available: {available}"
            )
        return self._entries[key]

    def names(self) -> tuple[str, ...]:
        """Sorted names of every entry, registered or lazily known."""
        return tuple(sorted(set(self._entries) | set(self._lazy_modules)))

    def entries(self) -> tuple[RegistryEntry, ...]:
        """Every entry with metadata, resolving all lazy modules."""
        return tuple(self.get(name) for name in self.names())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._entries or name.lower() in self._lazy_modules

    def __len__(self) -> int:
        return len(self.names())


# Built-in strategy name -> providing module.  Imported on first lookup; each
# module's ``@register_strategy`` decorator performs the actual registration.
_BUILTIN_STRATEGY_MODULES = {
    "te_cp": "repro.baselines.te_cp",
    "llama_cp": "repro.baselines.llama_cp",
    "hybrid_dp": "repro.baselines.hybrid_dp",
    "packing": "repro.baselines.packing",
    "zeppelin": "repro.core.zeppelin",
}

# Built-in experiment name -> providing module (one per paper figure/table).
_BUILTIN_EXPERIMENT_MODULES = {
    "fig1": "repro.experiments.fig01_length_distributions",
    "fig3": "repro.experiments.fig03_attention_cost_breakdown",
    "fig5": "repro.experiments.fig05_zone_boundaries",
    "fig8": "repro.experiments.fig08_end_to_end",
    "fig9": "repro.experiments.fig09_scalability",
    "fig10": "repro.experiments.fig10_cluster_comparison",
    "fig11": "repro.experiments.fig11_ablation",
    "fig12": "repro.experiments.fig12_timeline",
    "fig13_resilience": "repro.experiments.fig13_resilience",
    "fig14_serving": "repro.experiments.fig14_serving",
    "table2": "repro.experiments.table2_dataset_distributions",
    "table3": "repro.experiments.table3_cost_distribution",
}

# Built-in recovery policy name -> providing module (repro.dynamics).
_BUILTIN_RECOVERY_MODULES = {
    "checkpoint_restart": "repro.dynamics.recovery",
    "elastic": "repro.dynamics.recovery",
}

# Built-in sweep execution backend name -> providing module (repro.exec).
_BUILTIN_BACKEND_MODULES = {
    "serial": "repro.exec.backends",
    "process": "repro.exec.backends",
    "cluster": "repro.exec.cluster.backend",
}

# Built-in batch-system submitter name -> providing module (repro.exec.cluster).
_BUILTIN_SUBMITTER_MODULES = {
    "slurm": "repro.exec.cluster.submitters",
    "sge": "repro.exec.cluster.submitters",
    "fake": "repro.exec.cluster.submitters",
    "pbs": "repro.exec.cluster.pbs",
}

# Built-in serving arrival process name -> providing module (repro.serve).
_BUILTIN_ARRIVAL_MODULES = {
    "poisson": "repro.serve.arrivals",
    "trace": "repro.serve.arrivals",
    "closed": "repro.serve.arrivals",
}

# Built-in serving admission policy name -> providing module (repro.serve).
_BUILTIN_ADMISSION_MODULES = {
    "fifo": "repro.serve.queue",
    "priority": "repro.serve.queue",
    "slo_aware": "repro.serve.queue",
}

# Built-in serving autoscale policy name -> providing module (repro.serve).
_BUILTIN_SCALE_MODULES = {
    "queue_depth": "repro.serve.scale",
}

# Built-in static-analysis rule id -> providing module (repro.analysis).
# Rule R001 checks this very table against the @register_rule sites, so the
# analyzer keeps itself honest too.
_BUILTIN_RULE_MODULES = {
    "d001": "repro.analysis.rules_determinism",
    "d002": "repro.analysis.rules_determinism",
    "d003": "repro.analysis.rules_determinism",
    "r001": "repro.analysis.rules_registry",
    "e001": "repro.analysis.rules_events",
    "s001": "repro.analysis.rules_results",
}

# Long-form aliases (the experiment module basenames) accepted anywhere an
# experiment name is, e.g. ``repro experiment fig09_scalability``.
_EXPERIMENT_ALIASES = {
    "fig01_length_distributions": "fig1",
    "fig03_attention_cost_breakdown": "fig3",
    "fig05_zone_boundaries": "fig5",
    "fig08_end_to_end": "fig8",
    "fig09_scalability": "fig9",
    "fig10_cluster_comparison": "fig10",
    "fig11_ablation": "fig11",
    "fig12_timeline": "fig12",
    "table2_dataset_distributions": "table2",
    "table3_cost_distribution": "table3",
}

STRATEGIES = Registry("strategy", _BUILTIN_STRATEGY_MODULES)
EXPERIMENTS = Registry("experiment", _BUILTIN_EXPERIMENT_MODULES)
RECOVERIES = Registry("recovery policy", _BUILTIN_RECOVERY_MODULES)
BACKENDS = Registry("execution backend", _BUILTIN_BACKEND_MODULES)
SUBMITTERS = Registry("batch submitter", _BUILTIN_SUBMITTER_MODULES)
ARRIVALS = Registry("arrival process", _BUILTIN_ARRIVAL_MODULES)
ADMISSIONS = Registry("admission policy", _BUILTIN_ADMISSION_MODULES)
SCALES = Registry("scale policy", _BUILTIN_SCALE_MODULES)
RULES = Registry("analysis rule", _BUILTIN_RULE_MODULES)


def register_strategy(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a :class:`Strategy` subclass by short name."""
    return STRATEGIES.decorator(name, description=description, **metadata)


def register_experiment(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Decorator registering an experiment ``run()`` callable by short name."""
    return EXPERIMENTS.decorator(name, description=description, **metadata)


def get_strategy(name: str) -> RegistryEntry:
    return STRATEGIES.get(name)


def resolve_experiment_name(name: str) -> str:
    """Canonical registry key for an experiment name or long-form alias."""
    return _EXPERIMENT_ALIASES.get(name.lower(), name)


def experiment_aliases() -> Mapping[str, str]:
    """Long-form alias -> canonical experiment name."""
    return dict(_EXPERIMENT_ALIASES)


def get_experiment(name: str) -> RegistryEntry:
    return EXPERIMENTS.get(resolve_experiment_name(name))


def available_strategies() -> tuple[str, ...]:
    return STRATEGIES.names()


def available_experiments() -> tuple[str, ...]:
    return EXPERIMENTS.names()


def strategy_entries() -> tuple[RegistryEntry, ...]:
    return STRATEGIES.entries()


def experiment_entries() -> tuple[RegistryEntry, ...]:
    return EXPERIMENTS.entries()


def register_recovery(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a recovery policy by short name."""
    return RECOVERIES.decorator(name, description=description, **metadata)


def get_recovery(name: str) -> RegistryEntry:
    return RECOVERIES.get(name)


def available_recoveries() -> tuple[str, ...]:
    return RECOVERIES.names()


def recovery_entries() -> tuple[RegistryEntry, ...]:
    return RECOVERIES.entries()


def register_backend(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a sweep execution backend by short name."""
    return BACKENDS.decorator(name, description=description, **metadata)


def get_backend(name: str) -> RegistryEntry:
    return BACKENDS.get(name)


def available_backends() -> tuple[str, ...]:
    return BACKENDS.names()


def backend_entries() -> tuple[RegistryEntry, ...]:
    return BACKENDS.entries()


def unregister_backend(name: str) -> None:
    BACKENDS.unregister(name)


def register_submitter(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a batch-system submitter by short name."""
    return SUBMITTERS.decorator(name, description=description, **metadata)


def get_submitter(name: str) -> RegistryEntry:
    return SUBMITTERS.get(name)


def available_submitters() -> tuple[str, ...]:
    return SUBMITTERS.names()


def submitter_entries() -> tuple[RegistryEntry, ...]:
    return SUBMITTERS.entries()


def unregister_submitter(name: str) -> None:
    SUBMITTERS.unregister(name)


def register_arrival(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a serving arrival process by short name."""
    return ARRIVALS.decorator(name, description=description, **metadata)


def get_arrival(name: str) -> RegistryEntry:
    return ARRIVALS.get(name)


def available_arrivals() -> tuple[str, ...]:
    return ARRIVALS.names()


def arrival_entries() -> tuple[RegistryEntry, ...]:
    return ARRIVALS.entries()


def unregister_arrival(name: str) -> None:
    ARRIVALS.unregister(name)


def register_admission(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a serving admission policy by short name."""
    return ADMISSIONS.decorator(name, description=description, **metadata)


def get_admission(name: str) -> RegistryEntry:
    return ADMISSIONS.get(name)


def available_admissions() -> tuple[str, ...]:
    return ADMISSIONS.names()


def admission_entries() -> tuple[RegistryEntry, ...]:
    return ADMISSIONS.entries()


def unregister_admission(name: str) -> None:
    ADMISSIONS.unregister(name)


def register_scale(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a serving autoscale policy by short name."""
    return SCALES.decorator(name, description=description, **metadata)


def get_scale(name: str) -> RegistryEntry:
    return SCALES.get(name)


def available_scales() -> tuple[str, ...]:
    return SCALES.names()


def scale_entries() -> tuple[RegistryEntry, ...]:
    return SCALES.entries()


def unregister_scale(name: str) -> None:
    SCALES.unregister(name)


def register_rule(
    name: str, *, description: str | None = None, **metadata: Any
) -> Callable[[Any], Any]:
    """Class decorator registering a static-analysis rule by id (e.g. d001)."""
    return RULES.decorator(name, description=description, **metadata)


def get_rule(name: str) -> RegistryEntry:
    return RULES.get(name)


def available_rules() -> tuple[str, ...]:
    return RULES.names()


def rule_entries() -> tuple[RegistryEntry, ...]:
    return RULES.entries()


def unregister_rule(name: str) -> None:
    RULES.unregister(name)


def unregister_strategy(name: str) -> None:
    STRATEGIES.unregister(name)


def unregister_experiment(name: str) -> None:
    EXPERIMENTS.unregister(name)


def unregister_recovery(name: str) -> None:
    RECOVERIES.unregister(name)


def iter_experiment_modules() -> Iterable[tuple[str, str]]:
    """(name, module) pairs of the built-in experiments, without importing."""
    return tuple(sorted(_BUILTIN_EXPERIMENT_MODULES.items()))
