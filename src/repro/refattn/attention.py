"""Monolithic multi-head attention references.

Shapes follow the ``(heads, seq, head_dim)`` convention throughout the
subpackage; batching over multiple sequences is handled by the varlen module.
All computation is float64 for use as a numerical ground truth.
"""

from __future__ import annotations

import numpy as np


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def _check_qkv(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> None:
    if q.ndim != 3 or k.ndim != 3 or v.ndim != 3:
        raise ValueError("q, k, v must have shape (heads, seq, head_dim)")
    if q.shape[0] != k.shape[0] or q.shape[0] != v.shape[0]:
        raise ValueError("q, k, v must agree on the number of heads")
    if k.shape[1] != v.shape[1]:
        raise ValueError("k and v must agree on sequence length")
    if q.shape[2] != k.shape[2]:
        raise ValueError("q and k must agree on head_dim")


def full_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: np.ndarray | None = None,
) -> np.ndarray:
    """Scaled dot-product attention with an optional boolean mask.

    Parameters
    ----------
    q, k, v:
        Arrays of shape ``(heads, seq_q, d)``, ``(heads, seq_k, d)``,
        ``(heads, seq_k, d_v)``.
    mask:
        Optional boolean array of shape ``(seq_q, seq_k)``; ``True`` marks
        *allowed* positions.  Rows with no allowed position produce zeros.

    Returns
    -------
    np.ndarray
        Attention output of shape ``(heads, seq_q, d_v)``.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    _check_qkv(q, k, v)
    d = q.shape[-1]
    scores = q @ k.transpose(0, 2, 1) / np.sqrt(d)
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (q.shape[1], k.shape[1]):
            raise ValueError(
                f"mask shape {mask.shape} does not match (seq_q, seq_k)="
                f"({q.shape[1]}, {k.shape[1]})"
            )
        scores = np.where(mask[None, :, :], scores, -np.inf)
    # Rows that mask out every key would produce NaNs; define their output as 0.
    all_masked = ~np.isfinite(scores).any(axis=-1, keepdims=True)
    scores = np.where(all_masked, 0.0, scores)
    probs = softmax(scores, axis=-1)
    probs = np.where(all_masked, 0.0, probs)
    return probs @ v


def causal_mask(seq_len: int, offset: int = 0) -> np.ndarray:
    """Boolean causal mask: query ``i`` may attend to keys ``j <= i + offset``."""
    i = np.arange(seq_len)[:, None]
    j = np.arange(seq_len)[None, :]
    return j <= i + offset


def causal_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Causal (lower-triangular) attention for a single sequence."""
    _check_qkv(np.asarray(q), np.asarray(k), np.asarray(v))
    if q.shape[1] != k.shape[1]:
        raise ValueError("causal attention requires seq_q == seq_k")
    return full_attention(q, k, v, mask=causal_mask(q.shape[1]))


def random_qkv(
    seq_len: int,
    heads: int = 2,
    head_dim: int = 8,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Convenience generator of random Q/K/V tensors for tests and examples."""
    rng = np.random.default_rng(seed)
    shape = (heads, seq_len, head_dim)
    q = rng.standard_normal(shape)
    k = rng.standard_normal(shape)
    v = rng.standard_normal(shape)
    return q, k, v
