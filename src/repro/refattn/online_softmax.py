"""Blockwise (online-softmax) attention.

Ring attention works because softmax attention can be accumulated one KV block
at a time while carrying a running maximum and denominator — the same trick
FlashAttention uses on-chip.  :class:`OnlineSoftmaxState` implements that
accumulator; :func:`blockwise_causal_attention` uses it to compute causal
attention over an arbitrary partition of the KV sequence and is the numerical
core reused by the ring-attention reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class OnlineSoftmaxState:
    """Running accumulator for softmax attention over successive KV blocks.

    For a fixed query block of shape ``(heads, q_len, d)`` the state keeps:

    * ``m`` — running per-row maximum of the attention scores,
    * ``denom`` — running softmax denominator rescaled to ``m``,
    * ``acc`` — running numerator (weighted value sum) rescaled to ``m``.

    After all KV blocks have been absorbed, ``output()`` returns exactly the
    softmax attention output over the union of the blocks.
    """

    heads: int
    q_len: int
    head_dim_v: int

    def __post_init__(self) -> None:
        if min(self.heads, self.q_len, self.head_dim_v) <= 0:
            raise ValueError("heads, q_len and head_dim_v must all be positive")
        self.m = np.full((self.heads, self.q_len, 1), -np.inf, dtype=np.float64)
        self.denom = np.zeros((self.heads, self.q_len, 1), dtype=np.float64)
        self.acc = np.zeros((self.heads, self.q_len, self.head_dim_v), dtype=np.float64)

    def update(
        self,
        q: np.ndarray,
        k_block: np.ndarray,
        v_block: np.ndarray,
        mask: np.ndarray | None = None,
    ) -> None:
        """Absorb one KV block.

        Parameters
        ----------
        q:
            Query block, shape ``(heads, q_len, d)`` — must be the same block
            on every call.
        k_block, v_block:
            KV block, shapes ``(heads, kv_len, d)`` and ``(heads, kv_len, d_v)``.
        mask:
            Optional boolean ``(q_len, kv_len)`` mask of allowed positions.
        """
        q = np.asarray(q, dtype=np.float64)
        k_block = np.asarray(k_block, dtype=np.float64)
        v_block = np.asarray(v_block, dtype=np.float64)
        if q.shape[:2] != (self.heads, self.q_len):
            raise ValueError("query block shape does not match the accumulator")
        if k_block.shape[1] == 0:
            return
        d = q.shape[-1]
        scores = q @ k_block.transpose(0, 2, 1) / np.sqrt(d)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.q_len, k_block.shape[1]):
                raise ValueError("mask shape must be (q_len, kv_len)")
            scores = np.where(mask[None, :, :], scores, -np.inf)

        block_max = np.max(scores, axis=-1, keepdims=True)
        # Rows fully masked in this block contribute nothing.
        block_max = np.where(np.isfinite(block_max), block_max, -np.inf)
        new_m = np.maximum(self.m, block_max)

        # Rescale previous accumulators to the new maximum.  Where new_m is
        # still -inf (no key seen yet anywhere), keep zeros.
        with np.errstate(invalid="ignore"):
            old_scale = np.where(
                np.isfinite(self.m), np.exp(self.m - new_m), 0.0
            )
            probs = np.where(
                np.isfinite(scores), np.exp(scores - new_m), 0.0
            )
        old_scale = np.where(np.isfinite(new_m), old_scale, 0.0)

        self.acc = self.acc * old_scale + probs @ v_block
        self.denom = self.denom * old_scale + np.sum(probs, axis=-1, keepdims=True)
        self.m = new_m

    def output(self) -> np.ndarray:
        """Final attention output; rows that saw no allowed key are zero."""
        safe_denom = np.where(self.denom > 0, self.denom, 1.0)
        return np.where(self.denom > 0, self.acc / safe_denom, 0.0)


def blockwise_causal_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    block_size: int,
    query_offset: int = 0,
) -> np.ndarray:
    """Causal attention computed one KV block at a time.

    Parameters
    ----------
    q:
        Query block of shape ``(heads, q_len, d)`` whose absolute positions
        start at ``query_offset`` within the full sequence.
    k, v:
        The full key/value tensors of shape ``(heads, seq, d)``.
    block_size:
        KV block size used for the online accumulation.
    query_offset:
        Absolute position of the first query token.

    Returns
    -------
    np.ndarray
        The causal attention output for the query block, identical (up to
        floating point round-off) to slicing the monolithic result.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    heads, q_len, _ = q.shape
    seq = k.shape[1]
    state = OnlineSoftmaxState(heads=heads, q_len=q_len, head_dim_v=v.shape[-1])
    q_pos = query_offset + np.arange(q_len)
    for start in range(0, seq, block_size):
        stop = min(start + block_size, seq)
        k_pos = np.arange(start, stop)
        mask = k_pos[None, :] <= q_pos[:, None]
        if not mask.any():
            continue
        state.update(q, k[:, start:stop], v[:, start:stop], mask=mask)
    return state.output()
