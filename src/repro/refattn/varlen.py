"""Packed variable-length attention.

The local queue of the attention engine and the input-balanced-pack baseline
both run several sequences through a single attention call.  The correct kernel
uses a block-diagonal causal mask so tokens never attend across sequence
boundaries; the naive packed kernel applies a single causal mask over the whole
buffer and therefore performs (wasted) cross-sequence attention.  Both are
implemented here so tests can quantify the difference and verify the
block-diagonal version matches per-sequence attention exactly.
"""

from __future__ import annotations

import numpy as np

from repro.refattn.attention import causal_attention, full_attention
from repro.utils.validation import check_positive


def block_diagonal_causal_mask(lengths: list[int] | tuple[int, ...]) -> np.ndarray:
    """Boolean mask allowing causal attention only within each packed sequence.

    ``lengths`` are the packed sequence lengths in order; the result has shape
    ``(sum(lengths), sum(lengths))``.
    """
    if not lengths:
        raise ValueError("lengths must be non-empty")
    for length in lengths:
        check_positive("length", length)
    total = sum(lengths)
    mask = np.zeros((total, total), dtype=bool)
    offset = 0
    for length in lengths:
        block = np.tril(np.ones((length, length), dtype=bool))
        mask[offset : offset + length, offset : offset + length] = block
        offset += length
    return mask


def varlen_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lengths: list[int] | tuple[int, ...],
    cross_sequence: bool = False,
) -> np.ndarray:
    """Attention over a packed buffer of variable-length sequences.

    Parameters
    ----------
    q, k, v:
        Packed tensors of shape ``(heads, sum(lengths), d)``.
    lengths:
        Lengths of the packed sequences, in packing order.
    cross_sequence:
        ``False`` (default) applies the correct block-diagonal causal mask;
        ``True`` applies a single causal mask over the whole buffer — the
        "redundant computation" variant of Fig. 3.a.
    """
    total = sum(lengths)
    if q.shape[1] != total:
        raise ValueError(
            f"packed length {q.shape[1]} does not match sum of lengths {total}"
        )
    if cross_sequence:
        i = np.arange(total)[:, None]
        j = np.arange(total)[None, :]
        mask = j <= i
    else:
        mask = block_diagonal_causal_mask(lengths)
    return full_attention(q, k, v, mask=mask)


def per_sequence_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    lengths: list[int] | tuple[int, ...],
) -> np.ndarray:
    """Run causal attention independently per packed sequence and re-pack.

    This is the ground truth the block-diagonal varlen kernel must match.
    """
    total = sum(lengths)
    if q.shape[1] != total:
        raise ValueError("packed length does not match sum of lengths")
    out = np.zeros((q.shape[0], total, v.shape[-1]), dtype=np.float64)
    offset = 0
    for length in lengths:
        sl = slice(offset, offset + length)
        out[:, sl] = causal_attention(q[:, sl], k[:, sl], v[:, sl])
        offset += length
    return out


def cross_sequence_flops_fraction(lengths: list[int] | tuple[int, ...]) -> float:
    """Fraction of packed-attention work wasted on cross-sequence positions.

    Computed from mask cardinalities: the naive packed kernel evaluates
    ``T(T+1)/2`` (query, key) pairs for a buffer of ``T`` tokens, while only
    ``sum(l_i (l_i + 1) / 2)`` pairs are useful.
    """
    if not lengths:
        return 0.0
    total = sum(lengths)
    naive = total * (total + 1) / 2.0
    useful = sum(n * (n + 1) / 2.0 for n in lengths)
    if naive == 0:
        return 0.0
    return 1.0 - useful / naive
