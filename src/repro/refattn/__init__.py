"""NumPy reference implementations of the attention computations Zeppelin schedules.

The scheduling layers (partitioner, attention engine, remapping) only move
tokens around; they must never change the attention output.  This subpackage
provides a small, exact reference stack used by the test suite to prove that:

* blockwise/online-softmax attention equals monolithic softmax attention,
* ring attention with the zigzag chunk assignment equals full causal attention,
* packed variable-length attention with a block-diagonal mask equals running
  each sequence separately.
"""

from repro.refattn.attention import causal_attention, full_attention, softmax
from repro.refattn.online_softmax import blockwise_causal_attention, OnlineSoftmaxState
from repro.refattn.ring import ring_attention, zigzag_chunk_slices
from repro.refattn.varlen import varlen_attention, block_diagonal_causal_mask

__all__ = [
    "causal_attention",
    "full_attention",
    "softmax",
    "blockwise_causal_attention",
    "OnlineSoftmaxState",
    "ring_attention",
    "zigzag_chunk_slices",
    "varlen_attention",
    "block_diagonal_causal_mask",
]
