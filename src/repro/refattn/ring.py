"""Ring attention with the causal-balanced zigzag chunk assignment (Fig. 6).

A sequence executed on a ring of ``G`` ranks is cut into ``2G`` equal-length
chunks; rank ``i`` owns chunk ``i`` and chunk ``2G - 1 - i``.  Pairing an early
chunk with a late chunk balances the causal-mask work across ranks.  Execution
proceeds in ``G`` rounds: in round ``r`` every rank computes attention of its
query chunks against the KV chunks originally owned by rank ``(i - r) mod G``
while forwarding its current KV payload around the ring.

:func:`ring_attention` reproduces that computation numerically (using the
online-softmax accumulator) and returns both the per-rank outputs and the exact
full-sequence output reassembled from them, so tests can assert equality with
:func:`repro.refattn.attention.causal_attention`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.refattn.online_softmax import OnlineSoftmaxState
from repro.utils.validation import check_positive


def zigzag_chunk_slices(seq_len: int, group_size: int) -> list[tuple[slice, slice]]:
    """Chunk ownership of each rank under the zigzag assignment.

    The sequence is split into ``2 * group_size`` near-equal contiguous chunks
    (earlier chunks take the remainder).  Rank ``i`` owns chunk ``i`` (its
    "head" chunk) and chunk ``2G - 1 - i`` (its "tail" chunk).

    Returns
    -------
    list[tuple[slice, slice]]
        For each rank, ``(head_slice, tail_slice)`` into the full sequence.
    """
    check_positive("seq_len", seq_len)
    check_positive("group_size", group_size)
    num_chunks = 2 * group_size
    base = seq_len // num_chunks
    extra = seq_len % num_chunks
    bounds = [0]
    for c in range(num_chunks):
        bounds.append(bounds[-1] + base + (1 if c < extra else 0))
    slices = [slice(bounds[c], bounds[c + 1]) for c in range(num_chunks)]
    return [(slices[i], slices[num_chunks - 1 - i]) for i in range(group_size)]


def zigzag_chunk_token_counts(seq_len: int, group_size: int) -> list[int]:
    """Number of tokens owned by each rank under the zigzag assignment."""
    return [
        (head.stop - head.start) + (tail.stop - tail.start)
        for head, tail in zigzag_chunk_slices(seq_len, group_size)
    ]


@dataclass(frozen=True)
class RingAttentionResult:
    """Output of the ring-attention reference.

    Attributes
    ----------
    per_rank_outputs:
        For each rank, ``(head_output, tail_output)`` arrays of shape
        ``(heads, chunk_len, d_v)``.
    combined:
        The full-sequence attention output reassembled from the per-rank
        chunks, shape ``(heads, seq_len, d_v)``.
    rounds:
        Number of communication rounds executed (``group_size``).
    """

    per_rank_outputs: tuple[tuple[np.ndarray, np.ndarray], ...]
    combined: np.ndarray
    rounds: int


def ring_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    group_size: int,
) -> RingAttentionResult:
    """Causal attention computed with zigzag ring attention over ``group_size`` ranks.

    Parameters
    ----------
    q, k, v:
        Full-sequence tensors of shape ``(heads, seq, d)`` / ``(heads, seq, d_v)``.
    group_size:
        Ring size ``G``; the sequence is split into ``2G`` chunks.

    Returns
    -------
    RingAttentionResult
        Per-rank chunk outputs plus the reassembled full-sequence output.
    """
    q = np.asarray(q, dtype=np.float64)
    k = np.asarray(k, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    if q.shape != k.shape or q.shape[:2] != v.shape[:2]:
        raise ValueError("q, k, v must agree on (heads, seq)")
    heads, seq_len, _ = q.shape
    check_positive("group_size", group_size)
    if seq_len < 2 * group_size:
        raise ValueError(
            f"sequence of {seq_len} tokens cannot be split into {2 * group_size} chunks"
        )

    ownership = zigzag_chunk_slices(seq_len, group_size)

    # Per-rank query blocks with their absolute positions.
    rank_queries = []
    rank_states = []
    for head_sl, tail_sl in ownership:
        positions = np.concatenate(
            [np.arange(head_sl.start, head_sl.stop), np.arange(tail_sl.start, tail_sl.stop)]
        )
        q_block = np.concatenate([q[:, head_sl], q[:, tail_sl]], axis=1)
        rank_queries.append((q_block, positions))
        rank_states.append(
            OnlineSoftmaxState(heads=heads, q_len=len(positions), head_dim_v=v.shape[-1])
        )

    # Each rank starts holding the KV of its own chunks; after each round the
    # payload moves to the next rank in the ring (rank i receives from i-1).
    payloads = []
    for head_sl, tail_sl in ownership:
        kv_positions = np.concatenate(
            [np.arange(head_sl.start, head_sl.stop), np.arange(tail_sl.start, tail_sl.stop)]
        )
        k_block = np.concatenate([k[:, head_sl], k[:, tail_sl]], axis=1)
        v_block = np.concatenate([v[:, head_sl], v[:, tail_sl]], axis=1)
        payloads.append((k_block, v_block, kv_positions))

    for _ in range(group_size):
        for rank in range(group_size):
            q_block, q_pos = rank_queries[rank]
            k_block, v_block, kv_pos = payloads[rank]
            mask = kv_pos[None, :] <= q_pos[:, None]
            if mask.any():
                rank_states[rank].update(q_block, k_block, v_block, mask=mask)
        # Rotate payloads: rank i's payload moves to rank i+1.
        payloads = [payloads[(rank - 1) % group_size] for rank in range(group_size)]

    per_rank = []
    combined = np.zeros((heads, seq_len, v.shape[-1]), dtype=np.float64)
    for rank, (head_sl, tail_sl) in enumerate(ownership):
        out = rank_states[rank].output()
        head_len = head_sl.stop - head_sl.start
        head_out = out[:, :head_len]
        tail_out = out[:, head_len:]
        per_rank.append((head_out, tail_out))
        combined[:, head_sl] = head_out
        combined[:, tail_sl] = tail_out

    return RingAttentionResult(
        per_rank_outputs=tuple(per_rank), combined=combined, rounds=group_size
    )


def ring_rank_flops(seq_len: int, group_size: int, hidden_size: int) -> list[float]:
    """Analytic per-rank attention FLOPs under the zigzag assignment.

    Used by tests to confirm the assignment balances causal work: the spread
    between the heaviest and lightest rank should be small compared to a naive
    contiguous split.
    """
    ownership = zigzag_chunk_slices(seq_len, group_size)
    flops = []
    for head_sl, tail_sl in ownership:
        pairs = 0.0
        for sl in (head_sl, tail_sl):
            for pos in range(sl.start, sl.stop):
                pairs += pos + 1
        flops.append(4.0 * pairs * hidden_size)
    return flops
