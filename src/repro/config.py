"""Sanctioned environment-variable access for the whole package.

Every process-environment read in ``repro`` goes through this module.  The
static analyzer (rule D003, :mod:`repro.analysis`) forbids ``os.environ`` /
``os.getenv`` everywhere else, so the complete set of environment knobs the
simulator responds to is enumerable by reading this one file:

``REPRO_CACHE_DIR``
    Root directory of the content-hash result cache
    (:class:`repro.exec.cache.ResultCache`).  Default ``.repro_cache``.

``REPRO_REMAP_SOLVER``
    Default solver for :class:`repro.core.remapping.RemappingLayer` when a
    strategy does not pin one explicitly: ``linprog``, ``greedy`` or ``auto``.
    The resolved value is folded into the cache salt
    (:func:`repro.exec.cache.cache_salt`), so flipping the knob can never
    surface a result simulated under the other solver.

Keeping the reads here — rather than scattered at use sites — is what makes
"byte-identical results per seed" auditable: anything else that could vary
between hosts has to pass through this chokepoint or through an explicit
function argument.
"""

from __future__ import annotations

import os

DEFAULT_CACHE_DIR = ".repro_cache"
DEFAULT_REMAP_SOLVER = "auto"

# Solvers RemappingLayer accepts; validated here so a bad environment value
# fails at configuration time with the knob's name, not deep inside a run.
REMAP_SOLVERS = ("linprog", "greedy", "auto")


def env_str(name: str, default: str | None = None) -> str | None:
    """One process-environment string, or ``default`` when unset/empty.

    Empty values are treated as unset so ``REPRO_CACHE_DIR= repro sweep ...``
    behaves like not exporting the variable at all.
    """
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    return value


def cache_dir() -> str:
    """Resolved result-cache root: ``$REPRO_CACHE_DIR`` or the default."""
    value = env_str("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    assert value is not None
    return value


def cache_dir_override() -> str | None:
    """``$REPRO_CACHE_DIR`` if explicitly set, else ``None``.

    The cluster backend uses this to decide whether worker jobfiles must
    carry an absolute cache path (shared network mount) or can rely on each
    worker's own working-directory default.
    """
    return env_str("REPRO_CACHE_DIR")


def remap_solver() -> str:
    """Default remapping solver: ``$REPRO_REMAP_SOLVER`` or ``auto``."""
    value = env_str("REPRO_REMAP_SOLVER", DEFAULT_REMAP_SOLVER)
    assert value is not None
    if value not in REMAP_SOLVERS:
        raise ValueError(
            f"REPRO_REMAP_SOLVER={value!r} is not one of {REMAP_SOLVERS}"
        )
    return value


def worker_environ() -> dict[str, str]:
    """Copy of the full environment for spawned worker processes.

    Local fake-batch workers inherit the parent environment (plus whatever
    the submitter layers on top, e.g. ``PYTHONPATH``); the copy keeps
    mutations from leaking back into this process.
    """
    return dict(os.environ)
