"""Sequence-length distributions for the paper's datasets.

Two families of distributions are provided:

* :data:`TABLE2_DISTRIBUTIONS` — the three evaluation datasets of Table 2
  (ArXiv, GitHub, ProLong-64k) with the exact per-bin proportions printed in
  the paper.
* :data:`FIG1_DISTRIBUTIONS` — the seven-dataset mixture of Fig. 1 (arxiv,
  github, fineweb, fineweb_edu, openwebmath, stackexchange, prolong64).  The
  paper plots these only graphically; the numbers here are read off the figure
  and are used for the Fig. 1 / Fig. 3 reproductions where only the qualitative
  shape (e.g. "StackExchange is dominated by <1k sequences") matters.

A :class:`LengthDistribution` is a histogram over length bins; sampling picks a
bin by its probability and then a length uniformly inside the bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class LengthBin:
    """A half-open sequence-length bin ``[lo, hi)`` with an occurrence probability."""

    lo: int
    hi: int
    probability: float

    def __post_init__(self) -> None:
        check_positive("lo", self.lo)
        if self.hi <= self.lo:
            raise ValueError(f"bin upper bound {self.hi} must exceed lower bound {self.lo}")
        if self.probability < 0:
            raise ValueError("bin probability must be >= 0")

    @property
    def label(self) -> str:
        """Human-readable label such as ``"1-2k"`` or ``"<1k"``."""
        if self.lo < 1024:
            return f"<{self.hi // 1024}k"
        return f"{self.lo // 1024}-{self.hi // 1024}k"

    @property
    def midpoint(self) -> int:
        return (self.lo + self.hi) // 2

    def contains(self, length: int) -> bool:
        return self.lo <= length < self.hi


@dataclass(frozen=True)
class LengthDistribution:
    """A named histogram over sequence-length bins."""

    name: str
    bins: tuple[LengthBin, ...]

    def __post_init__(self) -> None:
        if not self.bins:
            raise ValueError("a distribution needs at least one bin")
        total = sum(b.probability for b in self.bins)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(
                f"bin probabilities of {self.name!r} must sum to 1, got {total:.6f}"
            )

    # -- statistics ---------------------------------------------------------

    @property
    def mean_length(self) -> float:
        """Expected sequence length under the bin-midpoint approximation."""
        return sum(b.probability * b.midpoint for b in self.bins)

    @property
    def max_length(self) -> int:
        """Upper bound of the longest non-empty bin."""
        return max(b.hi for b in self.bins if b.probability > 0)

    def probability_of(self, length: int) -> float:
        """Probability mass of the bin containing ``length`` (0 if out of range)."""
        for b in self.bins:
            if b.contains(length):
                return b.probability
        return 0.0

    def bin_of(self, length: int) -> LengthBin | None:
        """Return the bin containing ``length``, or ``None``."""
        for b in self.bins:
            if b.contains(length):
                return b
        return None

    def long_tail_fraction(self, threshold: int) -> float:
        """Fraction of sequences at least ``threshold`` tokens long."""
        frac = 0.0
        for b in self.bins:
            if b.lo >= threshold:
                frac += b.probability
            elif b.hi > threshold:
                # partial bin: assume uniform within the bin
                frac += b.probability * (b.hi - threshold) / (b.hi - b.lo)
        return frac

    # -- sampling -----------------------------------------------------------

    def sample_lengths(self, count: int, rng: np.random.Generator) -> list[int]:
        """Draw ``count`` sequence lengths from the histogram."""
        if count <= 0:
            return []
        probs = np.array([b.probability for b in self.bins], dtype=float)
        probs = probs / probs.sum()
        bin_idx = rng.choice(len(self.bins), size=count, p=probs)
        lengths = []
        for idx in bin_idx:
            b = self.bins[int(idx)]
            lengths.append(int(rng.integers(b.lo, b.hi)))
        return lengths

    def histogram(self) -> dict[str, float]:
        """Return ``{bin label: probability}`` preserving bin order."""
        return {b.label: b.probability for b in self.bins}


def _dist(name: str, edges: list[int], probs: list[float]) -> LengthDistribution:
    """Build a distribution from bin edges (in tokens) and bin weights.

    Weights are normalised to probabilities: the paper's Table 2 rows do not
    all sum to exactly 1 (GitHub sums to 0.945), so the published proportions
    are treated as relative weights.
    """
    if len(probs) != len(edges) - 1:
        raise ValueError("need exactly one probability per bin")
    total = sum(probs)
    if total <= 0:
        raise ValueError("bin weights must have a positive sum")
    bins = tuple(
        LengthBin(lo=edges[i], hi=edges[i + 1], probability=probs[i] / total)
        for i in range(len(probs))
    )
    return LengthDistribution(name=name, bins=bins)


_K = 1024

# Bin edges used by Table 2: <1k, 1-2k, 2-4k, 4-8k, 8-16k, 16-32k, 32-64k,
# 64-128k, 128-256k.  The lower edge of the first bin is 64 tokens: the paper
# does not train on shorter fragments.
_TABLE2_EDGES = [64, _K, 2 * _K, 4 * _K, 8 * _K, 16 * _K, 32 * _K, 64 * _K, 128 * _K, 256 * _K]

TABLE2_DISTRIBUTIONS: dict[str, LengthDistribution] = {
    "arxiv": _dist(
        "arxiv",
        _TABLE2_EDGES,
        [0.032, 0.03, 0.08, 0.219, 0.338, 0.224, 0.077, 0.0, 0.0],
    ),
    "github": _dist(
        "github",
        _TABLE2_EDGES,
        [0.0, 0.34, 0.095, 0.104, 0.107, 0.102, 0.088, 0.064, 0.045],
    ),
    # Table 2 lists ProLong64k proportions that sum to 1 only approximately
    # (0.231 + 0.042 + 0.021 + 0.012 + 0.013 + 0.008 + 0.673 = 1.0); kept verbatim.
    "prolong64k": _dist(
        "prolong64k",
        _TABLE2_EDGES,
        [0.231, 0.042, 0.021, 0.012, 0.013, 0.008, 0.673, 0.0, 0.0],
    ),
}

# Fig. 1 mixture datasets (7 bins: <1k .. 32-64k).  Values are approximate
# shares read from the figure; they only feed the Fig. 1 / Fig. 3 shape plots.
_FIG1_EDGES = [64, _K, 2 * _K, 4 * _K, 8 * _K, 16 * _K, 32 * _K, 64 * _K]

FIG1_DISTRIBUTIONS: dict[str, LengthDistribution] = {
    "arxiv": _dist(
        "arxiv", _FIG1_EDGES, [0.032, 0.03, 0.08, 0.219, 0.338, 0.224, 0.077]
    ),
    "github": _dist(
        "github", _FIG1_EDGES, [0.0, 0.38, 0.11, 0.12, 0.12, 0.12, 0.15]
    ),
    "fineweb": _dist(
        "fineweb", _FIG1_EDGES, [0.62, 0.20, 0.10, 0.05, 0.02, 0.008, 0.002]
    ),
    "fineweb_edu": _dist(
        "fineweb_edu", _FIG1_EDGES, [0.58, 0.22, 0.11, 0.06, 0.02, 0.008, 0.002]
    ),
    "openwebmath": _dist(
        "openwebmath", _FIG1_EDGES, [0.45, 0.25, 0.16, 0.09, 0.035, 0.012, 0.003]
    ),
    "stackexchange": _dist(
        "stackexchange", _FIG1_EDGES, [0.78, 0.14, 0.055, 0.018, 0.005, 0.0015, 0.0005]
    ),
    "prolong64": _dist(
        "prolong64", _FIG1_EDGES, [0.231, 0.042, 0.021, 0.012, 0.013, 0.008, 0.673]
    ),
}


def available_distributions() -> list[str]:
    """Names of all registered distributions (Table 2 names take precedence)."""
    names = set(TABLE2_DISTRIBUTIONS) | set(FIG1_DISTRIBUTIONS)
    return sorted(names)


def get_distribution(name: str) -> LengthDistribution:
    """Look up a distribution by name.

    Table 2 distributions (used by the end-to-end evaluation) shadow the Fig. 1
    ones of the same name.
    """
    key = name.lower()
    if key in TABLE2_DISTRIBUTIONS:
        return TABLE2_DISTRIBUTIONS[key]
    if key in FIG1_DISTRIBUTIONS:
        return FIG1_DISTRIBUTIONS[key]
    raise KeyError(
        f"unknown distribution {name!r}; available: {available_distributions()}"
    )
