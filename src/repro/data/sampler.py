"""Batch construction: sample sequence lengths until a context budget is filled.

The paper's evaluation fixes a *total context length* per iteration (64k, 128k
or 256k tokens, i.e. 4k tokens per GPU) and samples sequence lengths
proportionally to the dataset distribution until the budget is filled (§5,
"batch sequence lengths sampled proportionally to dataset distributions").
:class:`BatchSampler` reproduces that protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.distributions import LengthDistribution
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class Sequence:
    """A single training sequence, identified by ``seq_id`` with ``length`` tokens."""

    seq_id: int
    length: int

    def __post_init__(self) -> None:
        check_positive("length", self.length)


@dataclass(frozen=True)
class Batch:
    """One global batch: the set of sequences processed in a training iteration."""

    sequences: tuple[Sequence, ...]
    dataset: str = "synthetic"

    def __post_init__(self) -> None:
        if not self.sequences:
            raise ValueError("a batch must contain at least one sequence")
        ids = [s.seq_id for s in self.sequences]
        if len(ids) != len(set(ids)):
            raise ValueError("sequence ids within a batch must be unique")

    @property
    def total_tokens(self) -> int:
        """Total number of tokens in the batch."""
        return sum(s.length for s in self.sequences)

    @property
    def num_sequences(self) -> int:
        return len(self.sequences)

    @property
    def lengths(self) -> tuple[int, ...]:
        """Sequence lengths in batch order."""
        return tuple(s.length for s in self.sequences)

    @property
    def max_length(self) -> int:
        return max(s.length for s in self.sequences)

    @property
    def min_length(self) -> int:
        return min(s.length for s in self.sequences)

    def sorted_by_length(self, descending: bool = True) -> tuple[Sequence, ...]:
        """Sequences sorted by length (descending by default, as in Alg. 1)."""
        return tuple(
            sorted(self.sequences, key=lambda s: s.length, reverse=descending)
        )

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self.sequences)

    def __len__(self) -> int:
        return len(self.sequences)

    @staticmethod
    def from_lengths(lengths: list[int] | tuple[int, ...], dataset: str = "synthetic") -> "Batch":
        """Build a batch from a plain list of lengths (ids assigned in order)."""
        return Batch(
            sequences=tuple(Sequence(seq_id=i, length=int(l)) for i, l in enumerate(lengths)),
            dataset=dataset,
        )


@dataclass
class BatchSampler:
    """Samples batches whose total token count matches a context budget.

    Parameters
    ----------
    distribution:
        The dataset length distribution to sample from.
    total_context:
        Target number of tokens per batch (the paper's total sequence length,
        e.g. 64k for 16 GPUs at 4k tokens per GPU).
    seed:
        RNG seed; batches are reproducible given the same seed.
    allow_truncation:
        When the final sampled sequence would overflow the budget, truncate it
        to exactly fill the budget (the default, matching how training recipes
        cut documents at the context boundary).  When ``False`` the overflowing
        sequence is dropped and the batch may come in slightly under budget.
    """

    distribution: LengthDistribution
    total_context: int
    seed: int = 0
    allow_truncation: bool = True
    _rng: np.random.Generator = field(init=False, repr=False)
    _next_id: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("total_context", self.total_context)
        if self.total_context < 64:
            raise ValueError("total_context must be at least 64 tokens")
        self._rng = np.random.default_rng(self.seed)

    def sample_batch(self) -> Batch:
        """Draw one batch filling (approximately) the context budget."""
        remaining = self.total_context
        sequences: list[Sequence] = []
        # Cap iterations defensively: the shortest bin is >= 64 tokens so a
        # budget of T tokens needs at most T/64 sequences.
        max_draws = self.total_context // 64 + 16
        for _ in range(max_draws):
            if remaining <= 0:
                break
            length = self.distribution.sample_lengths(1, self._rng)[0]
            if length > remaining:
                if self.allow_truncation and remaining >= 64:
                    length = remaining
                else:
                    break
            sequences.append(Sequence(seq_id=self._next_id, length=length))
            self._next_id += 1
            remaining -= length
        if not sequences:
            # The budget is smaller than any sampled sequence: emit one
            # truncated sequence so callers always get a valid batch.
            sequences.append(Sequence(seq_id=self._next_id, length=self.total_context))
            self._next_id += 1
        return Batch(sequences=tuple(sequences), dataset=self.distribution.name)

    def sample_batches(self, count: int) -> list[Batch]:
        """Draw ``count`` consecutive batches."""
        check_positive("count", count)
        return [self.sample_batch() for _ in range(count)]
