"""Synthetic workload generation matching the paper's datasets.

The paper trains on batches whose sequence lengths are sampled to match the
length histograms of ArXiv, GitHub and ProLong-64k (Table 2), and motivates the
problem with the broader dataset mixture of Fig. 1.  This subpackage provides
those histograms, a batch sampler that fills a total context budget, and the
packing/chunking utilities used by the input-balanced-pack baseline.
"""

from repro.data.distributions import (
    LengthDistribution,
    LengthBin,
    TABLE2_DISTRIBUTIONS,
    FIG1_DISTRIBUTIONS,
    get_distribution,
    available_distributions,
)
from repro.data.sampler import BatchSampler, Batch, Sequence
from repro.data.datasets import (
    SyntheticDataset,
    balanced_case_study_batch,
    skewed_case_study_batch,
)
from repro.data.packing import pack_sequences, chunk_sequence, PackedBuffer

__all__ = [
    "LengthDistribution",
    "LengthBin",
    "TABLE2_DISTRIBUTIONS",
    "FIG1_DISTRIBUTIONS",
    "get_distribution",
    "available_distributions",
    "BatchSampler",
    "Batch",
    "Sequence",
    "SyntheticDataset",
    "balanced_case_study_batch",
    "skewed_case_study_batch",
    "pack_sequences",
    "chunk_sequence",
    "PackedBuffer",
]
