"""Sequence packing and chunking utilities.

These implement the *input-balanced pack* family of baselines (Fig. 2.a):
sequences are packed into fixed-capacity buffers (first-fit-decreasing) or
chunked so that every rank receives the same number of tokens.  Packing
balances linear-module work perfectly but either wastes attention compute on
cross-sequence positions (when a single dense mask is used) or produces
imbalanced per-buffer attention cost (when a block-diagonal mask is used) —
exactly the inefficiency Fig. 3.a quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.sampler import Batch, Sequence
from repro.utils.validation import check_positive


@dataclass
class PackedBuffer:
    """A fixed-capacity buffer holding (fragments of) packed sequences.

    Attributes
    ----------
    capacity:
        Token capacity of the buffer.
    segments:
        ``(seq_id, length)`` pairs in packing order.  A sequence split across
        buffers appears in several buffers with the same ``seq_id``.
    """

    capacity: int
    segments: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)

    @property
    def used(self) -> int:
        """Tokens currently packed into the buffer."""
        return sum(length for _, length in self.segments)

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def padding(self) -> int:
        """Unused (padded) tokens if the buffer were materialised as-is."""
        return self.free

    def add(self, seq_id: int, length: int) -> None:
        """Pack ``length`` tokens of sequence ``seq_id`` into this buffer."""
        check_positive("length", length)
        if length > self.free:
            raise ValueError(
                f"segment of {length} tokens does not fit: only {self.free} free"
            )
        self.segments.append((seq_id, length))

    def attention_cost_tokens_sq(self, cross_sequence: bool) -> float:
        """Causal-attention cost of this buffer in units of tokens^2.

        With ``cross_sequence=True`` the whole buffer is treated as one causal
        sequence (the naive packed-attention kernel): cost ``used^2 / 2``.  With
        ``cross_sequence=False`` a block-diagonal mask restricts attention to
        each segment: cost ``sum(len_i^2) / 2``.
        """
        if cross_sequence:
            return self.used**2 / 2.0
        return sum(length**2 for _, length in self.segments) / 2.0

    def redundant_attention_tokens_sq(self) -> float:
        """Wasted attention compute (tokens^2) of the naive packed kernel.

        The difference between attending over the whole buffer and attending
        only within segments — the "redundant computation" of Fig. 3.a.
        """
        return self.attention_cost_tokens_sq(True) - self.attention_cost_tokens_sq(False)


def pack_sequences(
    batch: Batch,
    capacity: int,
    split_oversized: bool = True,
) -> list[PackedBuffer]:
    """Pack a batch into fixed-capacity buffers using first-fit-decreasing.

    Parameters
    ----------
    batch:
        The input batch.
    capacity:
        Per-buffer token capacity (typically the per-rank token budget).
    split_oversized:
        When ``True`` (default) sequences longer than ``capacity`` are split
        into capacity-sized fragments; when ``False`` such sequences raise.

    Returns
    -------
    list[PackedBuffer]
        Buffers in creation order; every token of the batch appears in exactly
        one buffer segment.
    """
    check_positive("capacity", capacity)
    buffers: list[PackedBuffer] = []

    def place(seq_id: int, length: int) -> None:
        for buf in buffers:
            if buf.free >= length:
                buf.add(seq_id, length)
                return
        buf = PackedBuffer(capacity=capacity)
        buf.add(seq_id, length)
        buffers.append(buf)

    for seq in batch.sorted_by_length(descending=True):
        if seq.length > capacity:
            if not split_oversized:
                raise ValueError(
                    f"sequence {seq.seq_id} of length {seq.length} exceeds buffer "
                    f"capacity {capacity}"
                )
            for fragment in chunk_sequence(seq.length, capacity):
                place(seq.seq_id, fragment)
        else:
            place(seq.seq_id, seq.length)
    return buffers


def chunk_sequence(length: int, chunk_size: int) -> list[int]:
    """Split ``length`` tokens into chunks of at most ``chunk_size`` tokens.

    The final chunk carries the remainder.  All chunks are non-empty and sum to
    ``length``.
    """
    check_positive("length", length)
    check_positive("chunk_size", chunk_size)
    chunks = []
    remaining = length
    while remaining > 0:
        take = min(chunk_size, remaining)
        chunks.append(take)
        remaining -= take
    return chunks


def split_evenly(length: int, parts: int) -> list[int]:
    """Split ``length`` tokens into ``parts`` near-equal chunks (all non-negative).

    Chunks differ by at most one token; chunks may be zero only when
    ``parts > length``.
    """
    check_positive("length", length)
    check_positive("parts", parts)
    base = length // parts
    extra = length % parts
    return [base + (1 if i < extra else 0) for i in range(parts)]


def packing_statistics(buffers: list[PackedBuffer]) -> dict[str, float]:
    """Aggregate packing quality metrics used by the Fig. 3.a reproduction."""
    if not buffers:
        return {
            "num_buffers": 0,
            "total_tokens": 0,
            "padding_tokens": 0,
            "padding_fraction": 0.0,
            "redundant_attention_fraction": 0.0,
        }
    total = sum(b.used for b in buffers)
    padding = sum(b.padding for b in buffers)
    useful = sum(b.attention_cost_tokens_sq(False) for b in buffers)
    redundant = sum(b.redundant_attention_tokens_sq() for b in buffers)
    denom = useful + redundant
    return {
        "num_buffers": float(len(buffers)),
        "total_tokens": float(total),
        "padding_tokens": float(padding),
        "padding_fraction": padding / (total + padding) if total + padding else 0.0,
        "redundant_attention_fraction": redundant / denom if denom else 0.0,
    }
