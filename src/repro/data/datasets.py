"""Named synthetic datasets and the case-study batches of §5.4.

:class:`SyntheticDataset` wraps a length distribution with a convenient batch
iterator, and the two ``*_case_study_batch`` helpers reproduce the "Balanced"
and "Skewed" batches of Table 3 (7B model, 128k total context on Cluster C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.distributions import LengthDistribution, get_distribution
from repro.data.sampler import Batch, BatchSampler, Sequence
from repro.utils.validation import check_positive


@dataclass
class SyntheticDataset:
    """A stream of synthetic batches matching a named dataset distribution."""

    name: str
    total_context: int
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("total_context", self.total_context)
        self._distribution = get_distribution(self.name)
        self._sampler = BatchSampler(
            distribution=self._distribution,
            total_context=self.total_context,
            seed=self.seed,
        )

    @property
    def distribution(self) -> LengthDistribution:
        return self._distribution

    def batches(self, count: int) -> list[Batch]:
        """Return ``count`` batches of roughly ``total_context`` tokens each."""
        return self._sampler.sample_batches(count)

    def batch(self) -> Batch:
        """Return a single batch."""
        return self._sampler.sample_batch()


def balanced_case_study_batch(total_context: int = 128 * 1024, seed: int = 0) -> Batch:
    """The Table 3 "Balanced" batch: one sequence sampled from each Table 2 bin.

    The paper describes the balanced distribution as sampling sequences from
    each length bucket of Table 2.  We draw one sequence from the midpoint of
    every ArXiv bin with non-zero probability and scale the set to the total
    context budget.
    """
    check_positive("total_context", total_context)
    dist = get_distribution("arxiv")
    rng = np.random.default_rng(seed)
    lengths = []
    for b in dist.bins:
        if b.probability > 0:
            lengths.append(int(rng.integers(b.lo, b.hi)))
    scale = total_context / sum(lengths)
    scaled = [max(64, int(round(n * scale))) for n in lengths]
    # Adjust the longest sequence so the batch hits the budget exactly.
    diff = total_context - sum(scaled)
    longest = max(range(len(scaled)), key=lambda i: scaled[i])
    scaled[longest] = max(64, scaled[longest] + diff)
    return Batch.from_lengths(scaled, dataset="balanced_case_study")


def skewed_case_study_batch(total_context: int = 128 * 1024, seed: int = 0) -> Batch:
    """The Table 3 "Skewed" batch: one very long sequence plus several short ones.

    Three quarters of the budget goes to a single long sequence; the remainder
    is split into short 1k-4k sequences.
    """
    check_positive("total_context", total_context)
    rng = np.random.default_rng(seed)
    long_len = int(total_context * 0.75)
    remaining = total_context - long_len
    lengths = [long_len]
    while remaining > 0:
        n = int(rng.integers(1024, 4096))
        n = min(n, remaining)
        if n < 64:
            lengths[-1] += n
            break
        lengths.append(n)
        remaining -= n
    return Batch.from_lengths(lengths, dataset="skewed_case_study")


def single_sequence_batch(length: int) -> Batch:
    """A batch containing exactly one sequence (the Fig. 12.b scenario)."""
    check_positive("length", length)
    return Batch(sequences=(Sequence(seq_id=0, length=length),), dataset="single")


def uniform_batch(num_sequences: int, length: int) -> Batch:
    """A batch of ``num_sequences`` equal-length sequences (Fig. 12.c scenario)."""
    check_positive("num_sequences", num_sequences)
    check_positive("length", length)
    return Batch.from_lengths([length] * num_sequences, dataset="uniform")
