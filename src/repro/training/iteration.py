"""Simulate one training iteration for a strategy.

One iteration = forward + backward over all transformer layers, plus small
per-iteration overheads (the sequence partitioner, optimizer step, embedding /
LM-head work).  Strategies plan a *single representative layer*; the iteration
time scales the simulated layer makespans by the layer count.  This mirrors how
the real system repeats the same per-layer schedule for every layer, and keeps
plans small enough to simulate quickly even at 128 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.plan import ExecutionPlan
from repro.core.strategy import Strategy
from repro.data.sampler import Batch
from repro.model.flops import embedding_flops_per_token
from repro.sim.batch import SimRequest, simulate_many
from repro.sim.engine import SimulationResult, Simulator
from repro.sim.events import ResourceEvent
from repro.utils.validation import check_positive

# Fixed per-iteration overhead for the optimizer step and data loading, in
# seconds.  Identical across strategies, so it only dampens relative speedups
# slightly (as it does in reality).
_OPTIMIZER_STEP_OVERHEAD_S = 0.015

# Deterministic planning-cost model: seconds of host-side scheduling work per
# emitted plan task, calibrated against the pure-python planner (~7-23us per
# task across strategies and scales).  Charging planning by plan size keeps
# the partitioner's cost in the iteration time — the paper's Table 3 reports
# it — without the load-dependent wall-clock measurement that made simulated
# throughput vary between runs.
_PLANNING_SECONDS_PER_TASK = 12e-6


@dataclass
class IterationResult:
    """Timing of one simulated training iteration."""

    strategy: str
    batch_tokens: int
    forward_layer_s: float
    backward_layer_s: float
    num_layers: int
    partition_overhead_s: float
    misc_overhead_s: float
    forward_result: SimulationResult
    backward_result: SimulationResult

    @property
    def iteration_time_s(self) -> float:
        """End-to-end time of the iteration."""
        return (
            (self.forward_layer_s + self.backward_layer_s) * self.num_layers
            + self.partition_overhead_s
            + self.misc_overhead_s
        )

    @property
    def tokens_per_second(self) -> float:
        """Training throughput for this iteration."""
        return self.batch_tokens / self.iteration_time_s

    @property
    def forward_time_s(self) -> float:
        """Forward-pass portion of the iteration."""
        return self.forward_layer_s * self.num_layers

    @property
    def backward_time_s(self) -> float:
        """Backward-pass portion of the iteration."""
        return self.backward_layer_s * self.num_layers


def _misc_overhead_s(strategy: Strategy, batch: Batch) -> float:
    """Embedding/LM-head compute plus the optimizer step, per iteration."""
    tokens_per_rank = batch.total_tokens / max(1, strategy.context.dp_world_size)
    embed_flops = embedding_flops_per_token(strategy.spec) * tokens_per_rank
    embed_s = embed_flops / (
        strategy.compute.peak_flops * 0.5 * strategy.context.tensor_parallel
    )
    return _OPTIMIZER_STEP_OVERHEAD_S + embed_s * 3.0  # forward + backward


def simulate_iteration(
    strategy: Strategy,
    batch: Batch,
    simulator: Simulator | None = None,
    record_trace: bool = True,
    events: "Sequence[ResourceEvent] | None" = None,
) -> IterationResult:
    """Plan, simulate and scale one full training iteration.

    Parameters
    ----------
    strategy:
        The scheduling strategy under test.
    batch:
        The global batch of the iteration.
    simulator:
        Optional shared simulator instance.
    record_trace:
        Record per-task traces (needed for the Fig. 12 analysis; disable for
        large benchmark sweeps).
    events:
        Optional resource perturbations (:mod:`repro.dynamics`) applied to the
        simulated layer, e.g. straggler speed factors.  Because the layer plan
        is representative of every layer, persistent conditions scale to the
        whole iteration.
    """
    if simulator is None:
        simulator = Simulator(record_trace=record_trace)

    forward_plan: ExecutionPlan = strategy.plan_layer(batch, phase="forward")
    backward_plan: ExecutionPlan = strategy.plan_layer(batch, phase="backward")
    partition_overhead = _PLANNING_SECONDS_PER_TASK * (
        forward_plan.num_tasks + backward_plan.num_tasks
    )

    forward = simulator.run(forward_plan, events=events)
    backward = simulator.run(backward_plan, events=events)

    return _assemble(strategy, batch, partition_overhead, forward, backward)


def _assemble(
    strategy: Strategy,
    batch: Batch,
    partition_overhead: float,
    forward: SimulationResult,
    backward: SimulationResult,
) -> IterationResult:
    num_layers = strategy.spec.num_layers
    check_positive("num_layers", num_layers)
    return IterationResult(
        strategy=strategy.name,
        batch_tokens=batch.total_tokens,
        forward_layer_s=forward.makespan_s,
        backward_layer_s=backward.makespan_s,
        num_layers=num_layers,
        partition_overhead_s=partition_overhead,
        misc_overhead_s=_misc_overhead_s(strategy, batch),
        forward_result=forward,
        backward_result=backward,
    )


def simulate_iterations(
    strategy: Strategy,
    batches: "Sequence[Batch]",
    record_trace: bool = False,
    events: "Sequence[ResourceEvent] | None" = None,
) -> list[IterationResult]:
    """Simulate one iteration per batch through the batched lane kernel.

    Plans every batch's forward and backward layer first, then hands all
    2N simulations to :func:`repro.sim.batch.simulate_many`, which groups
    them by shared plan structure (strategies that re-plan the same DAG
    shape per batch — only durations varying — simulate as lanes of one
    event loop).  Results are bit-identical to calling
    :func:`simulate_iteration` per batch.
    """
    shared_events = tuple(events) if events else ()
    planned: list[tuple[Batch, float]] = []
    requests: list[SimRequest] = []
    for batch in batches:
        forward_plan = strategy.plan_layer(batch, phase="forward")
        backward_plan = strategy.plan_layer(batch, phase="backward")
        overhead = _PLANNING_SECONDS_PER_TASK * (
            forward_plan.num_tasks + backward_plan.num_tasks
        )
        planned.append((batch, overhead))
        requests.append(SimRequest(plan=forward_plan, events=shared_events))
        requests.append(SimRequest(plan=backward_plan, events=shared_events))
    results = simulate_many(requests, record_trace=record_trace)
    return [
        _assemble(strategy, batch, overhead, results[2 * i], results[2 * i + 1])
        for i, (batch, overhead) in enumerate(planned)
    ]


def simulate_iteration_states(
    strategy: Strategy,
    batch: Batch,
    event_states: "Sequence[Sequence[ResourceEvent]]",
    record_trace: bool = False,
) -> list[IterationResult]:
    """One iteration of the *same* batch under several event states.

    The resilience driver's shape: one plan pair, K speed schedules.  All
    2K simulations run as lanes of the forward/backward structures in one
    :func:`repro.sim.batch.simulate_many` call; results are bit-identical
    to K sequential :func:`simulate_iteration` calls.
    """
    forward_plan = strategy.plan_layer(batch, phase="forward")
    backward_plan = strategy.plan_layer(batch, phase="backward")
    overhead = _PLANNING_SECONDS_PER_TASK * (
        forward_plan.num_tasks + backward_plan.num_tasks
    )
    requests: list[SimRequest] = []
    for events in event_states:
        shared = tuple(events) if events else ()
        requests.append(SimRequest(plan=forward_plan, events=shared))
        requests.append(SimRequest(plan=backward_plan, events=shared))
    results = simulate_many(requests, record_trace=record_trace)
    return [
        _assemble(strategy, batch, overhead, results[2 * i], results[2 * i + 1])
        for i in range(len(event_states))
    ]
