"""High-level training-run API used by examples and experiments.

:class:`TrainingRunConfig` captures one evaluation cell of the paper (model,
cluster, dataset, context length, parallel degrees); :class:`TrainingRun`
materialises the cluster, samples the synthetic batches, instantiates the
requested strategies and reports their throughput side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.hybrid_dp import HybridDPStrategy
from repro.baselines.llama_cp import LlamaCPStrategy
from repro.baselines.packing import PackingStrategy
from repro.baselines.te_cp import TransformerEngineCPStrategy
from repro.cluster.presets import make_cluster, cluster_a, cluster_b, cluster_c
from repro.cluster.topology import Cluster
from repro.core.strategy import Strategy, StrategyContext
from repro.core.zeppelin import ZeppelinStrategy
from repro.data.datasets import SyntheticDataset
from repro.data.sampler import Batch
from repro.model.spec import TransformerSpec, get_model
from repro.training.throughput import ThroughputReport, measure_throughput
from repro.utils.validation import check_positive

STRATEGY_NAMES = ("te_cp", "llama_cp", "hybrid_dp", "zeppelin", "packing")


@dataclass(frozen=True)
class TrainingRunConfig:
    """One evaluation configuration.

    Attributes
    ----------
    model:
        Model preset name or alias (``"7b"``, ``"llama-13b"``, ``"8x550m"``...).
    cluster_preset:
        ``"A"``, ``"B"`` or ``"C"`` (the paper's clusters).
    num_gpus:
        Total GPUs; must be a multiple of 8 (nodes are 8-GPU).
    dataset:
        Length-distribution name (``"arxiv"``, ``"github"``, ``"prolong64k"``).
    total_context:
        Total tokens per iteration (64k / 128k / 256k in the paper).
    tensor_parallel:
        Tensor-parallel degree (1 or 2 in the paper).
    num_steps:
        Number of batches to average throughput over.
    seed:
        Batch sampling seed.
    """

    model: str
    cluster_preset: str = "A"
    num_gpus: int = 16
    dataset: str = "arxiv"
    total_context: int = 64 * 1024
    tensor_parallel: int = 1
    num_steps: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_gpus", self.num_gpus)
        check_positive("total_context", self.total_context)
        check_positive("tensor_parallel", self.tensor_parallel)
        check_positive("num_steps", self.num_steps)
        if self.num_gpus % 8 != 0:
            raise ValueError("num_gpus must be a multiple of 8 (8-GPU nodes)")

    @property
    def num_nodes(self) -> int:
        return self.num_gpus // 8

    @property
    def tokens_per_gpu(self) -> int:
        return self.total_context // self.num_gpus

    @property
    def tokens_per_dp_rank(self) -> int:
        """Per-logical-rank token budget (the paper's ``L``)."""
        return self.total_context // (self.num_gpus // self.tensor_parallel)


def build_cluster(config: TrainingRunConfig) -> Cluster:
    """Instantiate the cluster preset for a run configuration."""
    preset = config.cluster_preset.upper()
    if preset == "A":
        return cluster_a(num_nodes=config.num_nodes)
    if preset == "B":
        return cluster_b(num_nodes=config.num_nodes)
    if preset == "C":
        return cluster_c(num_nodes=config.num_nodes)
    raise ValueError(f"unknown cluster preset {config.cluster_preset!r}")


def build_strategy(
    name: str,
    context: StrategyContext,
    **kwargs,
) -> Strategy:
    """Construct a strategy by short name."""
    key = name.lower()
    if key == "te_cp":
        return TransformerEngineCPStrategy(context, **kwargs)
    if key == "llama_cp":
        return LlamaCPStrategy(context, **kwargs)
    if key == "hybrid_dp":
        return HybridDPStrategy(context, **kwargs)
    if key == "zeppelin":
        return ZeppelinStrategy(context, **kwargs)
    if key == "packing":
        return PackingStrategy(context, **kwargs)
    raise ValueError(f"unknown strategy {name!r}; available: {STRATEGY_NAMES}")


@dataclass
class TrainingRun:
    """Materialised run: cluster, model, batches, and strategy comparison."""

    config: TrainingRunConfig
    cluster: Cluster = field(init=False)
    spec: TransformerSpec = field(init=False)
    context: StrategyContext = field(init=False)
    batches: list[Batch] = field(init=False)

    def __post_init__(self) -> None:
        self.cluster = build_cluster(self.config)
        self.spec = get_model(self.config.model)
        self.context = StrategyContext(
            cluster=self.cluster,
            spec=self.spec,
            token_budget=self.config.tokens_per_dp_rank,
            tensor_parallel=self.config.tensor_parallel,
        )
        dataset = SyntheticDataset(
            name=self.config.dataset,
            total_context=self.config.total_context,
            seed=self.config.seed,
        )
        self.batches = dataset.batches(self.config.num_steps)

    def strategy(self, name: str, **kwargs) -> Strategy:
        """Build one strategy bound to this run's context."""
        return build_strategy(name, self.context, **kwargs)

    def run_strategy(self, name: str, **kwargs) -> ThroughputReport:
        """Measure one strategy's throughput over this run's batches."""
        return measure_throughput(self.strategy(name, **kwargs), self.batches)

    def compare(
        self, strategy_names: tuple[str, ...] = ("te_cp", "llama_cp", "hybrid_dp", "zeppelin")
    ) -> list[ThroughputReport]:
        """Measure several strategies on identical batches (baseline first)."""
        return [self.run_strategy(name) for name in strategy_names]
