"""Deprecated training-run API — thin shims over :mod:`repro.api`.

The canonical programmatic surface is :class:`repro.api.Session`:

* :class:`TrainingRunConfig` is a silent alias of
  :class:`repro.api.SessionConfig` (same class, no warning).
* :class:`TrainingRun` wraps a :class:`~repro.api.Session` and keeps the old
  attribute/return-type surface (``ThroughputReport`` lists) working; it
  emits a :class:`DeprecationWarning` on construction.
* :func:`build_strategy` delegates to the strategy registry
  (:mod:`repro.registry`) and warns; new strategies register themselves with
  ``@register_strategy`` instead of being added to an if-chain here.

New code should use ``repro.api.Session`` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.api import Session, SessionConfig
from repro.api import build_cluster as _build_cluster
from repro.cluster.topology import Cluster
from repro.core.strategy import Strategy, StrategyContext
from repro.data.sampler import Batch
from repro.model.spec import TransformerSpec
from repro.registry import available_strategies, get_strategy
from repro.training.throughput import ThroughputReport, measure_throughput

# Deprecated alias kept for imports like ``from repro.training.runner import
# TrainingRunConfig``; the class now lives in :mod:`repro.api`.
TrainingRunConfig = SessionConfig

# Snapshot of the built-in strategy names (deprecated; call
# :func:`repro.registry.available_strategies` for the live view).
STRATEGY_NAMES = available_strategies()


def build_cluster(config: SessionConfig) -> Cluster:
    """Instantiate the cluster preset for a run configuration."""
    return _build_cluster(config)


def build_strategy(
    name: str,
    context: StrategyContext,
    **kwargs,
) -> Strategy:
    """Construct a strategy by short name (deprecated registry shim)."""
    warnings.warn(
        "build_strategy is deprecated; use repro.registry.get_strategy or "
        "repro.api.Session.strategy",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_strategy(name).obj(context, **kwargs)


@dataclass
class TrainingRun:
    """Deprecated facade over :class:`repro.api.Session`.

    Keeps the original surface — ``cluster``/``spec``/``context``/``batches``
    attributes, ``run_strategy`` returning :class:`ThroughputReport` and
    ``compare`` returning a report list — while delegating all work (and
    benefiting from the session's plan cache).
    """

    config: TrainingRunConfig

    def __post_init__(self) -> None:
        warnings.warn(
            "TrainingRun is deprecated; use repro.api.Session",
            DeprecationWarning,
            stacklevel=3,
        )
        self._session = Session(self.config)

    @property
    def session(self) -> Session:
        """The backing session (for incremental migration)."""
        return self._session

    @property
    def cluster(self) -> Cluster:
        return self._session.cluster

    @property
    def spec(self) -> TransformerSpec:
        return self._session.spec

    @property
    def context(self) -> StrategyContext:
        return self._session.context

    @property
    def batches(self) -> list[Batch]:
        return self._session.batches

    def strategy(self, name: str, **kwargs) -> Strategy:
        """Build one strategy bound to this run's context."""
        return self._session.strategy(name, **kwargs)

    def run_strategy(self, name: str, **kwargs) -> ThroughputReport:
        """Measure one strategy's throughput over this run's batches."""
        return measure_throughput(self.strategy(name, **kwargs), self.batches)

    def compare(
        self, strategy_names: tuple[str, ...] = ("te_cp", "llama_cp", "hybrid_dp", "zeppelin")
    ) -> list[ThroughputReport]:
        """Measure several strategies on identical batches (baseline first)."""
        return [self.run_strategy(name) for name in strategy_names]
