"""Throughput measurement and speedup reporting.

The paper reports tokens/second averaged over training steps 50-150 and
normalises every configuration against the TE CP baseline (the "1x" bars of
Fig. 8-11).  :func:`measure_throughput` averages simulated iterations over a
number of sampled batches; :func:`speedup_table` builds the normalised
comparison rows the experiments print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.strategy import Strategy
from repro.data.sampler import Batch
from repro.training.iteration import IterationResult, simulate_iterations
from repro.utils.validation import check_positive


@dataclass
class ThroughputReport:
    """Average throughput of a strategy over several batches."""

    strategy: str
    tokens_per_second: float
    iteration_time_s: float
    total_tokens: int
    num_batches: int
    iterations: list[IterationResult] = field(default_factory=list)

    def speedup_over(self, baseline: "ThroughputReport") -> float:
        """Throughput ratio against a baseline report."""
        if baseline.tokens_per_second == 0:
            raise ZeroDivisionError("baseline throughput is zero")
        return self.tokens_per_second / baseline.tokens_per_second


def measure_throughput(
    strategy: Strategy,
    batches: list[Batch],
    record_trace: bool = False,
) -> ThroughputReport:
    """Average tokens/second of ``strategy`` over ``batches``.

    The per-batch iterations simulate through the batched lane kernel
    (:func:`~repro.training.iteration.simulate_iterations`): batches whose
    plans share structure run as lanes of one event loop, bit-identical to
    the sequential per-batch path.
    """
    if not batches:
        raise ValueError("need at least one batch")
    iterations = simulate_iterations(strategy, batches, record_trace=record_trace)
    total_tokens = 0
    total_time = 0.0
    for batch, result in zip(batches, iterations):
        total_tokens += batch.total_tokens
        total_time += result.iteration_time_s
    check_positive("total simulated time", total_time)
    return ThroughputReport(
        strategy=strategy.name,
        tokens_per_second=total_tokens / total_time,
        iteration_time_s=total_time / len(batches),
        total_tokens=total_tokens,
        num_batches=len(batches),
        iterations=iterations,
    )


def speedup_table(
    reports: list[ThroughputReport],
    baseline_name: str | None = None,
) -> list[dict[str, float | str]]:
    """Rows of (strategy, tokens/s, speedup-vs-baseline) for experiment output.

    The baseline defaults to the first report (the paper normalises against
    TE CP, which experiments list first).
    """
    if not reports:
        return []
    baseline = reports[0]
    if baseline_name is not None:
        matches = [r for r in reports if r.strategy == baseline_name]
        if not matches:
            raise KeyError(f"no report named {baseline_name!r}")
        baseline = matches[0]
    rows = []
    for report in reports:
        rows.append(
            {
                "strategy": report.strategy,
                "tokens_per_second": report.tokens_per_second,
                "speedup": report.speedup_over(baseline),
            }
        )
    return rows
