"""Training-iteration assembly and throughput measurement.

Replaces the Megatron-LM training loop: for a given strategy, a batch is
planned (forward and backward layer graphs), simulated, scaled to the full
layer stack, and reported as tokens/second — the paper's evaluation metric
(throughput averaged over steps).
"""

from repro.training.iteration import IterationResult, simulate_iteration
from repro.training.throughput import ThroughputReport, measure_throughput, speedup_table
from repro.training.runner import TrainingRun, TrainingRunConfig

__all__ = [
    "IterationResult",
    "simulate_iteration",
    "ThroughputReport",
    "measure_throughput",
    "speedup_table",
    "TrainingRun",
    "TrainingRunConfig",
]
