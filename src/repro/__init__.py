"""Zeppelin reproduction: balancing variable-length workloads in data-parallel training.

This package reproduces the system described in *Zeppelin: Balancing
Variable-length Workloads in Data Parallel Large Model Training* (EUROSYS
2026).  It provides:

* the four Zeppelin layers — hierarchical sequence partitioner, attention
  engine, communication routing layer and remapping layer (:mod:`repro.core`),
* the baselines the paper compares against (:mod:`repro.baselines`),
* the substrates they run on: a cluster topology model, analytical cost
  models, synthetic variable-length workloads, a NumPy reference attention
  stack and a discrete-event simulator,
* a training runner reporting tokens/second (:mod:`repro.training`), and
* one experiment module per paper figure/table (:mod:`repro.experiments`).

Quickstart::

    from repro.training.runner import TrainingRun, TrainingRunConfig

    run = TrainingRun(TrainingRunConfig(model="7b", num_gpus=16, dataset="arxiv"))
    for report in run.compare():
        print(report.strategy, round(report.tokens_per_second))
"""

from repro.cluster.presets import cluster_a, cluster_b, cluster_c, make_cluster
from repro.core.strategy import Strategy, StrategyContext
from repro.core.zeppelin import ZeppelinStrategy
from repro.data.sampler import Batch, Sequence
from repro.model.spec import get_model
from repro.training.runner import TrainingRun, TrainingRunConfig

__version__ = "1.0.0"

__all__ = [
    "cluster_a",
    "cluster_b",
    "cluster_c",
    "make_cluster",
    "Strategy",
    "StrategyContext",
    "ZeppelinStrategy",
    "Batch",
    "Sequence",
    "get_model",
    "TrainingRun",
    "TrainingRunConfig",
    "__version__",
]
