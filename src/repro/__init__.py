"""Zeppelin reproduction: balancing variable-length workloads in data-parallel training.

This package reproduces the system described in *Zeppelin: Balancing
Variable-length Workloads in Data Parallel Large Model Training* (EUROSYS
2026).  It provides:

* the four Zeppelin layers — hierarchical sequence partitioner, attention
  engine, communication routing layer and remapping layer (:mod:`repro.core`),
* the baselines the paper compares against (:mod:`repro.baselines`),
* the substrates they run on: a cluster topology model, analytical cost
  models, synthetic variable-length workloads, a NumPy reference attention
  stack and a discrete-event simulator,
* a registry-driven planning API (:mod:`repro.api`, :mod:`repro.registry`)
  with structured results (:mod:`repro.results`),
* fault & variability injection with recovery policies
  (:mod:`repro.dynamics`): stragglers, degraded links and node failures over
  a deterministic seeded schedule, with checkpoint-restart and elastic
  re-partition recovery,
* declarative sweep execution (:mod:`repro.exec`): frozen
  :class:`~repro.exec.SweepSpec` grids with zip/filter/derived axes,
  pluggable ``serial``/``process`` backends, a content-hash result cache
  under ``.repro_cache/`` and structured :class:`~repro.exec.SweepResult`
  output,
* open-loop online serving workloads (:mod:`repro.serve`): seeded arrival
  processes over a weighted request mix, admission queueing with a
  concurrency limit, cross-request batching and caching, and
  latency/goodput metrics in a :class:`~repro.results.ServeResult`, and
* one experiment module per paper figure/table (:mod:`repro.experiments`),
  plus the ``fig13_resilience`` fault sweep and the ``fig14_serving``
  load curve.

Quickstart::

    from repro.api import Session

    session = Session(model="7b", num_gpus=16, dataset="arxiv")
    result = session.compare(("te_cp", "llama_cp", "hybrid_dp", "zeppelin"))
    for row in result.rows():
        print(row["strategy"], round(row["tokens_per_second"]), f"{row['speedup']:.2f}x")
    print(result.to_json(indent=2))  # machine-readable form

Sessions cache sampled batches and per-(strategy, batch, phase) execution
plans, so repeated comparisons, ablations and :meth:`Session.sweep` grids
reuse plans instead of replanning.  New strategies plug in through the
registry — no core file changes needed::

    from repro import Strategy, register_strategy

    @register_strategy("my_strategy", description="what it does")
    class MyStrategy(Strategy):
        def plan_layer(self, batch, phase="forward"):
            ...

    Session(model="7b").run("my_strategy")
"""

from repro.api import DEFAULT_COMPARISON, Session, SessionConfig
from repro.cluster.presets import cluster_a, cluster_b, cluster_c, make_cluster
from repro.core.strategy import Strategy, StrategyContext
from repro.core.zeppelin import ZeppelinStrategy
from repro.data.sampler import Batch, Sequence
from repro.dynamics import PerturbationConfig, PerturbationModel
from repro.exec import SweepPoint, SweepResult, SweepSpec, run_sweep
from repro.model.spec import get_model
from repro.registry import (
    available_admissions,
    available_arrivals,
    available_backends,
    available_experiments,
    available_recoveries,
    available_rules,
    available_strategies,
    register_admission,
    register_arrival,
    register_backend,
    register_experiment,
    register_recovery,
    register_rule,
    register_strategy,
)
from repro.results import CompareResult, ResilienceResult, RunResult, ServeResult
from repro.training.runner import TrainingRun, TrainingRunConfig

__version__ = "1.5.0"

__all__ = [
    "DEFAULT_COMPARISON",
    "Session",
    "SessionConfig",
    "cluster_a",
    "cluster_b",
    "cluster_c",
    "make_cluster",
    "Strategy",
    "StrategyContext",
    "ZeppelinStrategy",
    "Batch",
    "Sequence",
    "PerturbationConfig",
    "PerturbationModel",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    "get_model",
    "available_admissions",
    "available_arrivals",
    "available_backends",
    "available_experiments",
    "available_recoveries",
    "available_rules",
    "available_strategies",
    "register_admission",
    "register_arrival",
    "register_backend",
    "register_experiment",
    "register_recovery",
    "register_rule",
    "register_strategy",
    "CompareResult",
    "ResilienceResult",
    "RunResult",
    "ServeResult",
    "TrainingRun",
    "TrainingRunConfig",
    "__version__",
]
