"""Lightweight argument validation helpers used across the library.

Every public constructor in the library validates its inputs eagerly so that a
mis-configured experiment fails at construction time with a clear message,
rather than deep inside the simulator with an obscure one.
"""

from __future__ import annotations

from typing import Any, Iterable


def check_positive(name: str, value: float) -> float:
    """Return ``value`` if it is strictly positive, otherwise raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Return ``value`` if it is >= 0, otherwise raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Return ``value`` if it is a member of ``allowed``, otherwise raise ``ValueError``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value
