"""ASCII table rendering for experiment output.

Experiments print the same rows/series the paper reports.  A tiny dependency-free
renderer keeps the output readable in a terminal and in captured logs.
"""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    """Format a cell for display."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10000 else str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of rows; each row must have the same length as ``headers``.
    title:
        Optional title printed above the table.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have the same number of cells as headers")
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
