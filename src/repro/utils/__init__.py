"""Shared utilities: argument validation and table rendering."""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_fraction,
    check_in,
)
from repro.utils.tables import render_table

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_in",
    "render_table",
]
