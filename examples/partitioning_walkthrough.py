#!/usr/bin/env python
"""Walk through Zeppelin's scheduling decisions for one variable-length batch.

Shows, step by step, what each of the four layers does with a GitHub-style
batch (a couple of very long documents plus many short ones):

1. the sequence partitioner's zone assignment and ring groups (Alg. 1 + 2),
2. the per-rank token loads it produces,
3. the routing layer's decomposition of one inter-node ring hop,
4. the remapping layer's transfer plan for the linear modules.

Run with::

    python examples/partitioning_walkthrough.py
"""

from __future__ import annotations

from repro.cluster.presets import cluster_a
from repro.core.routing import RoutingLayer
from repro.core.strategy import StrategyContext
from repro.core.zeppelin import ZeppelinStrategy
from repro.core.zones import Zone
from repro.data.datasets import SyntheticDataset
from repro.model.memory import kv_bytes_per_token
from repro.model.spec import get_model
from repro.utils.tables import render_table


def main() -> None:
    cluster = cluster_a(num_nodes=2)
    spec = get_model("7b")
    context = StrategyContext(cluster=cluster, spec=spec, token_budget=4096)
    strategy = ZeppelinStrategy(context)

    dataset = SyntheticDataset(name="github", total_context=64 * 1024, seed=7)
    batch = dataset.batch()
    print(f"batch of {batch.num_sequences} sequences, {batch.total_tokens} tokens")
    print("lengths:", sorted(batch.lengths, reverse=True))
    print()

    # 1. Hierarchical partitioning.
    partition = strategy.partition(batch)
    print(f"inter-node threshold s1 = {partition.inter_threshold} tokens")
    print(f"local thresholds s0 per node = {partition.local_thresholds}")
    rows = []
    for ring in partition.rings:
        rows.append(
            [
                ring.seq_id,
                ring.seq_len,
                ring.zone.value,
                ring.group_size,
                " ".join(str(r) for r in ring.ranks),
            ]
        )
    if rows:
        print(render_table(["seq", "length", "zone", "ring size", "ranks"], rows))
    local = partition.placements_by_zone(Zone.LOCAL)
    print(f"{len(local)} sequences stay device-local (no communication)")
    print()

    # 2. Per-rank token loads.
    tokens = partition.tokens_per_rank()
    rows = [[rank, tokens[rank]] for rank in sorted(tokens)]
    print(render_table(["rank", "tokens after partitioning"], rows))
    print()

    # 3. Routing one inter-node hop.
    inter_rings = partition.rings_by_zone(Zone.INTER_NODE)
    if inter_rings:
        ring = inter_rings[0]
        routing = RoutingLayer(cluster=cluster)
        chunk_tokens = ring.seq_len // ring.group_size
        nbytes = chunk_tokens * kv_bytes_per_token(spec)
        src = cluster.ranks_on_node(0)[-1]
        dst = cluster.ranks_on_node(1)[0]
        decision = routing.route(src, dst, nbytes, ring_ranks=ring.ranks)
        print(
            f"routing one ring hop of {nbytes / 1e6:.1f} MB from rank {src} to rank {dst}:"
        )
        print(f"  send proxies:    {decision.send_proxies}")
        print(f"  receive proxies: {decision.recv_proxies}")
        direct = routing.direct_cost(nbytes)
        routed = routing.routed_cost(nbytes, decision.x1, decision.x2)
        print(
            f"  direct single-NIC cost {direct * 1000:.2f} ms -> routed cost "
            f"{routed * 1000:.2f} ms ({direct / routed:.1f}x faster)"
        )
    else:
        print("this batch needs no inter-node rings; nothing to route")
    print()

    # 4. Remapping for the linear modules.
    remap = strategy.remapping.plan(tokens)
    print(
        f"remapping moves {remap.total_moved_tokens:.0f} tokens "
        f"(solver: {remap.solver}) to balance the linear modules:"
    )
    rows = []
    for i, src in enumerate(remap.ranks):
        for j, dst in enumerate(remap.ranks):
            moved = remap.transfer_tokens[i][j]
            if moved > 0:
                rows.append([src, dst, int(moved)])
    if rows:
        print(render_table(["from rank", "to rank", "tokens"], rows))
    else:
        print("  (already balanced — no transfers needed)")


if __name__ == "__main__":
    main()
