#!/usr/bin/env python
"""Quickstart: compare Zeppelin against the baselines on one configuration.

Builds the paper's smallest evaluation cell — a LLaMA-7B model on 16 A800 GPUs
(2 nodes of Cluster A) with a 64k-token context sampled from the ArXiv length
distribution — and reports the training throughput of TE CP, LLaMA CP,
Hybrid DP and Zeppelin on identical batches.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.training.runner import TrainingRun, TrainingRunConfig
from repro.training.throughput import speedup_table
from repro.utils.tables import render_table


def main() -> None:
    config = TrainingRunConfig(
        model="7b",
        cluster_preset="A",
        num_gpus=16,
        dataset="arxiv",
        total_context=64 * 1024,
        num_steps=3,
        seed=0,
    )
    run = TrainingRun(config)
    print(run.cluster.describe())
    print(
        f"model: {run.spec.name} ({run.spec.num_parameters / 1e9:.1f}B params), "
        f"dataset: {config.dataset}, context: {config.total_context // 1024}k tokens, "
        f"{config.num_steps} steps"
    )
    print()

    reports = run.compare(("te_cp", "llama_cp", "hybrid_dp", "zeppelin"))
    rows = [
        [r["strategy"], round(r["tokens_per_second"]), f"{r['speedup']:.2f}x"]
        for r in speedup_table(reports)
    ]
    print(render_table(["strategy", "tokens/second", "speedup vs TE CP"], rows))
    print()
    zeppelin = reports[-1]
    baseline = reports[0]
    print(
        f"Zeppelin processes {zeppelin.tokens_per_second / baseline.tokens_per_second:.2f}x "
        f"more tokens per second than the TE CP baseline on this configuration."
    )


if __name__ == "__main__":
    main()
