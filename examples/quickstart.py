#!/usr/bin/env python
"""Quickstart: compare Zeppelin against the baselines on one configuration.

Builds the paper's smallest evaluation cell — a LLaMA-7B model on 16 A800 GPUs
(2 nodes of Cluster A) with a 64k-token context sampled from the ArXiv length
distribution — and reports the training throughput of TE CP, LLaMA CP,
Hybrid DP and Zeppelin on identical batches, using the ``repro.api.Session``
facade and its structured :class:`~repro.results.CompareResult`.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import DEFAULT_COMPARISON, Session
from repro.utils.tables import render_table


def main() -> None:
    session = Session(
        model="7b",
        cluster_preset="A",
        num_gpus=16,
        dataset="arxiv",
        total_context=64 * 1024,
        num_steps=3,
        seed=0,
    )
    config = session.config
    print(session.cluster.describe())
    print(
        f"model: {session.spec.name} ({session.spec.num_parameters / 1e9:.1f}B params), "
        f"dataset: {config.dataset}, context: {config.total_context // 1024}k tokens, "
        f"{config.num_steps} steps"
    )
    print()

    result = session.compare(DEFAULT_COMPARISON)
    rows = [
        [r["strategy"], round(r["tokens_per_second"]), f"{r['speedup']:.2f}x"]
        for r in result.rows()
    ]
    print(render_table(["strategy", "tokens/second", "speedup vs TE CP"], rows))
    print()
    print(
        f"Zeppelin processes {result.speedup('zeppelin'):.2f}x more tokens per "
        f"second than the TE CP baseline on this configuration."
    )
    print()
    print("The same comparison as machine-readable JSON (CompareResult.to_json):")
    print(result.to_json(indent=2))


if __name__ == "__main__":
    main()
