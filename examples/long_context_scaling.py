#!/usr/bin/env python
"""Long-context scaling study: how strategies behave as context grows.

Trains the 3B model on ProLong-64k-style data (the long-context recipe the
paper's introduction motivates) while scaling the cluster from 16 to 64 GPUs at
a fixed 4k tokens per GPU, i.e. total contexts of 64k to 256k tokens.  Prints
the throughput of every strategy at every scale plus the parallel efficiency of
Zeppelin relative to its 16-GPU configuration.

Run with::

    python examples/long_context_scaling.py
"""

from __future__ import annotations

from repro.api import DEFAULT_COMPARISON, Session
from repro.utils.tables import render_table

GPU_COUNTS = (16, 32, 64)
STRATEGIES = DEFAULT_COMPARISON
TOKENS_PER_GPU = 4096


def main() -> None:
    rows = []
    zeppelin_by_scale = {}
    base = Session(
        model="3b", cluster_preset="A", dataset="prolong64k", num_steps=2, seed=1
    )
    for gpus in GPU_COUNTS:
        session = base.derive(num_gpus=gpus, total_context=TOKENS_PER_GPU * gpus)
        throughputs = {}
        for name in STRATEGIES:
            throughputs[name] = session.run(name).tokens_per_second
        zeppelin_by_scale[gpus] = throughputs["zeppelin"]
        rows.append(
            [
                gpus,
                f"{TOKENS_PER_GPU * gpus // 1024}k",
                *[round(throughputs[name]) for name in STRATEGIES],
                f"{throughputs['zeppelin'] / throughputs['te_cp']:.2f}x",
            ]
        )

    headers = ["gpus", "context", "te_cp", "llama_cp", "hybrid_dp", "zeppelin", "zeppelin vs te_cp"]
    print(render_table(headers, rows, title="ProLong-64k long-context scaling (3B, Cluster A)"))
    print()

    base_gpus = GPU_COUNTS[0]
    for gpus in GPU_COUNTS[1:]:
        ideal = zeppelin_by_scale[base_gpus] * gpus / base_gpus
        efficiency = zeppelin_by_scale[gpus] / ideal
        print(
            f"Zeppelin parallel efficiency at {gpus} GPUs "
            f"(vs {base_gpus} GPUs): {efficiency:.0%}"
        )


if __name__ == "__main__":
    main()
