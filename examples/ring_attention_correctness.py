#!/usr/bin/env python
"""Numerical check: Zeppelin's chunked attention layouts are exact.

The scheduling layers only move tokens around; this example demonstrates with
the NumPy reference stack that the three execution styles Zeppelin uses all
produce bit-for-bit (up to float round-off) the same attention output as a
monolithic causal kernel:

* blockwise (online-softmax) accumulation,
* zigzag ring attention across a group of ranks,
* packed variable-length attention with a block-diagonal mask,

and quantifies how much compute the *naive* packed kernel wastes on
cross-sequence positions (the Fig. 3.a redundancy).

Run with::

    python examples/ring_attention_correctness.py
"""

from __future__ import annotations

import numpy as np

from repro.refattn.attention import causal_attention, random_qkv
from repro.refattn.online_softmax import blockwise_causal_attention
from repro.refattn.ring import ring_attention, zigzag_chunk_token_counts
from repro.refattn.varlen import (
    cross_sequence_flops_fraction,
    per_sequence_attention,
    varlen_attention,
)


def max_error(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.max(np.abs(a - b)))


def main() -> None:
    seq_len, heads, head_dim = 512, 4, 32
    q, k, v = random_qkv(seq_len, heads=heads, head_dim=head_dim, seed=42)
    reference = causal_attention(q, k, v)
    print(f"reference causal attention: seq={seq_len}, heads={heads}, head_dim={head_dim}")

    block = blockwise_causal_attention(q, k, v, block_size=64)
    print(f"blockwise (online softmax)     max |error| = {max_error(block, reference):.2e}")

    for group_size in (2, 4, 8):
        result = ring_attention(q, k, v, group_size=group_size)
        counts = zigzag_chunk_token_counts(seq_len, group_size)
        print(
            f"zigzag ring attention (G={group_size})  max |error| = "
            f"{max_error(result.combined, reference):.2e}  "
            f"(per-rank tokens: {counts})"
        )

    # Packed variable-length attention over four sequences.
    lengths = [192, 128, 128, 64]
    qp, kp, vp = random_qkv(sum(lengths), heads=heads, head_dim=head_dim, seed=7)
    packed = varlen_attention(qp, kp, vp, lengths, cross_sequence=False)
    per_seq = per_sequence_attention(qp, kp, vp, lengths)
    print(
        f"packed varlen attention        max |error| = {max_error(packed, per_seq):.2e}  "
        f"(lengths {lengths})"
    )

    naive = varlen_attention(qp, kp, vp, lengths, cross_sequence=True)
    polluted = max_error(naive, per_seq)
    waste = cross_sequence_flops_fraction(lengths)
    print(
        f"NAIVE packed kernel            max |error| = {polluted:.2e}  "
        f"<- cross-sequence attention corrupts outputs"
    )
    print(
        f"and wastes {waste:.0%} of its attention FLOPs on cross-sequence positions "
        f"(the Fig. 3.a redundancy)"
    )


if __name__ == "__main__":
    main()
