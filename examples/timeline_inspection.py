#!/usr/bin/env python
"""Inspect the simulated execution timeline of one transformer layer (Fig. 12).

Plans a single 64k-token sequence on 16 GPUs with both the TE CP baseline and
Zeppelin, simulates the forward pass of one layer, and prints a per-rank
timeline of the first few ranks: when each attention round computes, when KV
transfers run, and how much communication stays exposed.

Run with::

    python examples/timeline_inspection.py
"""

from __future__ import annotations

from repro.api import Session
from repro.core.plan import TaskKind
from repro.data.datasets import single_sequence_batch
from repro.sim.engine import Simulator
from repro.sim.trace import summarize_trace
from repro.sim.visualize import render_timeline


def print_rank_timeline(trace, rank: int, max_spans: int = 12) -> None:
    spans = trace.spans_for_rank(rank)
    print(f"  rank {rank}: {len(spans)} spans")
    for span in spans[:max_spans]:
        bar_start = int(span.start_s * 2e4)
        print(
            f"    {span.start_s * 1000:7.3f} - {span.end_s * 1000:7.3f} ms "
            f"{' ' * min(bar_start, 40)}[{span.kind.value:<11s}] {span.name[:60]}"
        )
    if len(spans) > max_spans:
        print(f"    ... {len(spans) - max_spans} more spans")


def main() -> None:
    session = Session(
        model="3b",
        cluster_preset="A",
        num_gpus=16,
        dataset="arxiv",
        total_context=64 * 1024,
        num_steps=1,
    )
    batch = single_sequence_batch(64 * 1024)
    simulator = Simulator(record_trace=True)

    for name in ("te_cp", "zeppelin"):
        strategy = session.strategy(name)
        plan = strategy.plan_layer(batch, phase="forward")
        result = simulator.run(plan)
        summary = summarize_trace(result.trace)
        print(f"=== {strategy.name}: one-layer forward of a single 64k sequence ===")
        print(
            f"  makespan {result.makespan_s * 1000:.2f} ms over {plan.num_tasks} tasks; "
            f"attention {summary['total_attention_s'] * 1000:.1f} ms, "
            f"inter-node comm {summary['total_inter_comm_s'] * 1000:.1f} ms, "
            f"intra-node comm {summary['total_intra_comm_s'] * 1000:.1f} ms"
        )
        exposed = [
            result.trace.communication_exposed_s(r)
            for r in range(session.cluster.world_size)
        ]
        print(f"  worst exposed (unhidden) communication on a rank: {max(exposed) * 1000:.2f} ms")
        inter_spans = [
            s for s in result.trace.spans if s.kind == TaskKind.INTER_COMM and s.duration_s > 0
        ]
        if inter_spans:
            mean_round = sum(s.duration_s for s in inter_spans) / len(inter_spans)
            print(f"  mean inter-node transfer: {mean_round * 1e6:.0f} us")
        print_rank_timeline(result.trace, rank=0)
        print()
        print(render_timeline(result.trace, ranks=[0, 1, 7, 8, 15], width=96))
        print()


if __name__ == "__main__":
    main()
