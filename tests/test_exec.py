"""Tests for repro.exec: sweep specs, backends, caching and results."""

import json

import pytest

from repro.api import Session
from repro.exec import (
    ProcessBackend,
    ResultCache,
    SerialBackend,
    SweepPoint,
    SweepResult,
    SweepSpec,
    point_key,
    resolve_backend,
    run_sweep,
)
from repro.registry import available_backends, get_backend, get_experiment
from repro.results import ResilienceResult, RunResult, result_from_dict

# A grid small enough for the suite: 1-node cluster cells simulate in ~100ms.
SMALL_BASE = {"model": "3b", "num_gpus": 16, "total_context": 16 * 1024, "num_steps": 1}


class TestSweepSpecExpansion:
    def test_cartesian_order_rightmost_fastest(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": ("x", "y")})
        combos = [(p["a"], p["b"]) for p in spec]
        assert combos == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_base_merged_and_overridden_by_axes(self):
        spec = SweepSpec(base={"a": 0, "c": "keep"}, axes={"a": (1,), "b": (2,)})
        point = spec.points()[0]
        assert point["a"] == 1 and point["b"] == 2 and point["c"] == "keep"

    def test_zip_axes_iterate_in_lockstep(self):
        spec = SweepSpec(
            axes={"m": ("s", "l"), "g": (8, 16), "d": ("a", "b")},
            zip_axes=(("m", "g"),),
        )
        combos = [(p["m"], p["g"], p["d"]) for p in spec]
        assert combos == [
            ("s", 8, "a"), ("s", 8, "b"), ("l", 16, "a"), ("l", 16, "b"),
        ]

    def test_zip_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatched lengths"):
            SweepSpec(axes={"m": ("s",), "g": (8, 16)}, zip_axes=(("m", "g"),))

    def test_zip_unknown_axis_raises(self):
        with pytest.raises(ValueError, match="unknown axis"):
            SweepSpec(axes={"m": ("s",)}, zip_axes=(("m", "nope"),))

    def test_where_filters_combinations(self):
        spec = SweepSpec(
            axes={"a": (1, 2, 3), "b": (1, 2, 3)},
            where=lambda v: v["a"] < v["b"],
        )
        assert all(p["a"] < p["b"] for p in spec)
        assert len(spec) == 3

    def test_derived_fields_materialised(self):
        spec = SweepSpec(
            axes={"num_gpus": (8, 16)},
            derived={"total_context": lambda v: 4096 * v["num_gpus"]},
        )
        assert [p["total_context"] for p in spec] == [8 * 4096, 16 * 4096]

    def test_derived_collision_raises(self):
        with pytest.raises(ValueError, match="collides"):
            SweepSpec(axes={"a": (1,)}, derived={"a": lambda v: 2})

    def test_empty_axis_raises(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(axes={"a": ()})
        with pytest.raises(ValueError, match="at least one axis"):
            SweepSpec(axes={})

    def test_bare_string_axis_raises(self):
        with pytest.raises(ValueError, match="bare string"):
            SweepSpec(axes={"dataset": "arxiv"})

    def test_describe_reports_shape(self):
        spec = SweepSpec(axes={"a": (1, 2), "b": (1, 2, 3)})
        assert "a[2]" in spec.describe() and "6 points" in spec.describe()


class TestSweepPoint:
    def test_field_split(self):
        point = SweepPoint(
            {"model": "3b", "num_gpus": 16, "strategy": "te_cp", "mylabel": "x"}
        )
        assert point.session_fields() == {"model": "3b", "num_gpus": 16}
        assert point.run_fields() == {"strategy": "te_cp"}
        assert point.tags() == {"mylabel": "x"}

    def test_canonical_json_excludes_tags_and_sorts(self):
        a = SweepPoint({"strategy": "te_cp", "model": "3b", "tag": 1})
        b = SweepPoint({"model": "3b", "strategy": "te_cp", "tag": 2})
        assert a.canonical_json() == b.canonical_json()
        assert "tag" not in a.canonical_json()

    def test_non_jsonable_value_raises(self):
        with pytest.raises(TypeError, match="JSON-representable"):
            SweepPoint({"model": object()}).to_dict()

    def test_values_frozen(self):
        point = SweepPoint({"model": "3b"})
        with pytest.raises(TypeError):
            point.values["model"] = "7b"


class TestBackendsRegistry:
    def test_builtin_backends_listed(self):
        assert set(available_backends()) >= {"serial", "process"}
        assert get_backend("serial").description

    def test_resolve_backend_picks_by_jobs(self):
        assert resolve_backend(None, jobs=1).name == "serial"
        assert resolve_backend(None, jobs=4).name == "process"
        assert resolve_backend("serial", jobs=4).name == "serial"
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            SerialBackend(jobs=0)

    def test_observability_defaults_empty(self):
        assert SerialBackend().observability() == {}


class TestProcessChunksize:
    """Large grids must not degenerate to chunksize 1 (one IPC per point)."""

    def test_targets_about_four_chunks_per_worker(self):
        assert ProcessBackend.chunksize(64, 4) == 4
        assert ProcessBackend.chunksize(1000, 8) == 32

    def test_capped_so_stragglers_cannot_hold_the_tail(self):
        assert ProcessBackend.chunksize(100_000, 4) == 32

    def test_small_grids_floor_at_one(self):
        assert ProcessBackend.chunksize(3, 8) == 1
        assert ProcessBackend.chunksize(1, 1) == 1


class TestRunSweep:
    @pytest.fixture(scope="class")
    def spec(self):
        return SweepSpec(
            base=SMALL_BASE,
            axes={"dataset": ("arxiv",), "strategy": ("te_cp", "zeppelin")},
        )

    def test_matches_session_compare(self, spec):
        sweep = run_sweep(spec)
        session = Session(model="3b", num_gpus=16, total_context=16 * 1024, num_steps=1)
        compare = session.compare(("te_cp", "zeppelin"))
        assert [r.tokens_per_second for r in sweep.results] == [
            r.tokens_per_second for r in compare.runs
        ]

    def test_meta_records_execution(self, spec):
        sweep = run_sweep(spec)
        meta = sweep.meta
        assert meta["backend"] == "serial"
        assert meta["num_points"] == 2
        assert meta["cache_enabled"] is False
        assert meta["executed_points"] == 2
        assert meta["timing"]["wall_time_s"] > 0

    def test_results_are_structured(self, spec):
        sweep = run_sweep(spec)
        assert all(isinstance(r, RunResult) for r in sweep.results)
        payload = json.loads(sweep.to_json())
        assert set(payload) == {"meta", "points", "results"}
        assert len(payload["points"]) == len(payload["results"]) == 2

    def test_identical_identities_deduped_before_fanout(self):
        """Tagged replicas of one execution identity run once and share it."""
        spec = SweepSpec(
            base=SMALL_BASE,
            axes={"strategy": ("te_cp",), "replica": (0, 1, 2)},
        )
        sweep = run_sweep(spec)
        assert sweep.meta["num_points"] == 3
        assert sweep.meta["executed_points"] == 1
        assert sweep.meta["deduped"] == 2
        dicts = [r.to_dict() for r in sweep.results]
        assert dicts[0] == dicts[1] == dicts[2]
        # Opting out ships every payload; results are identical either way.
        full = run_sweep(spec, dedup=False)
        assert full.meta["executed_points"] == 3
        assert full.meta["deduped"] == 0
        assert full.to_dict()["results"] == sweep.to_dict()["results"]


class TestBackendEquivalence:
    """Serial and process backends must produce identical SweepResults."""

    @pytest.fixture(scope="class")
    def dynamics_spec(self):
        # Includes a dynamics axis: each strategy runs healthy and perturbed.
        return SweepSpec(
            base={**SMALL_BASE, "seed": 3, "num_iterations": 4},
            axes={
                "strategy": ("te_cp", "zeppelin"),
                "perturbation": (None, {"straggler_frac": 0.25}),
            },
        )

    def test_serial_equals_process(self, dynamics_spec):
        serial = run_sweep(dynamics_spec, backend="serial")
        process = run_sweep(dynamics_spec, backend="process", jobs=2)
        assert serial.to_dict()["results"] == process.to_dict()["results"]
        assert [p.to_dict() for p in serial.points] == [
            p.to_dict() for p in process.points
        ]
        assert process.meta["backend"] == "process"
        assert process.meta["jobs"] == 2

    def test_perturbed_points_yield_resilience_results(self, dynamics_spec):
        sweep = run_sweep(dynamics_spec)
        for point, result in sweep:
            expected = ResilienceResult if point["perturbation"] else RunResult
            assert isinstance(result, expected)


class TestResultCache:
    @pytest.fixture
    def spec(self):
        return SweepSpec(
            base=SMALL_BASE,
            axes={"dataset": ("arxiv",), "strategy": ("te_cp", "zeppelin")},
        )

    @pytest.fixture
    def counting(self, monkeypatch):
        """Count sweep-worker invocations (the cache must short-circuit them)."""
        import repro.exec.worker as worker_mod

        calls = []
        original = worker_mod.execute_payload

        def wrapper(payload, pool=None):
            calls.append(payload)
            return original(payload, pool=pool)

        monkeypatch.setattr(worker_mod, "execute_payload", wrapper)
        return calls

    def test_warm_cache_short_circuits_execution(self, spec, tmp_path, counting):
        cold = run_sweep(spec, cache=tmp_path / "cache")
        assert len(counting) == 2
        assert cold.meta["cache_hits"] == 0 and cold.meta["cache_misses"] == 2

        warm = run_sweep(spec, cache=tmp_path / "cache")
        assert len(counting) == 2  # zero new worker invocations
        assert warm.meta["cache_hits"] == 2 and warm.meta["executed_points"] == 0
        assert warm.to_dict()["results"] == cold.to_dict()["results"]

    def test_changed_axis_touches_only_new_points(self, spec, tmp_path, counting):
        run_sweep(spec, cache=tmp_path / "cache")
        assert len(counting) == 2
        wider = SweepSpec(
            base=SMALL_BASE,
            axes={"dataset": ("arxiv",), "strategy": ("te_cp", "zeppelin", "llama_cp")},
        )
        sweep = run_sweep(wider, cache=tmp_path / "cache")
        assert len(counting) == 3  # only llama_cp simulated
        assert sweep.meta["cache_hits"] == 2 and sweep.meta["cache_misses"] == 1

    def test_tags_do_not_affect_cache_identity(self, tmp_path, counting):
        tagged = SweepSpec(
            base={**SMALL_BASE, "variant": "v1"},
            axes={"strategy": ("te_cp",)},
        )
        retagged = SweepSpec(
            base={**SMALL_BASE, "variant": "v2"},
            axes={"strategy": ("te_cp",)},
        )
        run_sweep(tagged, cache=tmp_path / "cache")
        sweep = run_sweep(retagged, cache=tmp_path / "cache")
        assert len(counting) == 1
        assert sweep.meta["cache_hits"] == 1

    def test_corrupt_entry_is_a_miss(self, spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        run_sweep(spec, cache=cache)
        for path in (tmp_path / "cache").glob("*.json"):
            path.write_text("{not json")
        sweep = run_sweep(spec, cache=cache)
        assert sweep.meta["cache_misses"] == 2

    def test_point_key_is_salted_content_hash(self, spec):
        points = spec.points()
        assert point_key(points[0]) != point_key(points[1])
        assert point_key(points[0]) == point_key(points[0])
        assert point_key(points[0], salt="other") != point_key(points[0])

    def test_cache_len_and_clear(self, spec, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert len(cache) == 0
        run_sweep(spec, cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestSweepResultAccessors:
    @pytest.fixture(scope="class")
    def sweep(self):
        spec = SweepSpec(
            base=SMALL_BASE,
            axes={"dataset": ("arxiv", "github"), "strategy": ("te_cp", "zeppelin")},
        )
        return run_sweep(spec)

    def test_column_from_points_and_results(self, sweep):
        assert sweep.column("dataset") == ["arxiv", "arxiv", "github", "github"]
        assert all(v > 0 for v in sweep.column("tokens_per_second"))
        with pytest.raises(KeyError):
            sweep.column("nope")

    def test_pivot(self, sweep):
        table = sweep.pivot("dataset", "strategy")
        assert set(table) == {"arxiv", "github"}
        assert table["arxiv"]["zeppelin"] > table["arxiv"]["te_cp"]

    def test_pivot_duplicate_cell_raises(self, sweep):
        with pytest.raises(ValueError, match="duplicate pivot cell"):
            sweep.pivot("strategy", "strategy")

    def test_groups_preserve_order(self, sweep):
        groups = sweep.groups("dataset")
        assert [key for key, _ in groups] == [("arxiv",), ("github",)]
        for _, cell in groups:
            assert len(cell) == 2

    def test_to_compare(self, sweep):
        _, cell = sweep.groups("dataset")[0]
        compare = cell.to_compare()
        assert compare.baseline == "te_cp"
        assert compare.speedup("zeppelin") > 1.0
        assert compare.config["model"] == "3b"

    def test_mismatched_lengths_raise(self, sweep):
        with pytest.raises(ValueError, match="points but"):
            SweepResult(points=sweep.points, results=sweep.results[:-1])


class TestResultFromDict:
    def test_run_result_round_trip(self):
        result = RunResult(
            strategy="te_cp",
            label="TE CP",
            tokens_per_second=1.5,
            iteration_time_s=2.0,
            total_tokens=3,
            num_batches=1,
            config={"model": "3b"},
        )
        assert result_from_dict(result.to_dict()) == result

    def test_resilience_result_round_trip(self):
        result = ResilienceResult(
            strategy="zeppelin",
            label="Zeppelin",
            recovery="elastic",
            goodput_tokens_per_second=10.0,
            healthy_tokens_per_second=20.0,
            wall_time_s=1.0,
            time_lost_s=0.5,
            restart_count=1,
            num_failures=1,
            completed_iterations=3,
            num_iterations=4,
            final_num_nodes=1,
            total_tokens=10,
            config={"model": "3b"},
            perturbation={"mttf_s": 5.0},
        )
        rebuilt = result_from_dict(result.to_dict())
        assert isinstance(rebuilt, ResilienceResult)
        assert rebuilt == result


class TestExperimentAliases:
    def test_module_basename_resolves(self):
        assert get_experiment("fig09_scalability").name == "fig9"
        assert get_experiment("fig9").name == "fig9"
        assert get_experiment("table2_dataset_distributions").name == "table2"


class TestSessionSweepIntegration:
    def test_sweep_jobs_alone_selects_process_backend(self, monkeypatch):
        import repro.exec.sweep as sweep_mod

        seen = {}
        original = sweep_mod.resolve_backend

        def spy(backend, jobs=1, options=None):
            resolved = original(backend, jobs=jobs, options=options)
            seen["name"] = resolved.name
            return resolved

        monkeypatch.setattr(sweep_mod, "resolve_backend", spy)
        session = Session(model="3b", num_gpus=16, total_context=16 * 1024, num_steps=1)
        session.sweep(datasets=("arxiv",), strategies=("te_cp",), jobs=2)
        assert seen["name"] == "process"

    def test_compare_honours_perturbation_model_subclass(self):
        from repro.dynamics.models import PerturbationConfig, PerturbationModel

        calls = []

        class SpyModel(PerturbationModel):
            def generate(self, cluster, seed=None):
                calls.append(seed)
                return super().generate(cluster, seed=seed)

        session = Session(model="3b", num_gpus=16, total_context=16 * 1024, num_steps=1)
        model = SpyModel(PerturbationConfig(straggler_frac=0.25))
        result = session.compare(
            ("te_cp",), perturbation=model, num_iterations=4
        )
        assert calls, "subclass generate() must be invoked, not a flattened copy"
        assert isinstance(result.runs[0], ResilienceResult)

    def test_session_sweep_accepts_cache(self, tmp_path):
        session = Session(model="3b", num_gpus=16, total_context=16 * 1024, num_steps=1)
        cells = session.sweep(
            datasets=("arxiv",),
            strategies=("te_cp", "zeppelin"),
            cache=tmp_path / "cache",
        )
        again = session.sweep(
            datasets=("arxiv",),
            strategies=("te_cp", "zeppelin"),
            cache=tmp_path / "cache",
        )
        assert len(cells) == len(again) == 1
        assert cells[0].to_dict() == again[0].to_dict()
