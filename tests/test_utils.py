"""Tests for validation helpers and table rendering."""

import pytest

from repro.utils.tables import render_table
from repro.utils.validation import check_fraction, check_in, check_non_negative, check_positive


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 3) == 3
        with pytest.raises(ValueError):
            check_positive("x", 0)
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0) == 0
        with pytest.raises(ValueError):
            check_non_negative("x", -0.1)

    def test_check_fraction(self):
        assert check_fraction("x", 0.5) == 0.5
        assert check_fraction("x", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("x", 1.5)

    def test_check_in(self):
        assert check_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError):
            check_in("mode", "c", ("a", "b"))

    def test_error_messages_name_the_argument(self):
        with pytest.raises(ValueError, match="bandwidth"):
            check_positive("bandwidth", -1)


class TestRenderTable:
    def test_renders_headers_and_rows(self):
        text = render_table(["a", "b"], [[1, 2], [3, 40000]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert "40,000" in text

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = render_table(["v"], [[0.12345], [123.456], [12345.6]])
        assert "0.123" in text
        assert "123.5" in text
