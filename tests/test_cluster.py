"""Tests for the cluster topology model and presets."""

import pytest

from repro.cluster.bandwidth import BandwidthProfile, LinkModel, gBps, gbps
from repro.cluster.presets import cluster_a, cluster_b, cluster_c, make_cluster


class TestLinkModel:
    def test_transfer_time_includes_latency(self):
        link = LinkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-6)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_zero_bytes_is_free(self):
        link = LinkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-6)
        assert link.transfer_time(0) == 0.0

    def test_inverse_bandwidth(self):
        link = LinkModel(bandwidth_bytes_per_s=4e9)
        assert link.inverse_bandwidth == pytest.approx(0.25e-9)

    def test_scaled_multiplies_bandwidth(self):
        link = LinkModel(bandwidth_bytes_per_s=1e9)
        assert link.scaled(4).bandwidth_bytes_per_s == pytest.approx(4e9)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            LinkModel(bandwidth_bytes_per_s=0)

    def test_unit_helpers(self):
        assert gbps(200) == pytest.approx(25e9)
        assert gBps(400) == pytest.approx(400e9)


class TestBandwidthProfile:
    def test_bandwidth_gap_cluster_a(self, cluster_a2):
        # 400 GB/s NVSwitch vs 25 GB/s per NIC -> 16x gap.
        assert cluster_a2.profile.bandwidth_gap == pytest.approx(16.0)

    def test_aggregate_inter_node_link(self, cluster_a2):
        agg = cluster_a2.profile.inter_node_aggregate
        assert agg.bandwidth_bytes_per_s == pytest.approx(4 * 25e9)

    def test_paper_notation_accessors(self, cluster_a2):
        profile = cluster_a2.profile
        assert profile.b_intra == pytest.approx(1 / 400e9)
        assert profile.b_inter == pytest.approx(1 / 25e9)


class TestClusterTopology:
    def test_world_size_and_rank_numbering(self, cluster_a2):
        assert cluster_a2.world_size == 16
        assert cluster_a2.gpus_per_node == 8
        gpu = cluster_a2.gpu(11)
        assert gpu.node_id == 1 and gpu.local_rank == 3

    def test_out_of_range_rank_raises(self, cluster_a2):
        with pytest.raises(KeyError):
            cluster_a2.gpu(99)

    def test_same_node_and_same_nic(self, cluster_a2):
        assert cluster_a2.same_node(0, 7)
        assert not cluster_a2.same_node(7, 8)
        # Cluster A: GPUs 0 and 1 share NIC 0, GPUs 2 and 3 share NIC 1.
        assert cluster_a2.same_nic(0, 1)
        assert not cluster_a2.same_nic(1, 2)

    def test_link_between_tiers(self, cluster_a2):
        assert cluster_a2.link_between(0, 0) is None
        intra = cluster_a2.link_between(0, 5)
        inter = cluster_a2.link_between(0, 9)
        assert intra.bandwidth_bytes_per_s > inter.bandwidth_bytes_per_s

    def test_ranks_on_node(self, cluster_a2):
        assert cluster_a2.ranks_on_node(1) == tuple(range(8, 16))

    def test_nic_affinity_counts(self, cluster_a2, cluster_b2, cluster_c2):
        assert cluster_a2.profile.gpus_per_nic == 2
        assert cluster_b2.profile.gpus_per_nic == 1
        assert cluster_c2.profile.gpus_per_nic == 1

    def test_cluster_c_has_higher_nic_bandwidth(self, cluster_a2, cluster_c2):
        assert (
            cluster_c2.profile.nic.bandwidth_bytes_per_s
            > cluster_a2.profile.nic.bandwidth_bytes_per_s
        )

    def test_describe_mentions_device_type(self, cluster_a2):
        assert "A800" in cluster_a2.describe()


class TestMakeCluster:
    def test_invalid_device_type(self):
        with pytest.raises(ValueError):
            make_cluster("x", num_nodes=1, device_type="TPU")

    def test_nics_must_divide_gpus(self):
        with pytest.raises(ValueError):
            make_cluster("x", num_nodes=1, gpus_per_node=8, nics_per_node=3)

    def test_presets_scale_with_node_count(self):
        assert cluster_a(num_nodes=4).world_size == 32
        assert cluster_b(num_nodes=1).world_size == 8
        assert cluster_c(num_nodes=2).num_nodes == 2

    def test_every_gpu_has_a_nic(self, tiny_cluster):
        for rank in tiny_cluster.iter_ranks():
            nic = tiny_cluster.nic_of(rank)
            assert tiny_cluster.gpu(rank).local_rank in nic.gpu_local_ranks
