"""Tests for the attention engine: queues, ring rounds, routed hops."""

import pytest

from repro.core.attention_engine import AttentionEngine, causal_pairs_between
from repro.core.partitioner import SequencePartitioner
from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.routing import RoutingLayer
from repro.core.zones import Zone
from repro.costs.comm import CommCostModel
from repro.costs.compute import ComputeCostModel
from repro.data.sampler import Batch
from repro.sim.engine import Simulator


def make_engine(cluster, routing_enabled=True, balanced=True):
    compute = ComputeCostModel(
        peak_flops=cluster.peak_flops_per_gpu, device_type=cluster.device_type
    )
    comm = CommCostModel(cluster)
    routing = RoutingLayer(cluster=cluster, enabled=routing_enabled)
    return AttentionEngine(
        cluster=cluster,
        compute=compute,
        comm=comm,
        routing=routing,
        balanced_chunking=balanced,
    )


class TestCausalPairsBetween:
    def test_full_visibility(self):
        # Queries after the whole KV range see every key.
        assert causal_pairs_between((10, 5), (0, 5)) == 25

    def test_no_visibility(self):
        # Queries entirely before the KV range see nothing.
        assert causal_pairs_between((0, 5), (10, 5)) == 0

    def test_diagonal_block(self):
        # Same range: the usual lower-triangular count.
        assert causal_pairs_between((0, 4), (0, 4)) == 4 * 5 / 2

    def test_partial_overlap(self):
        # Queries 2..5 against keys 4..7: query 4 sees 1 key, query 5 sees 2.
        assert causal_pairs_between((2, 4), (4, 4)) == 3

    def test_zero_length_ranges(self):
        assert causal_pairs_between((0, 0), (0, 5)) == 0
        assert causal_pairs_between((0, 5), (3, 0)) == 0

    def test_whole_sequence_sums_to_causal_total(self):
        seq = 64
        total = causal_pairs_between((0, seq), (0, seq))
        assert total == seq * (seq + 1) / 2


class TestQueueConstruction:
    def test_queues_split_by_zone(self, cluster_a2, mixed_batch):
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(
            mixed_batch
        )
        engine = make_engine(cluster_a2)
        queues = engine.build_queues(partition)
        zones_in_partition = {p.zone for ps in partition.placements.values() for p in ps}
        if Zone.LOCAL in zones_in_partition:
            assert queues.local
        assert len(queues.all_rings()) == len(partition.rings)

    def test_ring_group_work_conserves_causal_pairs(self, cluster_a2, mixed_batch, spec_7b):
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(
            mixed_batch
        )
        engine = make_engine(cluster_a2)
        queues = engine.build_queues(partition)
        for group in queues.all_rings():
            seq_len = group.spec.seq_len
            total_pairs = sum(
                group.round_pairs(i, r)
                for i in range(group.group_size)
                for r in range(group.group_size)
            )
            assert total_pairs == pytest.approx(seq_len * (seq_len + 1) / 2)


class TestEmission:
    def test_plan_contains_all_task_kinds(self, cluster_a2, mixed_batch, spec_7b):
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(
            mixed_batch
        )
        engine = make_engine(cluster_a2)
        plan = ExecutionPlan(name="test")
        engine.emit_attention(plan, partition, spec_7b)
        kinds = {t.kind for t in plan.tasks}
        assert TaskKind.ATTENTION in kinds
        assert TaskKind.INTRA_COMM in kinds or TaskKind.INTER_COMM in kinds

    def test_routed_plan_has_dispatch_and_combine(self, cluster_a2, spec_7b):
        # A single cluster-spanning sequence forces inter-node hops.
        batch = Batch.from_lengths([16 * 4096])
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(batch)
        engine = make_engine(cluster_a2, routing_enabled=True)
        plan = ExecutionPlan(name="routed")
        engine.emit_attention(plan, partition, spec_7b)
        kinds = {t.kind for t in plan.tasks}
        assert TaskKind.DISPATCH in kinds
        assert TaskKind.COMBINE in kinds

    def test_unrouted_plan_has_no_dispatch(self, cluster_a2, spec_7b):
        batch = Batch.from_lengths([16 * 4096])
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(batch)
        engine = make_engine(cluster_a2, routing_enabled=False)
        plan = ExecutionPlan(name="direct")
        engine.emit_attention(plan, partition, spec_7b)
        kinds = {t.kind for t in plan.tasks}
        assert TaskKind.DISPATCH not in kinds

    def test_routing_reduces_simulated_makespan(self, cluster_a2, spec_7b):
        batch = Batch.from_lengths([16 * 4096])
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(batch)
        sim = Simulator(record_trace=False)

        def makespan(routed):
            engine = make_engine(cluster_a2, routing_enabled=routed)
            plan = ExecutionPlan(name=f"routing={routed}")
            engine.emit_attention(plan, partition, spec_7b)
            return sim.run(plan).makespan_s

        assert makespan(True) < makespan(False)

    def test_local_only_batch_emits_no_communication(self, cluster_a2, short_batch, spec_7b):
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(
            short_batch
        )
        engine = make_engine(cluster_a2)
        plan = ExecutionPlan(name="local")
        engine.emit_attention(plan, partition, spec_7b)
        comm_time = sum(
            t.duration_s for t in plan.tasks if t.kind.is_communication
        )
        assert comm_time == 0.0

    def test_backward_phase_is_heavier_than_forward(self, cluster_a2, mixed_batch, spec_7b):
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(
            mixed_batch
        )
        engine = make_engine(cluster_a2)
        fwd = ExecutionPlan(name="fwd")
        bwd = ExecutionPlan(name="bwd")
        engine.emit_attention(fwd, partition, spec_7b, phase="forward")
        engine.emit_attention(bwd, partition, spec_7b, phase="backward")
        fwd_total = sum(t.duration_s for t in fwd.tasks)
        bwd_total = sum(t.duration_s for t in bwd.tasks)
        assert bwd_total > fwd_total

    def test_rank_tasks_attributed_to_placement_holders(self, cluster_a2, mixed_batch, spec_7b):
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(
            mixed_batch
        )
        engine = make_engine(cluster_a2)
        plan = ExecutionPlan(name="attr")
        rank_tasks = engine.emit_attention(plan, partition, spec_7b)
        for rank, task_ids in rank_tasks.items():
            has_placement = bool(partition.placements.get(rank))
            if task_ids:
                assert has_placement

    def test_invalid_phase_rejected(self, cluster_a2, mixed_batch, spec_7b):
        partition = SequencePartitioner(cluster=cluster_a2, token_budget=4096).partition(
            mixed_batch
        )
        engine = make_engine(cluster_a2)
        with pytest.raises(ValueError):
            engine.emit_attention(ExecutionPlan(), partition, spec_7b, phase="sideways")
