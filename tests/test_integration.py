"""End-to-end integration tests across the whole stack.

These tests check the paper's headline claims on small but realistic
configurations: partitioner -> attention engine -> routing -> remapping ->
simulator -> throughput, compared against every baseline on identical batches.
"""

import pytest

from repro.core.plan import TaskKind
from repro.core.strategy import StrategyContext
from repro.core.zeppelin import ZeppelinStrategy
from repro.data.datasets import SyntheticDataset
from repro.sim.engine import Simulator
from repro.training.runner import TrainingRun, TrainingRunConfig
from repro.training.throughput import measure_throughput


class TestHeadlineClaim:
    """Zeppelin outperforms every baseline on the paper's evaluation datasets."""

    @pytest.mark.parametrize("dataset", ["arxiv", "github", "prolong64k"])
    def test_zeppelin_wins_on_every_dataset(self, dataset):
        run = TrainingRun(
            TrainingRunConfig(
                model="7b",
                num_gpus=16,
                dataset=dataset,
                total_context=64 * 1024,
                num_steps=2,
                seed=3,
            )
        )
        reports = run.compare(("te_cp", "llama_cp", "hybrid_dp", "zeppelin"))
        by_name = {r.strategy: r.tokens_per_second for r in reports}
        zeppelin = by_name["Zeppelin"]
        assert zeppelin == max(by_name.values())
        # The paper reports 1.8x-6.6x over TE CP across configurations.
        assert zeppelin / by_name["TE CP"] > 1.5

    def test_speedup_larger_for_arxiv_than_prolong(self):
        """Datasets with shorter length distributions partition more efficiently
        (the Fig. 8 observation)."""
        speedups = {}
        for dataset in ("arxiv", "prolong64k"):
            run = TrainingRun(
                TrainingRunConfig(
                    model="7b",
                    num_gpus=16,
                    dataset=dataset,
                    total_context=64 * 1024,
                    num_steps=2,
                    seed=0,
                )
            )
            reports = run.compare(("te_cp", "zeppelin"))
            speedups[dataset] = reports[1].tokens_per_second / reports[0].tokens_per_second
        assert speedups["arxiv"] > speedups["prolong64k"]


class TestMoEBehaviour:
    def test_hybrid_dp_is_weak_for_moe(self):
        """Hybrid DP's FLOP-based assignment underperforms for the MoE model
        (the Fig. 8 bottom-row observation)."""
        run = TrainingRun(
            TrainingRunConfig(
                model="8x550m",
                num_gpus=16,
                dataset="arxiv",
                total_context=64 * 1024,
                num_steps=2,
            )
        )
        reports = run.compare(("te_cp", "llama_cp", "hybrid_dp", "zeppelin"))
        by_name = {r.strategy: r.tokens_per_second for r in reports}
        assert by_name["Hybrid DP"] < by_name["Zeppelin"]
        assert by_name["Zeppelin"] == max(by_name.values())


class TestPlanConsistency:
    def test_forward_and_backward_plans_simulate_for_every_strategy(self, context_16):
        dataset = SyntheticDataset(name="github", total_context=64 * 1024, seed=11)
        batch = dataset.batch()
        run = TrainingRun(
            TrainingRunConfig(
                model="7b", num_gpus=16, dataset="github", total_context=64 * 1024, num_steps=1
            )
        )
        sim = Simulator(record_trace=False)
        for name in ("te_cp", "llama_cp", "hybrid_dp", "zeppelin", "packing"):
            strategy = run.strategy(name)
            for phase in ("forward", "backward"):
                plan = strategy.plan_layer(batch, phase=phase)
                result = sim.run(plan)
                assert result.makespan_s > 0
                assert result.makespan_s >= plan.critical_path_lower_bound() - 1e-12

    def test_zeppelin_attention_work_matches_batch_causal_pairs(self, context_16):
        """The partitioned + chunked attention work equals the monolithic causal
        work of the batch (no work is lost or duplicated by scheduling)."""
        dataset = SyntheticDataset(name="arxiv", total_context=64 * 1024, seed=2)
        batch = dataset.batch()
        strategy = ZeppelinStrategy(context_16, use_remapping=False)
        plan = strategy.plan_layer(batch)
        attn_seconds = sum(
            t.duration_s for t in plan.tasks if t.kind == TaskKind.ATTENTION
        )
        expected_pairs = sum(l * (l + 1) / 2 for l in batch.lengths)
        expected_seconds = strategy.compute.attention_pairs_time(
            strategy.spec, expected_pairs, num_layers=1
        )
        # Kernel overheads add a little per task; the totals agree within 25%.
        assert attn_seconds == pytest.approx(expected_seconds, rel=0.25)


class TestTensorParallelConfiguration:
    def test_13b_with_tp2_runs_and_zeppelin_wins(self):
        run = TrainingRun(
            TrainingRunConfig(
                model="13b",
                num_gpus=32,
                dataset="arxiv",
                total_context=64 * 1024,
                tensor_parallel=2,
                num_steps=1,
            )
        )
        reports = run.compare(("te_cp", "zeppelin"))
        assert reports[1].tokens_per_second > reports[0].tokens_per_second


class TestClusterCInfrastructure:
    def test_30b_on_cluster_c(self):
        run = TrainingRun(
            TrainingRunConfig(
                model="30b",
                cluster_preset="C",
                num_gpus=32,
                dataset="github",
                total_context=64 * 1024,
                tensor_parallel=2,
                num_steps=1,
            )
        )
        reports = run.compare(("te_cp", "llama_cp", "zeppelin"))
        by_name = {r.strategy: r.tokens_per_second for r in reports}
        assert by_name["Zeppelin"] == max(by_name.values())
