"""Tests for packed variable-length attention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.refattn.attention import random_qkv
from repro.refattn.varlen import (
    block_diagonal_causal_mask,
    cross_sequence_flops_fraction,
    per_sequence_attention,
    varlen_attention,
)


class TestBlockDiagonalMask:
    def test_blocks_are_causal_and_disjoint(self):
        mask = block_diagonal_causal_mask([2, 3])
        # First sequence occupies rows/cols 0-1.
        assert mask[0, 0] and not mask[0, 1]
        assert mask[1, 0] and mask[1, 1]
        # No attention across the boundary.
        assert not mask[2, 0] and not mask[2, 1]
        assert not mask[0, 2]
        # Second sequence causal within itself.
        assert mask[4, 2] and mask[4, 3] and mask[4, 4]

    def test_total_true_entries(self):
        lengths = [3, 5, 2]
        mask = block_diagonal_causal_mask(lengths)
        expected = sum(l * (l + 1) // 2 for l in lengths)
        assert int(mask.sum()) == expected

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ValueError):
            block_diagonal_causal_mask([])
        with pytest.raises(ValueError):
            block_diagonal_causal_mask([3, 0])


class TestVarlenAttention:
    def test_block_diagonal_matches_per_sequence(self):
        lengths = [5, 7, 3]
        q, k, v = random_qkv(sum(lengths), heads=2, head_dim=4, seed=1)
        packed = varlen_attention(q, k, v, lengths, cross_sequence=False)
        reference = per_sequence_attention(q, k, v, lengths)
        np.testing.assert_allclose(packed, reference, atol=1e-10)

    def test_cross_sequence_differs_from_per_sequence(self):
        lengths = [4, 4]
        q, k, v = random_qkv(8, heads=1, head_dim=4, seed=2)
        naive = varlen_attention(q, k, v, lengths, cross_sequence=True)
        correct = per_sequence_attention(q, k, v, lengths)
        # The second sequence's outputs are polluted by the first sequence.
        assert not np.allclose(naive[:, 4:], correct[:, 4:])
        # The first sequence (earliest positions) is unaffected by packing.
        np.testing.assert_allclose(naive[:, :4], correct[:, :4], atol=1e-10)

    def test_single_sequence_cross_flag_is_irrelevant(self):
        q, k, v = random_qkv(9, heads=1, head_dim=4, seed=3)
        a = varlen_attention(q, k, v, [9], cross_sequence=True)
        b = varlen_attention(q, k, v, [9], cross_sequence=False)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_length_mismatch_raises(self):
        q, k, v = random_qkv(8)
        with pytest.raises(ValueError):
            varlen_attention(q, k, v, [3, 3])

    @settings(max_examples=20, deadline=None)
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=4),
        seed=st.integers(min_value=0, max_value=30),
    )
    def test_property_block_diagonal_equals_per_sequence(self, lengths, seed):
        q, k, v = random_qkv(sum(lengths), heads=1, head_dim=3, seed=seed)
        packed = varlen_attention(q, k, v, lengths, cross_sequence=False)
        reference = per_sequence_attention(q, k, v, lengths)
        np.testing.assert_allclose(packed, reference, atol=1e-8)


class TestCrossSequenceFraction:
    def test_zero_for_single_sequence(self):
        assert cross_sequence_flops_fraction([100]) == 0.0

    def test_grows_with_more_short_sequences(self):
        few = cross_sequence_flops_fraction([512, 512])
        many = cross_sequence_flops_fraction([64] * 16)
        assert many > few > 0.0

    def test_matches_mask_cardinality(self):
        lengths = [3, 5, 2]
        total = sum(lengths)
        naive = total * (total + 1) / 2
        useful = sum(l * (l + 1) / 2 for l in lengths)
        expected = 1.0 - useful / naive
        assert cross_sequence_flops_fraction(lengths) == pytest.approx(expected)

    def test_empty_lengths(self):
        assert cross_sequence_flops_fraction([]) == 0.0
