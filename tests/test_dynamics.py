"""Tests for repro.dynamics: perturbation models, schedules, recovery, API."""

import pytest

from repro.api import Session
from repro.cluster.presets import cluster_a
from repro.dynamics.events import (
    GpuSlowdown,
    NicDegrade,
    NodeFailure,
    PerturbationSchedule,
)
from repro.dynamics.models import PerturbationConfig, PerturbationModel, as_model
from repro.dynamics.recovery import (
    CheckpointRestart,
    ElasticRepartition,
    FailureContext,
    RecoveryAction,
    as_policy,
    run_resilient,
)
from repro.registry import available_recoveries, get_recovery
from repro.results import ResilienceResult


@pytest.fixture(scope="module")
def cluster():
    return cluster_a(num_nodes=2)


@pytest.fixture(scope="module")
def session():
    return Session(model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1)


class TestPerturbationConfig:
    def test_null_config_generates_nothing(self, cluster):
        config = PerturbationConfig()
        assert config.is_null
        schedule = PerturbationModel(config).generate(cluster)
        assert len(schedule) == 0 and not schedule

    def test_validation(self):
        with pytest.raises(ValueError):
            PerturbationConfig(straggler_frac=1.5)
        with pytest.raises(ValueError):
            PerturbationConfig(straggler_slowdown=0.0)
        with pytest.raises(ValueError):
            PerturbationConfig(mttf_s=-1.0)
        with pytest.raises(ValueError):
            PerturbationConfig(horizon_s=0.0)

    def test_as_model_accepts_config_model_and_mapping(self):
        config = PerturbationConfig(straggler_frac=0.25)
        assert as_model(config).config is config
        model = PerturbationModel(config)
        assert as_model(model) is model
        assert as_model({"straggler_frac": 0.25}).config.straggler_frac == 0.25
        with pytest.raises(TypeError):
            as_model(42)


class TestPerturbationModel:
    def test_same_seed_same_schedule(self, cluster):
        config = PerturbationConfig(
            seed=7, mttf_s=100.0, straggler_frac=0.25, nic_degrade_frac=0.5
        )
        a = PerturbationModel(config).generate(cluster)
        b = PerturbationModel(config).generate(cluster)
        assert a.events == b.events and len(a) > 0

    def test_different_seed_different_schedule(self, cluster):
        base = PerturbationConfig(mttf_s=100.0, straggler_frac=0.25)
        a = PerturbationModel(base.replace(seed=1)).generate(cluster)
        b = PerturbationModel(base.replace(seed=2)).generate(cluster)
        assert a.events != b.events

    def test_config_seed_overrides_fallback(self, cluster):
        config = PerturbationConfig(seed=5, straggler_frac=0.25)
        model = PerturbationModel(config)
        assert model.generate(cluster, seed=1).events == model.generate(
            cluster, seed=2
        ).events

    def test_fallback_seed_used_when_config_seed_unset(self, cluster):
        model = PerturbationModel(straggler_frac=0.25)
        a = model.generate(cluster, seed=1)
        b = model.generate(cluster, seed=2)
        assert a.events != b.events

    def test_straggler_count_and_bounds(self, cluster):
        schedule = PerturbationModel(
            straggler_frac=0.25, straggler_slowdown=0.6, seed=0
        ).generate(cluster)
        stragglers = [e for e in schedule.events if isinstance(e, GpuSlowdown)]
        assert len(stragglers) == 4  # 25% of 16 GPUs
        assert len({e.rank for e in stragglers}) == 4
        for event in stragglers:
            assert event.time_s == 0.0
            assert 0.0 < event.factor <= 1.0

    def test_failures_respect_cap_horizon_and_topology(self, cluster):
        schedule = PerturbationModel(
            mttf_s=10.0, max_failures=5, horizon_s=1000.0, seed=3
        ).generate(cluster)
        failures = schedule.failures
        # Only 2 nodes exist, so at most 2 failures regardless of the cap.
        assert 1 <= len(failures) <= 2
        assert len({f.node_id for f in failures}) == len(failures)
        for f in failures:
            assert 0 <= f.node_id < cluster.num_nodes
            assert 0.0 < f.time_s <= 1000.0

    def test_nic_degradation_targets_existing_nics(self, cluster):
        schedule = PerturbationModel(nic_degrade_frac=0.5, seed=0).generate(cluster)
        degrades = [e for e in schedule.events if isinstance(e, NicDegrade)]
        assert len(degrades) == 4  # 50% of 8 NICs
        num_nics = cluster.num_nodes * cluster.profile.nics_per_node
        for event in degrades:
            assert 0 <= event.nic_id < num_nics


class TestPerturbationSchedule:
    def test_events_sorted_by_time(self):
        schedule = PerturbationSchedule(
            events=(
                NodeFailure(time_s=5.0, node_id=0),
                GpuSlowdown(time_s=1.0, rank=0, factor=0.5),
            )
        )
        assert [e.time_s for e in schedule.events] == [1.0, 5.0]

    def test_views_and_next_failure(self):
        schedule = PerturbationSchedule(
            events=(
                GpuSlowdown(time_s=0.0, rank=0, factor=0.5),
                NodeFailure(time_s=2.0, node_id=1),
                NodeFailure(time_s=8.0, node_id=0),
            )
        )
        assert len(schedule.failures) == 2
        assert len(schedule.slowdowns) == 1
        assert schedule.without_failures().failures == ()
        assert schedule.next_failure_after(0.0).time_s == 2.0
        assert schedule.next_failure_after(2.0).time_s == 8.0
        assert schedule.next_failure_after(8.0) is None

    def test_active_factors_latest_event_wins(self, cluster):
        schedule = PerturbationSchedule(
            events=(
                GpuSlowdown(time_s=0.0, rank=3, factor=0.5),
                GpuSlowdown(time_s=5.0, rank=3, factor=0.8),
            )
        )
        assert schedule.active_factors(1.0, cluster) == {"compute:3": 0.5}
        assert schedule.active_factors(6.0, cluster) == {"compute:3": 0.8}

    def test_failure_compiles_to_all_node_resources(self, cluster):
        schedule = PerturbationSchedule(events=(NodeFailure(time_s=1.0, node_id=1),))
        (event,) = schedule.resource_events(cluster)
        assert event.is_failure
        # 8 GPUs x (compute + nvl tx/rx) + 4 NICs x (tx/rx) = 32 resources.
        assert len(event.resources) == 32
        assert "compute:8" in event.resources
        assert "nic:4:tx" in event.resources
        assert "compute:0" not in event.resources

    def test_nic_degrade_compiles_to_both_directions(self, cluster):
        schedule = PerturbationSchedule(events=(NicDegrade(time_s=0.0, nic_id=2, factor=0.5),))
        (event,) = schedule.resource_events(cluster)
        assert set(event.resources) == {"nic:2:tx", "nic:2:rx"}
        assert event.factor == 0.5

    def test_to_dicts_round_trips_kinds(self):
        schedule = PerturbationSchedule(
            events=(
                GpuSlowdown(time_s=0.0, rank=1, factor=0.5),
                NicDegrade(time_s=1.0, nic_id=0, factor=0.6),
                NodeFailure(time_s=2.0, node_id=0),
            )
        )
        kinds = [row["kind"] for row in schedule.to_dicts()]
        assert kinds == ["gpu_slowdown", "nic_degrade", "node_failure"]


class TestRecoveryPolicies:
    def test_registry_exposes_builtin_policies(self):
        assert "checkpoint_restart" in available_recoveries()
        assert "elastic" in available_recoveries()
        assert get_recovery("checkpoint_restart").obj is CheckpointRestart

    def test_as_policy_resolves_names_and_instances(self):
        policy = as_policy("elastic")
        assert isinstance(policy, ElasticRepartition)
        assert as_policy(policy) is policy
        custom = as_policy("checkpoint_restart", restart_cost_s=5.0)
        assert custom.restart_cost_s == 5.0
        with pytest.raises(ValueError):
            as_policy(policy, restart_cost_s=5.0)

    def _context(self, **overrides):
        defaults = dict(
            failure=NodeFailure(time_s=10.0, node_id=0),
            time_s=10.0,
            iteration_index=5,
            partial_iteration_s=0.3,
            alive_nodes=2,
            iters_since_checkpoint=3,
            tokens_since_checkpoint=999,
            time_since_checkpoint_s=2.5,
        )
        defaults.update(overrides)
        return FailureContext(**defaults)

    def test_checkpoint_restart_rolls_back_to_checkpoint(self):
        policy = CheckpointRestart(restart_cost_s=60.0)
        action = policy.recover(self._context())
        assert action.downtime_s == 60.0
        assert action.rollback_iterations == 3
        assert not action.drop_node

    def test_elastic_drops_node_without_rollback(self):
        policy = ElasticRepartition(replan_cost_s=5.0)
        action = policy.recover(self._context())
        assert action.downtime_s == 5.0
        assert action.rollback_iterations == 0
        assert action.drop_node

    def test_recovery_action_validation(self):
        with pytest.raises(ValueError):
            RecoveryAction(downtime_s=-1.0)


class TestRunResilient:
    def test_no_events_matches_healthy_throughput(self, session):
        healthy = session.run("zeppelin")
        report = run_resilient(
            session,
            "zeppelin",
            schedule=PerturbationSchedule(),
            policy=ElasticRepartition(),
            num_iterations=4,
        )
        assert report.num_failures == 0 and report.restart_count == 0
        assert report.goodput_tokens_per_second == pytest.approx(
            healthy.tokens_per_second
        )
        assert report.completed_iterations == 4
        assert report.final_num_nodes == session.config.num_nodes

    def test_failure_with_elastic_shrinks_and_degrades(self, session):
        schedule = PerturbationSchedule(events=(NodeFailure(time_s=0.5, node_id=1),))
        healthy = session.run("zeppelin")
        report = run_resilient(
            session,
            "zeppelin",
            schedule=schedule,
            policy=ElasticRepartition(replan_cost_s=1.0),
            num_iterations=6,
        )
        assert report.num_failures == 1
        assert report.restart_count == 1
        assert report.final_num_nodes == session.config.num_nodes - 1
        assert report.goodput_tokens_per_second < healthy.tokens_per_second
        assert report.time_lost_s > 0
        # All requested iterations still complete on the survivors.
        assert report.completed_iterations == 6

    def test_failure_with_checkpoint_restart_recomputes(self, session):
        schedule = PerturbationSchedule(events=(NodeFailure(time_s=1.0, node_id=0),))
        policy = CheckpointRestart(
            checkpoint_interval=4, checkpoint_cost_s=0.1, restart_cost_s=10.0
        )
        report = run_resilient(
            session, "zeppelin", schedule=schedule, policy=policy, num_iterations=8
        )
        assert report.num_failures == 1
        assert report.final_num_nodes == session.config.num_nodes  # hot spare
        assert report.completed_iterations == 8
        assert report.time_lost_s >= 10.0  # at least the restart cost
        # Useful tokens never exceed the requested workload.
        batch_tokens = session.batches[0].total_tokens
        assert report.useful_tokens == 8 * batch_tokens

    def test_partial_rollback_discards_only_rolled_back_iterations(self, session):
        """A custom policy rolling back 1 of 3 iterations must only discount
        that iteration's tokens (regression: all since-checkpoint tokens were
        subtracted while only one iteration was redone)."""

        class RollbackOne(CheckpointRestart):
            def recover(self, ctx):
                return RecoveryAction(downtime_s=1.0, rollback_iterations=1)

        schedule = PerturbationSchedule(events=(NodeFailure(time_s=1.0, node_id=0),))
        report = run_resilient(
            session,
            "zeppelin",
            schedule=schedule,
            policy=RollbackOne(checkpoint_interval=100, checkpoint_cost_s=0.0),
            num_iterations=8,
        )
        batch_tokens = session.batches[0].total_tokens
        assert report.completed_iterations == 8
        # Every completed iteration's tokens are counted exactly once.
        assert report.useful_tokens == 8 * batch_tokens

    def test_cluster_death_ends_run_early(self, session):
        schedule = PerturbationSchedule(
            events=(
                NodeFailure(time_s=0.2, node_id=0),
                NodeFailure(time_s=0.4, node_id=1),
            )
        )
        report = run_resilient(
            session,
            "zeppelin",
            schedule=schedule,
            policy=ElasticRepartition(replan_cost_s=0.0),
            num_iterations=50,
        )
        assert report.cluster_died
        assert report.final_num_nodes == 0
        assert report.completed_iterations < 50

    def test_stragglers_slow_the_run_down(self, session):
        schedule = PerturbationSchedule(
            events=tuple(
                GpuSlowdown(time_s=0.0, rank=r, factor=0.5) for r in range(4)
            )
        )
        healthy = session.run("zeppelin")
        report = run_resilient(
            session,
            "zeppelin",
            schedule=schedule,
            policy=ElasticRepartition(),
            num_iterations=4,
        )
        assert report.goodput_tokens_per_second < healthy.tokens_per_second


class TestSessionResilienceSurface:
    def test_run_with_perturbation_returns_resilience_result(self, session):
        result = session.run(
            "zeppelin",
            perturbation={"straggler_frac": 0.25},
            recovery="elastic",
            num_iterations=4,
        )
        assert isinstance(result, ResilienceResult)
        assert result.recovery == "elastic"
        assert result.tokens_per_second == result.goodput_tokens_per_second
        assert 0.0 < result.goodput_fraction <= 1.0
        payload = result.to_dict()
        assert payload["perturbation"]["straggler_frac"] == 0.25
        assert payload["config"]["model"] == "3b"

    def test_run_without_perturbation_unchanged(self, session):
        result = session.run("zeppelin")
        assert not isinstance(result, ResilienceResult)

    def test_deterministic_given_seed(self):
        def one() -> dict:
            sess = Session(
                model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1, seed=11
            )
            return sess.run(
                "zeppelin",
                perturbation={"mttf_s": 5.0, "straggler_frac": 0.25},
                recovery="checkpoint_restart",
                num_iterations=8,
            ).to_dict()

        assert one() == one()  # bit-for-bit

    def test_seed_drives_the_perturbation_schedule(self):
        def goodput(seed: int) -> float:
            sess = Session(
                model="3b",
                num_gpus=16,
                total_context=32 * 1024,
                num_steps=1,
                seed=seed,
            )
            return sess.run(
                "zeppelin",
                perturbation={"mttf_s": 3.0},
                num_iterations=8,
            ).goodput_tokens_per_second

        assert goodput(1) != goodput(2)

    def test_compare_under_perturbation(self, session):
        result = session.compare(
            ("te_cp", "zeppelin"),
            perturbation={"straggler_frac": 0.25},
            recovery="elastic",
            num_iterations=4,
        )
        assert [r.strategy for r in result.runs] == ["te_cp", "zeppelin"]
        for run in result.runs:
            assert isinstance(run, ResilienceResult)
        assert result.speedup("te_cp") == pytest.approx(1.0)
        rows = result.rows()
        assert rows[0]["strategy"] == "TE CP"
        result.to_json()  # serialises without error
