"""Tests for the sweep-execution CLI surface (`repro sweep`, experiment flags)."""

import json
import re

import pytest

from repro.cli import CONFIG_ERROR_EXIT_CODE, build_parser, main
from repro.registry import register_experiment, unregister_experiment


class TestSweepParser:
    def test_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.model == "7b"
        assert args.clusters == ["A"]
        assert args.gpus == [16]
        assert args.backend is None
        assert args.jobs == 1
        assert args.no_cache is False

    def test_multi_value_axes(self):
        args = build_parser().parse_args(
            ["sweep", "--gpus", "16", "32", "--datasets", "arxiv", "github",
             "--backend", "process", "--jobs", "4"]
        )
        assert args.gpus == [16, 32]
        assert args.datasets == ["arxiv", "github"]
        assert args.backend == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "quantum"])

    def test_experiment_accepts_alias(self):
        args = build_parser().parse_args(["experiment", "fig09_scalability"])
        assert args.name == "fig09_scalability"


class TestSweepCommand:
    _SMALL = [
        "sweep", "--model", "3b", "--context-k", "16", "--steps", "1",
        "--strategies", "te_cp", "zeppelin", "--no-cache",
    ]

    def test_table_output_with_meta_line(self, capsys):
        assert main(self._SMALL) == 0
        out = capsys.readouterr().out
        assert "te_cp" in out and "zeppelin" in out
        assert "tokens/second" in out
        assert "via serial backend" in out

    def test_json_output_includes_meta(self, capsys):
        assert main(self._SMALL + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        meta = payload["meta"]
        assert meta["backend"] == "serial"
        assert meta["num_points"] == 2
        assert "cache_hits" in meta and "wall_time_s" in meta["timing"]
        assert len(payload["points"]) == len(payload["results"]) == 2
        assert payload["results"][0]["tokens_per_second"] > 0

    def test_cached_sweep_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = [a for a in self._SMALL if a != "--no-cache"] + ["--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["meta"]["cache_misses"] == 2
        assert second["meta"]["cache_hits"] == 2
        assert second["meta"]["executed_points"] == 0
        assert first["results"] == second["results"]

    def test_bad_gpus_exit_2(self, capsys):
        assert main(["sweep", "--gpus", "12", "--no-cache"]) == CONFIG_ERROR_EXIT_CODE
        assert "multiple of 8" in capsys.readouterr().err

    def test_bad_axis_values_exit_2(self, capsys):
        assert main(["sweep", "--context-k", "0", "--no-cache"]) == CONFIG_ERROR_EXIT_CODE
        assert "total_context" in capsys.readouterr().err
        assert main(["sweep", "--gpus", "-8", "--no-cache"]) == CONFIG_ERROR_EXIT_CODE
        assert "num_gpus" in capsys.readouterr().err
        assert main(
            ["sweep", "--tensor-parallel", "0", "--no-cache"]
        ) == CONFIG_ERROR_EXIT_CODE
        assert "tensor_parallel" in capsys.readouterr().err

    def test_unknown_dataset_exit_2(self, capsys):
        code = main(["sweep", "--datasets", "nope", "--no-cache"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "nope" in capsys.readouterr().err

    def test_dynamics_axis_reports_goodput(self, capsys):
        code = main(
            self._SMALL + ["--straggler-frac", "0.25", "--iterations", "4"]
        )
        assert code == 0
        assert "goodput" in capsys.readouterr().out


class TestExperimentExecutionFlags:
    @pytest.fixture
    def recording(self):
        calls = []

        @register_experiment("_cli_exec_probe", description="probe")
        def probe(seed: int = 0, backend=None, jobs: int = 1, use_cache: bool = False):
            from repro.experiments.common import ExperimentResult

            calls.append({"seed": seed, "backend": backend, "jobs": jobs,
                          "use_cache": use_cache})
            return ExperimentResult(
                name="probe", description="d", headers=["x"], rows=[[1]]
            )

        yield calls
        unregister_experiment("_cli_exec_probe")

    def test_flags_forwarded(self, recording, capsys):
        code = main(
            ["experiment", "_cli_exec_probe", "--backend", "process", "--jobs", "2"]
        )
        assert code == 0
        assert recording == [
            {"seed": 0, "backend": "process", "jobs": 2, "use_cache": True}
        ]

    def test_cache_on_by_default_and_no_cache_disables(self, recording, capsys):
        assert main(["experiment", "_cli_exec_probe"]) == 0
        assert main(["experiment", "_cli_exec_probe", "--no-cache"]) == 0
        assert [c["use_cache"] for c in recording] == [True, False]

    def test_exec_flags_rejected_for_plain_experiments(self, capsys):
        code = main(["experiment", "table2", "--jobs", "2"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "sweep execution" in capsys.readouterr().err

    def test_plain_experiment_without_flags_still_works(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "arxiv" in capsys.readouterr().out


class TestListBackends:
    def test_list_shows_execution_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "execution backends:" in out
        assert "serial" in out and "process" in out
        assert "cluster" in out

    def test_list_shows_batch_submitters(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "batch submitters:" in out
        assert "slurm" in out and "sge" in out and "fake" in out
        assert "pbs" in out

    def test_list_shows_analysis_rules(self, capsys):
        """The rules registry renders through the same table as the others."""
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "analysis rules:" in out
        for rule_id in ("d001", "d002", "d003", "e001", "r001", "s001"):
            assert rule_id in out
        # Same table shape as every other section: two-space indent, name
        # padded to the shared width, description starting at one column.
        rows = {
            line.split()[0]: line
            for line in out.splitlines()
            if line.startswith("  ")
        }
        desc_col = re.match(r"  \S+\s+", rows["serial"]).end()
        assert re.match(r"  \S+\s+", rows["d001"]).end() == desc_col


class TestAnalyzeCommand:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["analyze", "src"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_fixture_exits_one_with_anchors(self, capsys):
        assert main(["analyze", "tests/fixtures/analysis/bad/d001.py"]) == 1
        out = capsys.readouterr().out
        assert "d001.py:" in out and "D001" in out

    def test_rule_filter_and_json(self, capsys):
        rc = main(
            ["analyze", "--rule", "D003", "--json",
             "tests/fixtures/analysis/bad/d003.py"]
        )
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["rules"] == ["D003"]
        assert all(f["rule"] == "D003" for f in doc["findings"])

    def test_unknown_rule_exits_config_error(self, capsys):
        assert main(["analyze", "--rule", "zzz", "src"]) == CONFIG_ERROR_EXIT_CODE


class TestClusterCliFlags:
    _GRID = [
        "sweep", "--model", "3b", "--context-k", "16", "--steps", "1",
        "--strategies", "te_cp", "zeppelin", "--no-cache",
    ]

    def test_parser_accepts_batch_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--batch-system", "fake",
             "--batch-options=--partition=long --mem=16G",
             "--workdir", "/nfs/sweep"]
        )
        assert args.batch_system == "fake"
        assert args.batch_options == "--partition=long --mem=16G"
        assert args.workdir == "/nfs/sweep"

    def test_unknown_batch_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--batch-system", "lsf"])

    def test_batch_system_implies_cluster_backend(self, capsys):
        assert main(self._GRID + ["--batch-system", "fake", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "via cluster backend" in out
        assert "[cluster: fake batch system" in out

    def test_batch_flags_with_other_backend_exit_2(self, capsys):
        code = main(self._GRID + ["--backend", "serial", "--batch-system", "fake"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "cluster backend" in capsys.readouterr().err

    def test_cluster_sweep_json_matches_serial(self, capsys):
        assert main(self._GRID + ["--json"]) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(self._GRID + ["--batch-system", "fake", "--jobs", "2",
                                  "--json"]) == 0
        cluster = json.loads(capsys.readouterr().out)
        assert cluster["results"] == serial["results"]
        assert cluster["points"] == serial["points"]
        assert cluster["meta"]["backend"] == "cluster"
        assert cluster["meta"]["batch_system"] == "fake"
        assert len(cluster["meta"]["rounds"]) == 1

    def test_experiment_batch_flags_build_cluster_backend(self, capsys):
        from repro.exec import ClusterBackend

        calls = []

        @register_experiment("_cli_cluster_probe", description="probe")
        def probe(seed: int = 0, backend=None, jobs: int = 1,
                  use_cache: bool = False):
            from repro.experiments.common import ExperimentResult

            calls.append(backend)
            return ExperimentResult(
                name="probe", description="d", headers=["x"], rows=[[1]]
            )

        try:
            code = main(["experiment", "_cli_cluster_probe",
                         "--batch-system", "fake", "--jobs", "3"])
        finally:
            unregister_experiment("_cli_cluster_probe")
        assert code == 0
        (backend,) = calls
        assert isinstance(backend, ClusterBackend)
        assert backend.jobs == 3
        assert backend.batch_system == "fake"

    def test_batch_flags_rejected_for_plain_experiments(self, capsys):
        code = main(["experiment", "table2", "--batch-system", "fake"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "--batch-system" in capsys.readouterr().err
