"""Tests for the monolithic NumPy attention references."""

import numpy as np
import pytest

from repro.refattn.attention import (
    causal_attention,
    causal_mask,
    full_attention,
    random_qkv,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 5, 7))
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=1e-12)

    def test_invariant_to_constant_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), atol=1e-12)

    def test_handles_large_values_without_overflow(self):
        x = np.array([[1e4, 1e4 + 1.0]])
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[0, 1] > out[0, 0]


class TestFullAttention:
    def test_output_shape(self):
        q, k, v = random_qkv(12, heads=3, head_dim=5)
        out = full_attention(q, k, v)
        assert out.shape == (3, 12, 5)

    def test_single_key_returns_its_value(self):
        q = np.ones((1, 4, 2))
        k = np.ones((1, 1, 2))
        v = np.full((1, 1, 3), 7.0)
        out = full_attention(q, k, v)
        np.testing.assert_allclose(out, 7.0)

    def test_uniform_scores_average_values(self):
        q = np.zeros((1, 2, 4))
        k, v = random_qkv(6, heads=1, head_dim=4)[1:]
        out = full_attention(q, k, v)
        np.testing.assert_allclose(out[0, 0], v[0].mean(axis=0), atol=1e-12)

    def test_mask_rows_fully_masked_give_zero(self):
        q, k, v = random_qkv(4, heads=2, head_dim=3)
        mask = np.zeros((4, 4), dtype=bool)
        mask[1:, :] = np.tril(np.ones((3, 4), dtype=bool), k=0)
        out = full_attention(q, k, v, mask=mask)
        np.testing.assert_allclose(out[:, 0, :], 0.0)

    def test_mask_shape_mismatch_raises(self):
        q, k, v = random_qkv(4)
        with pytest.raises(ValueError):
            full_attention(q, k, v, mask=np.ones((3, 4), dtype=bool))

    def test_head_mismatch_raises(self):
        q, _, _ = random_qkv(4, heads=2)
        _, k, v = random_qkv(4, heads=3)
        with pytest.raises(ValueError):
            full_attention(q, k, v)


class TestCausalAttention:
    def test_first_token_attends_only_to_itself(self):
        q, k, v = random_qkv(8, heads=2, head_dim=4, seed=3)
        out = causal_attention(q, k, v)
        np.testing.assert_allclose(out[:, 0, :], v[:, 0, :], atol=1e-12)

    def test_matches_full_attention_with_explicit_mask(self):
        q, k, v = random_qkv(10, heads=2, head_dim=4, seed=5)
        out = causal_attention(q, k, v)
        expected = full_attention(q, k, v, mask=causal_mask(10))
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_future_tokens_do_not_affect_output(self):
        q, k, v = random_qkv(9, heads=1, head_dim=4, seed=7)
        out_full = causal_attention(q, k, v)
        # Perturb the last token's K/V: outputs of earlier positions must not change.
        k2 = k.copy()
        v2 = v.copy()
        k2[:, -1] += 10.0
        v2[:, -1] -= 5.0
        out_perturbed = causal_attention(q, k2, v2)
        np.testing.assert_allclose(out_full[:, :-1], out_perturbed[:, :-1], atol=1e-12)

    def test_rejects_mismatched_lengths(self):
        q, _, _ = random_qkv(4)
        _, k, v = random_qkv(5)
        with pytest.raises(ValueError):
            causal_attention(q, k, v)


class TestCausalMask:
    def test_lower_triangular(self):
        m = causal_mask(5)
        assert m[0, 0] and not m[0, 1]
        assert m[4].all()
        assert np.array_equal(m, np.tril(np.ones((5, 5), dtype=bool)))

    def test_offset_shifts_visibility(self):
        m = causal_mask(4, offset=1)
        assert m[0, 1] and not m[0, 2]
