"""Tests for the zone analysis (Fig. 5)."""

import pytest

from repro.core.zones import Zone, ZoneThresholds, classify_zones, zone_cost_curves


class TestZoneThresholds:
    def test_zone_classification(self):
        t = ZoneThresholds(local_max=1024, intra_max=16384)
        assert t.zone_of(512) == Zone.LOCAL
        assert t.zone_of(1024) == Zone.INTRA_NODE
        assert t.zone_of(8192) == Zone.INTRA_NODE
        assert t.zone_of(65536) == Zone.INTER_NODE

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            ZoneThresholds(local_max=4096, intra_max=1024)
        with pytest.raises(ValueError):
            ZoneThresholds(local_max=0, intra_max=10)


class TestClassifyZones:
    def test_crossover_near_published_boundary(self, cluster_a2, spec_7b):
        """The inter-node crossover for a 7B model on Cluster A lands near the
        8-16k range Fig. 5 shows."""
        thresholds = classify_zones(spec_7b, cluster_a2)
        assert 4 * 1024 <= thresholds.intra_max <= 32 * 1024
        assert thresholds.local_max <= 2 * 1024

    def test_faster_gpus_push_boundaries_out(self, cluster_a2, cluster_b2, spec_7b):
        """On Hopper-class GPUs compute takes longer to overtake comm, so the
        inter-node zone starts later."""
        a = classify_zones(spec_7b, cluster_a2)
        b = classify_zones(spec_7b, cluster_b2)
        assert b.intra_max >= a.intra_max

    def test_higher_nic_bandwidth_shrinks_inter_zone_threshold(
        self, cluster_b2, cluster_c2, spec_7b
    ):
        """Cluster C's 400 Gb/s NICs make inter-node transfers cheaper, so the
        crossover where compute hides them happens earlier than on Cluster B
        (same-speed GPUs, slower NICs)."""
        b = classify_zones(spec_7b, cluster_b2)
        c = classify_zones(spec_7b, cluster_c2)
        assert c.intra_max <= b.intra_max

    def test_ordering_invariant(self, tiny_cluster, spec_3b):
        t = classify_zones(spec_3b, tiny_cluster)
        assert t.local_max <= t.intra_max


class TestZoneCostCurves:
    def test_curve_shapes(self, cluster_a2, spec_7b):
        lengths = [1024, 4096, 16384, 65536]
        curves = zone_cost_curves(spec_7b, cluster_a2, lengths)
        # Attention grows quadratically, communication linearly.
        attn_ratio = curves.attention_compute_s[-1] / curves.attention_compute_s[0]
        comm_ratio = curves.inter_node_comm_s[-1] / curves.inter_node_comm_s[0]
        assert attn_ratio > 30 * 0.8  # ~(64)^2/64 adjusted for overhead
        assert comm_ratio < 80
        # Inter-node is slower than intra-node at every length.
        for intra, inter in zip(curves.intra_node_comm_s, curves.inter_node_comm_s):
            assert inter > intra

    def test_64k_attention_matches_fig5_scale(self, cluster_a2, spec_7b):
        curves = zone_cost_curves(spec_7b, cluster_a2, [65536])
        # Fig. 5 shows ~200-240 ms on an A800.
        assert 0.1 < curves.attention_compute_s[0] < 0.4

    def test_invalid_length_rejected(self, cluster_a2, spec_7b):
        with pytest.raises(ValueError):
            zone_cost_curves(spec_7b, cluster_a2, [0])
