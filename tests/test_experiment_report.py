"""Tests for the aggregate experiment report and the ExperimentResult helper."""

import json

import pytest

from repro.experiments import table2_dataset_distributions
from repro.experiments.common import ExperimentResult
from repro.experiments.report import _EXPERIMENTS, _jsonable, generate_report


class TestExperimentResult:
    def test_add_row_validates_arity(self):
        result = ExperimentResult(name="x", description="d", headers=["a", "b"])
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_column_extraction(self):
        result = ExperimentResult(name="x", description="d", headers=["a", "b"])
        result.add_row(1, 2)
        result.add_row(3, 4)
        assert result.column("b") == [2, 4]
        with pytest.raises(KeyError):
            result.column("c")

    def test_to_text_contains_title_and_rows(self):
        result = ExperimentResult(name="figX", description="demo", headers=["a"])
        result.add_row(42)
        text = result.to_text()
        assert "figX" in text and "42" in text


class TestReport:
    def test_jsonable_handles_tuple_keys_and_objects(self):
        data = {("a", 1): {"nested": (1, 2.5, None)}, "obj": object()}
        converted = _jsonable(data)
        json.dumps(converted)  # must not raise
        assert converted["('a', 1)"]["nested"] == [1, 2.5, None]

    def test_registry_covers_every_paper_artifact(self):
        assert set(_EXPERIMENTS) == {
            "fig1", "fig3", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13_resilience", "table2", "table3",
        }

    def test_generate_report_subset(self, tmp_path):
        report = generate_report({"table2": table2_dataset_distributions.run})
        entry = report["experiments"]["table2"]
        assert entry["headers"][0] == "dataset"
        assert entry["elapsed_s"] >= 0
        json.dumps(entry["rows"])
        json.dumps(entry["extra"])

    def test_main_writes_json(self, tmp_path, monkeypatch):
        from repro.experiments import report as report_module

        monkeypatch.setattr(
            report_module, "_EXPERIMENTS", {"table2": table2_dataset_distributions.run}
        )
        out = tmp_path / "report.json"
        assert report_module.main([str(out)]) == 0
        data = json.loads(out.read_text())
        assert "table2" in data
