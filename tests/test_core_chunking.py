"""Tests for the causal-balanced zigzag chunk assignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunking import (
    assignment_imbalance,
    contiguous_assignment,
    round_kv_tokens,
    zigzag_assignment,
)


class TestZigzagAssignment:
    def test_tokens_partition_the_sequence(self):
        assignments = zigzag_assignment(1000, 4)
        assert sum(a.tokens for a in assignments) == 1000

    def test_rank0_owns_first_and_last_chunks(self):
        assignments = zigzag_assignment(160, 4)
        a0 = assignments[0]
        assert a0.head_chunk[0] == 0
        assert a0.tail_chunk[0] + a0.tail_chunk[1] == 160

    def test_chunks_do_not_overlap(self):
        assignments = zigzag_assignment(97, 3)
        covered = set()
        for a in assignments:
            for start, length in (a.head_chunk, a.tail_chunk):
                span = set(range(start, start + length))
                assert not (covered & span)
                covered |= span
        assert covered == set(range(97))

    def test_causal_pairs_are_balanced(self):
        assignments = zigzag_assignment(8192, 8)
        assert assignment_imbalance(assignments) < 1.05

    def test_total_pairs_equal_causal_total(self):
        seq = 777
        assignments = zigzag_assignment(seq, 5)
        total = sum(a.causal_pairs for a in assignments)
        assert total == pytest.approx(seq * (seq + 1) / 2)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            zigzag_assignment(0, 4)
        with pytest.raises(ValueError):
            zigzag_assignment(100, 0)


class TestContiguousAssignment:
    def test_contiguous_is_more_imbalanced_than_zigzag(self):
        zig = assignment_imbalance(zigzag_assignment(4096, 8))
        contig = assignment_imbalance(contiguous_assignment(4096, 8))
        assert contig > zig
        # With a causal mask the last contiguous chunk does ~2x the average work.
        assert contig > 1.5

    def test_tokens_still_partition(self):
        assignments = contiguous_assignment(513, 4)
        assert sum(a.tokens for a in assignments) == 513


class TestRoundKvTokens:
    def test_matches_owned_tokens(self):
        assignments = zigzag_assignment(640, 4)
        for i, a in enumerate(assignments):
            assert round_kv_tokens(assignments, i) == a.tokens

    def test_out_of_range_raises(self):
        assignments = zigzag_assignment(64, 2)
        with pytest.raises(ValueError):
            round_kv_tokens(assignments, 5)


class TestChunkingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        seq=st.integers(min_value=1, max_value=100000),
        group=st.integers(min_value=1, max_value=32),
    )
    def test_property_partition_and_pair_conservation(self, seq, group):
        assignments = zigzag_assignment(seq, group)
        assert sum(a.tokens for a in assignments) == seq
        total_pairs = sum(a.causal_pairs for a in assignments)
        assert total_pairs == pytest.approx(seq * (seq + 1) / 2)

    @settings(max_examples=30, deadline=None)
    @given(
        group=st.integers(min_value=2, max_value=16),
        mult=st.integers(min_value=8, max_value=64),
    )
    def test_property_zigzag_is_near_balanced_for_divisible_lengths(self, group, mult):
        seq = 2 * group * mult
        assignments = zigzag_assignment(seq, group)
        assert assignment_imbalance(assignments) < 1.2
