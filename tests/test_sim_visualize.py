"""Tests for the ASCII timeline renderer."""

import pytest

from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.zeppelin import ZeppelinStrategy
from repro.data.datasets import single_sequence_batch
from repro.sim.engine import simulate
from repro.sim.trace import Trace
from repro.sim.visualize import kind_legend, render_timeline, timeline_summary_lines


def simulated_trace():
    plan = ExecutionPlan()
    a = plan.add("attn", TaskKind.ATTENTION, 2e-3, ("compute:0",), rank=0)
    plan.add("xfer", TaskKind.INTER_COMM, 1e-3, ("nic:0:tx",), deps=[a], rank=0)
    plan.add("attn1", TaskKind.ATTENTION, 3e-3, ("compute:1",), rank=1)
    return simulate(plan).trace


class TestRenderTimeline:
    def test_renders_one_line_per_rank_plus_header(self):
        text = render_timeline(simulated_trace(), width=50)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert lines[1].startswith("rank   0")
        assert len(lines[1].split("|")[1]) == 50

    def test_compute_and_comm_characters_present(self):
        text = render_timeline(simulated_trace(), width=60)
        assert "A" in text
        assert "x" in text

    def test_empty_trace(self):
        assert render_timeline(Trace()) == "(empty trace)"

    def test_subset_of_ranks(self):
        text = render_timeline(simulated_trace(), ranks=[1], width=40)
        assert "rank   1" in text and "rank   0" not in text

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            render_timeline(simulated_trace(), width=0)

    def test_legend_mentions_every_kind(self):
        legend = kind_legend()
        for kind in TaskKind:
            assert kind.value in legend

    def test_real_strategy_trace_renders(self, context_3b_16):
        strategy = ZeppelinStrategy(context_3b_16)
        plan = strategy.plan_layer(single_sequence_batch(32768))
        trace = simulate(plan).trace
        text = render_timeline(trace, ranks=[0, 1, 2, 3], width=80)
        assert text.count("\n") == 4


class TestTimelineSummary:
    def test_one_line_per_rank_with_times(self):
        lines = timeline_summary_lines(simulated_trace())
        assert len(lines) == 2
        assert "compute" in lines[0] and "exposed" in lines[0]

    def test_exposed_comm_reported(self):
        trace = simulated_trace()
        lines = timeline_summary_lines(trace, ranks=[0])
        # The transfer runs after compute finished, so it is fully exposed (1 ms).
        assert "1.00 ms exposed" in lines[0]
