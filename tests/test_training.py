"""Tests for iteration simulation, throughput measurement and the run API."""

import pytest

from repro.core.zeppelin import ZeppelinStrategy
from repro.baselines.te_cp import TransformerEngineCPStrategy
from repro.data.sampler import Batch
from repro.training.iteration import simulate_iteration
from repro.training.runner import (
    TrainingRun,
    TrainingRunConfig,
    build_cluster,
    build_strategy,
)
from repro.training.throughput import measure_throughput, speedup_table


class TestSimulateIteration:
    def test_iteration_time_composition(self, context_3b_16, mixed_batch):
        strategy = ZeppelinStrategy(context_3b_16)
        result = simulate_iteration(strategy, mixed_batch)
        expected = (
            (result.forward_layer_s + result.backward_layer_s) * result.num_layers
            + result.partition_overhead_s
            + result.misc_overhead_s
        )
        assert result.iteration_time_s == pytest.approx(expected)
        assert result.num_layers == context_3b_16.spec.num_layers

    def test_throughput_positive_and_consistent(self, context_3b_16, mixed_batch):
        strategy = ZeppelinStrategy(context_3b_16)
        result = simulate_iteration(strategy, mixed_batch)
        assert result.tokens_per_second == pytest.approx(
            mixed_batch.total_tokens / result.iteration_time_s
        )

    def test_backward_slower_than_forward(self, context_3b_16, mixed_batch):
        strategy = ZeppelinStrategy(context_3b_16)
        result = simulate_iteration(strategy, mixed_batch)
        assert result.backward_time_s > result.forward_time_s


class TestMeasureThroughput:
    def test_average_over_batches(self, context_3b_16):
        strategy = TransformerEngineCPStrategy(context_3b_16)
        batches = [
            Batch.from_lengths([8192, 4096, 2048, 1024]),
            Batch.from_lengths([16384, 4096]),
        ]
        report = measure_throughput(strategy, batches)
        assert report.num_batches == 2
        assert report.total_tokens == sum(b.total_tokens for b in batches)
        assert report.tokens_per_second > 0

    def test_empty_batches_rejected(self, context_3b_16):
        strategy = TransformerEngineCPStrategy(context_3b_16)
        with pytest.raises(ValueError):
            measure_throughput(strategy, [])

    def test_speedup_table_uses_first_as_baseline(self, context_3b_16, mixed_batch):
        te = measure_throughput(TransformerEngineCPStrategy(context_3b_16), [mixed_batch])
        z = measure_throughput(ZeppelinStrategy(context_3b_16), [mixed_batch])
        rows = speedup_table([te, z])
        assert rows[0]["speedup"] == pytest.approx(1.0)
        assert rows[1]["speedup"] > 1.0

    def test_speedup_table_named_baseline(self, context_3b_16, mixed_batch):
        te = measure_throughput(TransformerEngineCPStrategy(context_3b_16), [mixed_batch])
        z = measure_throughput(ZeppelinStrategy(context_3b_16), [mixed_batch])
        rows = speedup_table([z, te], baseline_name="TE CP")
        z_row = [r for r in rows if r["strategy"] == "Zeppelin"][0]
        assert z_row["speedup"] > 1.0
        with pytest.raises(KeyError):
            speedup_table([te], baseline_name="nope")


class TestTrainingRunConfig:
    def test_tokens_per_gpu_and_dp_rank(self):
        config = TrainingRunConfig(model="7b", num_gpus=16, total_context=64 * 1024)
        assert config.tokens_per_gpu == 4096
        assert config.tokens_per_dp_rank == 4096
        tp = TrainingRunConfig(
            model="13b", num_gpus=32, total_context=64 * 1024, tensor_parallel=2
        )
        assert tp.tokens_per_dp_rank == 4096

    def test_gpu_count_must_be_multiple_of_eight(self):
        with pytest.raises(ValueError):
            TrainingRunConfig(model="7b", num_gpus=12)

    def test_build_cluster_presets(self):
        for preset, device in (("A", "A800"), ("B", "H800"), ("C", "H200")):
            config = TrainingRunConfig(model="7b", cluster_preset=preset, num_gpus=16)
            assert build_cluster(config).device_type == device
        with pytest.raises(ValueError):
            build_cluster(TrainingRunConfig(model="7b", cluster_preset="Z", num_gpus=16))


class TestTrainingRun:
    def test_compare_returns_all_strategies(self):
        run = TrainingRun(
            TrainingRunConfig(
                model="3b", num_gpus=16, dataset="arxiv", total_context=32768, num_steps=1
            )
        )
        reports = run.compare(("te_cp", "zeppelin"))
        assert [r.strategy for r in reports] == ["TE CP", "Zeppelin"]
        assert reports[1].tokens_per_second > reports[0].tokens_per_second

    def test_unknown_strategy_rejected(self):
        run = TrainingRun(
            TrainingRunConfig(
                model="3b", num_gpus=16, dataset="arxiv", total_context=32768, num_steps=1
            )
        )
        with pytest.raises(ValueError):
            run.strategy("fsdp")

    def test_build_strategy_kwargs_forwarded(self, context_3b_16):
        strategy = build_strategy("zeppelin", context_3b_16, use_routing=False)
        assert "no routing" in strategy.name

    def test_batches_are_reproducible(self):
        config = TrainingRunConfig(
            model="3b", num_gpus=16, dataset="github", total_context=32768, num_steps=2, seed=5
        )
        a = TrainingRun(config)
        b = TrainingRun(config)
        assert [x.lengths for x in a.batches] == [x.lengths for x in b.batches]
