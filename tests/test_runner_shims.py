"""Coverage for the deprecated ``repro.training.runner`` shims.

The shims must keep the pre-registry surface working — same numbers as the
``Session`` they delegate to — while warning loudly enough that migrations
happen.
"""

import warnings

import pytest

from repro.api import Session, SessionConfig
from repro.core.strategy import Strategy
from repro.training.runner import (
    STRATEGY_NAMES,
    TrainingRun,
    TrainingRunConfig,
    build_cluster,
    build_strategy,
)
from repro.training.throughput import ThroughputReport

CONFIG = SessionConfig(model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1)


@pytest.fixture()
def training_run():
    with pytest.warns(DeprecationWarning, match="TrainingRun is deprecated"):
        return TrainingRun(CONFIG)


class TestTrainingRunShim:
    def test_construction_warns_exactly_once(self):
        with pytest.warns(DeprecationWarning, match="use repro.api.Session") as record:
            TrainingRun(CONFIG)
        assert len([w for w in record if w.category is DeprecationWarning]) == 1

    def test_config_alias_is_the_session_config(self):
        assert TrainingRunConfig is SessionConfig

    def test_exposes_session_attributes(self, training_run):
        session = training_run.session
        assert isinstance(session, Session)
        assert training_run.cluster is session.cluster
        assert training_run.spec is session.spec
        assert training_run.context is session.context
        assert training_run.batches is session.batches

    def test_run_strategy_matches_session_run(self, training_run):
        report = training_run.run_strategy("zeppelin")
        assert isinstance(report, ThroughputReport)
        expected = Session(CONFIG).run("zeppelin")
        assert report.tokens_per_second == pytest.approx(expected.tokens_per_second)
        assert report.total_tokens == expected.total_tokens
        assert report.num_batches == expected.num_batches

    def test_compare_matches_session_compare(self, training_run):
        names = ("te_cp", "zeppelin")
        reports = training_run.compare(names)
        assert [type(r) for r in reports] == [ThroughputReport, ThroughputReport]
        expected = Session(CONFIG).compare(names)
        for report, run in zip(reports, expected.runs):
            assert report.tokens_per_second == pytest.approx(run.tokens_per_second)

    def test_strategy_uses_the_session_plan_cache(self, training_run):
        strategy = training_run.strategy("zeppelin")
        batch = training_run.batches[0]
        assert strategy.plan_layer(batch) is strategy.plan_layer(batch)


class TestBuildStrategyShim:
    def test_warns_and_builds_the_registered_class(self):
        context = Session(CONFIG).context
        with pytest.warns(DeprecationWarning, match="build_strategy is deprecated"):
            strategy = build_strategy("zeppelin", context)
        assert isinstance(strategy, Strategy)
        assert strategy.name.lower().startswith("zeppelin")

    def test_unknown_name_raises_value_error(self):
        context = Session(CONFIG).context
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                build_strategy("nope", context)

    def test_strategy_names_snapshot_covers_builtins(self):
        # The snapshot was taken at import time; the live registry may have
        # gained test-local entries since, but never lost a built-in.
        assert {"te_cp", "llama_cp", "hybrid_dp", "packing", "zeppelin"} <= set(
            STRATEGY_NAMES
        )

    def test_build_cluster_delegates(self):
        assert build_cluster(CONFIG).world_size == 16
