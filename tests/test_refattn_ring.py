"""Tests for the zigzag ring-attention numerical reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.refattn.attention import causal_attention, random_qkv
from repro.refattn.ring import (
    ring_attention,
    ring_rank_flops,
    zigzag_chunk_slices,
    zigzag_chunk_token_counts,
)


class TestZigzagChunkSlices:
    def test_ownership_partitions_the_sequence(self):
        slices = zigzag_chunk_slices(37, 4)
        covered = []
        for head, tail in slices:
            covered.extend(range(head.start, head.stop))
            covered.extend(range(tail.start, tail.stop))
        assert sorted(covered) == list(range(37))

    def test_rank_zero_gets_first_and_last_chunk(self):
        slices = zigzag_chunk_slices(64, 4)
        head, tail = slices[0]
        assert head.start == 0
        assert tail.stop == 64

    def test_token_counts_are_balanced(self):
        counts = zigzag_chunk_token_counts(1000, 8)
        assert sum(counts) == 1000
        assert max(counts) - min(counts) <= 2

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            zigzag_chunk_slices(0, 4)
        with pytest.raises(ValueError):
            zigzag_chunk_slices(10, 0)


class TestRingAttention:
    @pytest.mark.parametrize("group_size", [2, 3, 4, 8])
    def test_combined_output_matches_causal_attention(self, group_size):
        seq = 48
        q, k, v = random_qkv(seq, heads=2, head_dim=4, seed=group_size)
        result = ring_attention(q, k, v, group_size=group_size)
        np.testing.assert_allclose(result.combined, causal_attention(q, k, v), atol=1e-9)

    def test_number_of_rounds_equals_group_size(self):
        q, k, v = random_qkv(32, heads=1, head_dim=4)
        assert ring_attention(q, k, v, group_size=4).rounds == 4

    def test_per_rank_outputs_cover_owned_chunks(self):
        seq, group = 40, 4
        q, k, v = random_qkv(seq, heads=1, head_dim=4, seed=9)
        result = ring_attention(q, k, v, group_size=group)
        full = causal_attention(q, k, v)
        for rank, (head_sl, tail_sl) in enumerate(zigzag_chunk_slices(seq, group)):
            head_out, tail_out = result.per_rank_outputs[rank]
            np.testing.assert_allclose(head_out, full[:, head_sl], atol=1e-9)
            np.testing.assert_allclose(tail_out, full[:, tail_sl], atol=1e-9)

    def test_sequence_too_short_raises(self):
        q, k, v = random_qkv(5, heads=1, head_dim=2)
        with pytest.raises(ValueError):
            ring_attention(q, k, v, group_size=4)

    @settings(max_examples=15, deadline=None)
    @given(
        group=st.integers(min_value=2, max_value=5),
        extra=st.integers(min_value=0, max_value=17),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_property_ring_equals_monolithic(self, group, extra, seed):
        seq = 2 * group + extra
        q, k, v = random_qkv(seq, heads=1, head_dim=3, seed=seed)
        result = ring_attention(q, k, v, group_size=group)
        np.testing.assert_allclose(result.combined, causal_attention(q, k, v), atol=1e-8)


class TestRingRankFlops:
    def test_zigzag_balances_causal_work(self):
        flops = ring_rank_flops(4096, 8, hidden_size=1024)
        assert max(flops) / min(flops) < 1.05

    def test_total_work_matches_causal_total(self):
        seq, hidden = 512, 64
        flops = ring_rank_flops(seq, 4, hidden_size=hidden)
        expected_pairs = seq * (seq + 1) / 2
        np.testing.assert_allclose(sum(flops), 4.0 * expected_pairs * hidden)
