"""Tests for the repro.api Session facade and structured results."""

import json

import pytest

from repro.api import DEFAULT_COMPARISON, Session, SessionConfig, build_cluster
from repro.core.zeppelin import ZeppelinStrategy
from repro.results import CompareResult, RunResult


@pytest.fixture
def small_session():
    return Session(
        model="3b", num_gpus=16, dataset="arxiv", total_context=32 * 1024, num_steps=2
    )


class TestSessionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(model="3b", num_gpus=12)
        with pytest.raises(ValueError):
            SessionConfig(model="3b", num_steps=0)

    def test_derived_quantities(self):
        config = SessionConfig(model="7b", num_gpus=16, total_context=64 * 1024)
        assert config.num_nodes == 2
        assert config.tokens_per_gpu == 4096
        tp = SessionConfig(
            model="13b", num_gpus=32, total_context=64 * 1024, tensor_parallel=2
        )
        assert tp.tokens_per_dp_rank == 4096

    def test_replace_and_to_dict(self):
        config = SessionConfig(model="3b")
        bigger = config.replace(num_gpus=32)
        assert bigger.num_gpus == 32 and bigger.model == "3b"
        assert config.to_dict()["num_gpus"] == 16

    def test_build_cluster_presets(self):
        for preset, device in (("A", "A800"), ("B", "H800"), ("C", "H200")):
            config = SessionConfig(model="7b", cluster_preset=preset, num_gpus=16)
            assert build_cluster(config).device_type == device
        with pytest.raises(ValueError):
            build_cluster(SessionConfig(model="7b", cluster_preset="Z", num_gpus=16))


class TestSessionBasics:
    def test_kwargs_constructor(self):
        session = Session(model="3b", num_gpus=16)
        assert session.config.model == "3b"
        assert session.cluster.world_size == 16

    def test_batches_cached_and_reproducible(self, small_session):
        assert small_session.batches is small_session.batches
        other = Session(small_session.config)
        assert [b.lengths for b in other.batches] == [
            b.lengths for b in small_session.batches
        ]

    def test_unknown_strategy_lists_available(self, small_session):
        with pytest.raises(ValueError) as excinfo:
            small_session.run("fsdp")
        assert "zeppelin" in str(excinfo.value)

    def test_strategy_kwargs_forwarded(self, small_session):
        strategy = small_session.strategy("zeppelin", use_routing=False)
        assert "no routing" in strategy.name


class TestPlanCache:
    def test_plan_cache_hit_returns_identical_object(self, small_session):
        first = small_session.plan("zeppelin")
        second = small_session.plan("zeppelin")
        assert first is second

    def test_distinct_kwargs_get_distinct_plans(self, small_session):
        full = small_session.plan("zeppelin")
        ablated = small_session.plan("zeppelin", use_routing=False)
        assert full is not ablated

    def test_compare_plans_each_combination_once(self, small_session, monkeypatch):
        calls = []
        original = ZeppelinStrategy.plan_layer

        def counting(self, batch, phase="forward"):
            calls.append((batch.lengths, phase))
            return original(self, batch, phase)

        monkeypatch.setattr(ZeppelinStrategy, "plan_layer", counting)
        small_session.compare(("te_cp", "zeppelin"))
        small_session.compare(("te_cp", "zeppelin"))
        small_session.run("zeppelin")
        # 2 batches x 2 phases, each planned exactly once despite 3 passes.
        assert len(calls) == 4
        assert len(set(calls)) == 4

    def test_run_reuses_plans_across_calls(self, small_session):
        small_session.run("te_cp")
        size_after_first = small_session.plan_cache_size
        small_session.run("te_cp")
        assert small_session.plan_cache_size == size_after_first


class TestRunAndCompare:
    def test_run_result_fields(self, small_session):
        result = small_session.run("zeppelin")
        assert isinstance(result, RunResult)
        assert result.strategy == "zeppelin"
        assert result.label == "Zeppelin"
        assert result.tokens_per_second > 0
        assert result.num_batches == 2
        assert result.config["model"] == "3b"

    def test_run_label_override(self, small_session):
        result = small_session.run("te_cp", label="w/ Routing", use_routing=True)
        assert result.label == "w/ Routing"

    def test_run_result_is_frozen(self, small_session):
        result = small_session.run("te_cp")
        with pytest.raises(AttributeError):
            result.tokens_per_second = 0.0
        with pytest.raises(TypeError):
            result.config["model"] = "other"

    def test_compare_structure_and_speedups(self, small_session):
        result = small_session.compare(("te_cp", "zeppelin"))
        assert isinstance(result, CompareResult)
        assert [r.label for r in result] == ["TE CP", "Zeppelin"]
        assert result.baseline == "te_cp"
        assert result.speedup("te_cp") == pytest.approx(1.0)
        assert result.speedup("zeppelin") > 1.0
        rows = result.rows()
        assert rows[0]["speedup"] == pytest.approx(1.0)

    def test_compare_explicit_baseline(self, small_session):
        result = small_session.compare(("zeppelin", "te_cp"), baseline="te_cp")
        assert result.speedup("zeppelin") > 1.0
        with pytest.raises(ValueError):
            small_session.compare(("te_cp",), baseline="zeppelin")

    def test_compare_to_json_round_trips(self, small_session):
        payload = json.loads(small_session.compare(("te_cp", "zeppelin")).to_json())
        assert payload["baseline"] == "te_cp"
        assert len(payload["runs"]) == 2
        assert payload["runs"][1]["speedup"] > 1.0


class TestDeriveAndSweep:
    def test_derive_is_cached(self, small_session):
        a = small_session.derive(num_gpus=32)
        b = small_session.derive(num_gpus=32)
        assert a is b
        assert a.config.num_gpus == 32

    def test_derive_same_config_returns_self(self, small_session):
        assert small_session.derive() is small_session
        assert small_session.derive(num_gpus=16) is small_session

    def test_derive_shared_across_family(self, small_session):
        child = small_session.derive(num_gpus=32)
        # Deriving the base config from a child returns the original session.
        back = child.derive(num_gpus=16)
        assert back is small_session

    def test_sweep_cartesian_product(self, small_session):
        cells = small_session.sweep(
            gpus=(16,),
            datasets=("arxiv", "github"),
            strategies=("te_cp", "zeppelin"),
        )
        assert len(cells) == 2
        assert [c.config["dataset"] for c in cells] == ["arxiv", "github"]
        for cell in cells:
            assert cell.speedup("zeppelin") > 0

    def test_sweep_reuses_cached_sessions(self, small_session, monkeypatch):
        calls = []
        original = ZeppelinStrategy.plan_layer

        def counting(self, batch, phase="forward"):
            calls.append((batch.lengths, phase))
            return original(self, batch, phase)

        monkeypatch.setattr(ZeppelinStrategy, "plan_layer", counting)
        kwargs = dict(datasets=("arxiv",), strategies=("te_cp", "zeppelin"))
        small_session.sweep(**kwargs)
        first = len(calls)
        small_session.sweep(**kwargs)
        assert len(calls) == first  # second sweep fully served from caches

    def test_default_comparison_constant(self):
        assert DEFAULT_COMPARISON[0] == "te_cp"
        assert "zeppelin" in DEFAULT_COMPARISON
