"""Tests for the experiment modules (lightweight configurations).

Every experiment is exercised with reduced parameters so the suite stays fast;
the full-size sweeps live under ``benchmarks/``.  Assertions check the paper's
qualitative claims, not absolute values.
"""

import pytest

from repro.experiments import (
    fig01_length_distributions,
    fig03_attention_cost_breakdown,
    fig05_zone_boundaries,
    fig08_end_to_end,
    fig09_scalability,
    fig10_cluster_comparison,
    fig11_ablation,
    fig12_timeline,
    table2_dataset_distributions,
    table3_cost_distribution,
)
from repro.experiments.fig08_end_to_end import Fig8Cell


class TestFig1:
    def test_sampler_matches_target_histograms(self):
        result = fig01_length_distributions.run(samples_per_dataset=4000, seed=1)
        for row in result.rows:
            assert row[-1] < 0.05, f"{row[0]} sampled histogram deviates too much"

    def test_stackexchange_is_short_dominated(self):
        result = fig01_length_distributions.run(samples_per_dataset=1000)
        target = result.extra["stackexchange"]["target"]
        assert target[0] > 0.6


class TestTable2:
    def test_rows_match_registered_distributions(self):
        result = table2_dataset_distributions.run()
        assert {row[0] for row in result.rows} == {"arxiv", "github", "prolong64k"}
        github = [row for row in result.rows if row[0] == "github"][0]
        prolong = [row for row in result.rows if row[0] == "prolong64k"][0]
        # GitHub has mass beyond 64k, ProLong64k is dominated by 32-64k docs.
        assert github[-1] > 0.05
        assert prolong[-1] > 0.5


class TestFig3:
    def test_short_sequences_dominated_by_overheads(self):
        result = fig03_attention_cost_breakdown.run(datasets=("stackexchange",))
        pack_rows = [r for r in result.rows if r[0] == "pack+ulysses" and r[2] == "<1k"]
        cp_rows = [r for r in result.rows if r[0] == "even-split ring CP" and r[2] == "<1k"]
        assert pack_rows and cp_rows
        # For <1k sequences the packing scheme's redundant + comm share exceeds
        # useful compute, and ring CP's comm share exceeds its compute share.
        _, _, _, comp, comm, redundant = pack_rows[0]
        assert comm + redundant > comp
        _, _, _, comp_cp, comm_cp, _ = cp_rows[0]
        assert comm_cp > comp_cp

    def test_shares_sum_to_one_per_scheme_dataset(self):
        result = fig03_attention_cost_breakdown.run(datasets=("arxiv",))
        for scheme in ("pack+ulysses", "even-split ring CP"):
            total = sum(
                r[3] + r[4] + r[5] for r in result.rows if r[0] == scheme and r[1] == "arxiv"
            )
            assert total == pytest.approx(1.0, abs=0.02)


class TestFig5:
    def test_zone_boundaries_and_curves(self):
        result = fig05_zone_boundaries.run()
        thresholds = result.extra["thresholds"]
        assert 4096 <= thresholds["intra_max"] <= 32768
        # ProLong64k has more inter-node-zone mass than ArXiv.
        shares = result.extra["dataset_zone_shares"]
        assert shares["prolong64k"]["inter_node"] > shares["arxiv"]["inter_node"]

    def test_attention_crosses_inter_node_comm(self):
        result = fig05_zone_boundaries.run()
        attn = result.column("attention_ms")
        inter = result.column("inter_node_sendrecv_ms")
        assert attn[0] < inter[0], "at 1k tokens communication dominates"
        assert attn[-1] > inter[-1], "at 64k tokens compute dominates"


class TestFig8:
    def test_single_cell_speedup_ordering(self):
        result = fig08_end_to_end.run(
            full_grid=False,
            datasets=("arxiv",),
            num_steps=1,
        )
        for row in result.rows:
            te, llama, hybrid, zeppelin = row[-4:]
            assert te == pytest.approx(1.0)
            assert zeppelin > 1.5
            assert zeppelin >= llama and zeppelin >= hybrid

    def test_custom_grid_row_count(self):
        result = fig08_end_to_end.run(datasets=("arxiv", "github"), num_steps=1)
        assert len(result.rows) == len(fig08_end_to_end.DEFAULT_GRID) * 2

    def test_cell_dataclass_defaults(self):
        cell = Fig8Cell("7b", 64, 16)
        assert cell.cluster == "A" and cell.tensor_parallel == 1


class TestFig9:
    def test_zeppelin_scales_and_te_cp_stays_flat(self):
        result = fig09_scalability.run(
            gpu_counts=(16, 32), datasets=("arxiv",), num_steps=1
        )
        small = result.extra[("arxiv", 16)]
        large = result.extra[("arxiv", 32)]
        # TE CP gains little from doubling the cluster; Zeppelin speeds up.
        assert large["te_cp"] < small["te_cp"] * 1.5
        assert large["zeppelin"] > small["zeppelin"] * 1.2
        assert large["zeppelin"] > large["te_cp"]


class TestFig10:
    def test_cluster_b_has_higher_absolute_but_lower_relative_speedup(self):
        result = fig10_cluster_comparison.run(
            datasets=("arxiv",), total_context=64 * 1024, num_gpus=16, num_steps=1
        )
        a = result.extra[("A", "arxiv")]
        b = result.extra[("B", "arxiv")]
        assert b["zeppelin"] > a["zeppelin"], "Hopper cluster is faster in absolute terms"
        assert all(b[s] >= a[s] for s in ("te_cp", "zeppelin"))


class TestFig11:
    def test_every_component_contributes(self):
        result = fig11_ablation.run(
            datasets=("arxiv",), num_gpus=16, total_context=64 * 1024, num_steps=1
        )
        speedups = result.extra["arxiv"]
        assert speedups["TE CP"] == pytest.approx(1.0)
        assert speedups["w/ Routing"] > 1.1
        assert speedups["w/ Attn Eng"] > 1.1
        assert speedups["w/ Routing & Attn Eng"] >= max(
            speedups["w/ Routing"], speedups["w/ Attn Eng"]
        ) * 0.95
        # Remapping is a small effect either way (the paper reports +0.13x on
        # ArXiv); it must not regress the combined configuration materially.
        assert speedups["w/ All"] >= speedups["w/ Routing & Attn Eng"] * 0.95


class TestFig12:
    def test_routing_cuts_per_round_inter_node_cost(self):
        result = fig12_timeline.run()
        te = result.extra["a) TE CP, single 64k sequence"]
        zeppelin = result.extra["b) Zeppelin, single 64k sequence"]
        many = result.extra["c) Zeppelin, 16 x 4k sequences"]
        # Routing reduces the per-round inter-node transfer roughly by the NIC count.
        assert zeppelin["per_round_inter_comm_s"] < te["per_round_inter_comm_s"] / 2
        # With many short sequences, no inter-node communication remains.
        assert many["summary"]["total_inter_comm_s"] == pytest.approx(0.0, abs=1e-9)
        # And the layer completes faster than the TE CP baseline.
        assert zeppelin["makespan_s"] < te["makespan_s"]
        assert many["makespan_s"] < te["makespan_s"]


class TestTable3:
    def test_component_rows_and_skew_behaviour(self):
        result = table3_cost_distribution.run(num_gpus=16, total_context=64 * 1024)
        components = result.column("component")
        assert "Forward Quadratic Attention" in components
        assert "Backward" in components
        balanced = result.extra["Balanced"]
        skewed = result.extra["Skewed"]
        # Attention dominates the skewed batch more than the balanced one.
        assert skewed["Forward Quadratic Attention"][1] >= balanced["Forward Quadratic Attention"][1] * 0.9
        # Backward is heavier than forward in both cases.
        assert balanced["Backward"][1] > balanced["Forward"][0]
