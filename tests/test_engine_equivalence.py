"""Equivalence guard: the unified compiled-plan engine vs the frozen reference.

The engine rewrite (interned resources, indexed waiter dispatch, one core for
the static and dynamic cases) must not change scheduling semantics.  These
tests compare :class:`repro.sim.engine.Simulator` against the verbatim
pre-refactor engine in :mod:`repro.sim._reference` on randomly generated DAGs
and on every registered strategy's real plans — start times, end times,
aborted/stranded sets, failed resources and trace spans, all bit-identical.

One deliberate semantic fix rides the rewrite: same-timestamp events are
drained by *exact* comparison on the pushed completion times instead of an
absolute ``1e-15`` epsilon (which merges distinct instants a few ulp apart at
small clocks and is scale-dependent).  The reference engine exposes the same
fix behind ``exact_drain=True``, so the strategy-level comparisons run both
engines under identical drain semantics; the random-DAG tests use dyadic
durations (exact in binary floating point), where the two drain policies
coincide and the comparison therefore also covers the *old* ordering
semantics.  ``TestExactDrain`` pins down the intended behaviour change.
"""

import random

import pytest

from repro.core.plan import ExecutionPlan, Task, TaskKind
from repro.sim._reference import ReferenceSimulator
from repro.sim.compile import CompiledPlan
from repro.sim.engine import Simulator
from repro.sim.events import ResourceEvent

_KINDS = list(TaskKind)


def _random_plan(rng: random.Random) -> ExecutionPlan:
    """A random DAG with shared resources, varied priorities and barriers.

    Durations are multiples of 1/64 (dyadic rationals), so every simulated
    timestamp is exact in binary floating point: events coincide exactly or
    differ by far more than the old drain epsilon, making the comparison
    independent of the drain policy.
    """
    plan = ExecutionPlan()
    num_tasks = rng.randint(1, 40)
    resources = [f"res:{i}" for i in range(rng.randint(1, 6))]
    for tid in range(num_tasks):
        num_deps = rng.randint(0, min(3, tid))
        deps = rng.sample(range(tid), num_deps) if num_deps else []
        if rng.random() < 0.1:
            held = ()  # zero-cost barrier
        else:
            held = tuple(rng.sample(resources, rng.randint(1, min(2, len(resources)))))
        plan.add(
            f"t{tid}",
            rng.choice(_KINDS),
            rng.randint(0, 64) / 64.0,
            held,
            deps=deps,
            rank=rng.randint(-1, 3),
            priority=rng.randint(0, 4),
        )
    return plan


def _random_events(rng: random.Random, plan: ExecutionPlan) -> list[ResourceEvent]:
    """Random slowdowns, recoveries and failures over the plan's resources.

    Times are dyadic and factors are powers of two, keeping all re-timing
    arithmetic exact (see :func:`_random_plan`).
    """
    names = sorted({r for t in plan.tasks for r in t.resources})
    if not names:
        return []
    events = []
    for _ in range(rng.randint(0, 5)):
        targets = tuple(rng.sample(names, rng.randint(1, min(2, len(names)))))
        time_s = rng.randint(0, 640) / 64.0
        roll = rng.random()
        if roll < 0.25:
            events.append(ResourceEvent(time_s, targets, None))  # failure
        elif roll < 0.75:
            events.append(ResourceEvent(time_s, targets, rng.choice((0.5, 0.25, 0.125))))
        else:
            events.append(ResourceEvent(time_s, targets, 1.0))  # recovery
    return events


def _assert_identical(new, old, context):
    assert new.makespan_s == old.makespan_s, context
    assert new.start_times == old.start_times, context
    assert new.end_times == old.end_times, context
    assert new.aborted_task_ids == old.aborted_task_ids, context
    assert new.stranded_task_ids == old.stranded_task_ids, context
    assert new.failed_resources == old.failed_resources, context
    assert new.trace.spans == old.trace.spans, context


class TestRandomDagEquivalence:
    @pytest.mark.parametrize("seed", range(60))
    def test_static_and_dynamic_identical_to_reference(self, seed):
        rng = random.Random(seed)
        plan = _random_plan(rng)
        events = _random_events(rng, plan)
        for ev in (None, [], events):
            new = Simulator().run(plan, events=ev)
            # Dyadic timestamps: old and exact drain coincide, so this also
            # certifies equivalence under the old-ordering semantics.
            old = ReferenceSimulator().run(plan, events=ev)
            _assert_identical(new, old, (seed, "events" if ev else ev))

    @pytest.mark.parametrize("seed", range(20))
    def test_start_time_offset_identical_to_reference(self, seed):
        rng = random.Random(1000 + seed)
        plan = _random_plan(rng)
        events = _random_events(rng, plan)
        new = Simulator().run(plan, events=events, start_time_s=4.0)
        old = ReferenceSimulator().run(plan, events=events, start_time_s=4.0)
        _assert_identical(new, old, seed)


class TestStrategyEquivalence:
    """Real plans: every registered strategy, both phases, with and without
    perturbations, bit-identical under the (fixed) exact drain semantics."""

    @pytest.fixture(scope="class")
    def session(self):
        from repro.api import Session

        return Session(model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1)

    def test_all_registered_strategies_bit_identical(self, session):
        from repro.dynamics.models import PerturbationConfig, PerturbationModel
        from repro.registry import available_strategies

        schedule = PerturbationModel(
            PerturbationConfig(
                straggler_frac=0.25, nic_degrade_frac=0.3, mttf_s=30.0, max_failures=3
            )
        ).generate(session.cluster, seed=1)
        event_sets = [
            None,
            [],
            schedule.active_resource_events(0.0, session.cluster),
            [
                ResourceEvent(0.001, ("compute:3",), 0.5),
                ResourceEvent(0.002, ("nic:0:tx", "nic:0:rx"), 0.25),
                ResourceEvent(0.004, ("compute:7", "nvl:7:tx", "nvl:7:rx"), None),
                ResourceEvent(0.006, ("compute:3",), 1.0),
            ],
        ]
        for name in available_strategies():
            strategy = session.strategy(name)
            for phase in ("forward", "backward"):
                plan = strategy.plan_layer(batch=session.batches[0], phase=phase)
                for i, events in enumerate(event_sets):
                    new = Simulator().run(plan, events=events)
                    old = ReferenceSimulator(exact_drain=True).run(plan, events=events)
                    _assert_identical(new, old, (name, phase, i))

    def test_resilience_result_bit_identical(self, session, monkeypatch):
        """ResilienceResults match the reference engine end to end."""
        from repro.results import ResilienceResult

        def run():
            return session.run(
                "zeppelin",
                perturbation={"mttf_s": 40.0, "straggler_frac": 0.25, "max_failures": 2},
                recovery="elastic",
                num_iterations=8,
            )

        with_new = run()
        reference = lambda record_trace=True: ReferenceSimulator(
            record_trace=record_trace, exact_drain=True
        )

        def reference_many(requests, record_trace=False, **kwargs):
            simulator = reference(record_trace)
            return [
                simulator.run(
                    r.plan, events=r.events, start_time_s=r.start_time_s
                )
                for r in requests
            ]

        monkeypatch.setattr("repro.dynamics.recovery.Simulator", reference)
        monkeypatch.setattr("repro.training.iteration.Simulator", reference)
        # The batched lane kernel carries every healthy-iteration simulation
        # now; rerouting it through the reference engine sequentially keeps
        # this an end-to-end old-vs-new comparison.
        monkeypatch.setattr(
            "repro.training.iteration.simulate_many", reference_many
        )
        with_old = run()
        assert isinstance(with_new, ResilienceResult)
        assert with_new.to_dict() == with_old.to_dict()


class TestUnifiedPathGuards:
    def test_deadlock_at_t0_raises_on_unified_path(self):
        """The unified engine keeps the deadlock-at-t0 guard.

        Plans built through ``ExecutionPlan.add`` cannot deadlock at t0 (task
        0 always has no dependencies and free resources), so the guard is
        exercised with a hand-corrupted compiled plan whose dependency counts
        can never be satisfied.
        """
        plan = ExecutionPlan(
            tasks=[Task(task_id=0, name="t", kind=TaskKind.OTHER, duration_s=1.0, resources=("r",))]
        )
        corrupt = CompiledPlan(
            plan=plan,
            num_tasks=1,
            resource_names=("r",),
            resource_index={"r": 0},
            durations=(1.0,),
            task_resources=((0,),),
            dispatch_keys=((0, 0),),
            dep_counts=(1,),  # never satisfied: nothing can ever start
            dependents_indptr=(0, 0),
            dependents_ids=(),
            initial_ready=(),
        )
        with pytest.raises(RuntimeError, match="deadlock at time 0"):
            Simulator().run(corrupt)

    def test_failure_at_t0_is_not_a_deadlock(self):
        """All-stranded at t0 returns a failed result instead of raising."""
        plan = ExecutionPlan()
        plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",))
        result = Simulator().run(plan, events=[ResourceEvent(0.0, ("compute:0",), None)])
        assert result.failed
        assert result.stranded_task_ids == (0,)

    def test_unsatisfiable_dependency_still_raises(self):
        import dataclasses

        plan = ExecutionPlan()
        plan.add("a", TaskKind.OTHER, 1.0, ("r",))
        plan.add("b", TaskKind.OTHER, 1.0, ("r",), deps=[0])
        cp = plan.compiled()
        # Sever the a->b edge but keep b's dependency count: b never readies.
        corrupt = dataclasses.replace(
            cp, dependents_indptr=(0, 0, 0), dependents_ids=()
        )
        with pytest.raises(RuntimeError, match="unsatisfiable"):
            Simulator().run(corrupt)


class TestExactDrain:
    """The one intended behaviour change: same-timestamp draining is exact."""

    def test_near_equal_completions_are_not_merged(self):
        # 0.1 + 0.2 != 0.3 in binary floating point (they differ by one ulp);
        # the old epsilon drain recorded both completions at the earlier
        # instant, silently rewriting b's end time.
        plan = ExecutionPlan()
        a = plan.add("a", TaskKind.OTHER, 0.1, ("x",))
        b = plan.add("b", TaskKind.OTHER, 0.2, ("x",), deps=[a])
        plan.add("c", TaskKind.OTHER, 0.3, ("y",))
        result = Simulator().run(plan)
        assert result.end_times[b] == 0.1 + 0.2  # the true pushed time
        assert result.end_times[b] != 0.3
        merged = ReferenceSimulator().run(plan)
        assert merged.end_times[b] == 0.3  # the old epsilon pulled it earlier

    def test_drain_behaviour_is_scale_invariant(self):
        # The absolute epsilon made merging depend on the clock magnitude;
        # exact comparison treats t and 1000+t identically.  Simultaneity
        # from identical arithmetic (two 0.25s tasks started together) is
        # still recognised at any clock.
        for offset in (0.0, 1000.0):
            plan = ExecutionPlan()
            lead = plan.add("lead", TaskKind.OTHER, offset, ("x",))
            p = plan.add("p", TaskKind.OTHER, 0.25, ("x",), deps=[lead])
            q = plan.add("q", TaskKind.OTHER, 0.25, ("y",), deps=[lead])
            plan.add("join", TaskKind.OTHER, 0.25, ("x", "y"), deps=[p, q])
            result = Simulator().run(plan)
            assert result.end_times[p] == result.end_times[q] == offset + 0.25
            assert result.makespan_s == offset + 0.5
