"""Tests for the compiled-plan representation (:mod:`repro.sim.compile`)."""

import pytest

from repro.core.plan import ExecutionPlan, TaskKind
from repro.sim.compile import CompiledPlan, compile_plan


def _diamond_plan() -> ExecutionPlan:
    """a -> (b, c) -> d with two shared resources."""
    plan = ExecutionPlan()
    a = plan.add("a", TaskKind.ATTENTION, 1.0, ("compute:0",), priority=2)
    b = plan.add("b", TaskKind.INTER_COMM, 2.0, ("nic:0:tx",), deps=[a])
    c = plan.add("c", TaskKind.LINEAR, 3.0, ("compute:0",), deps=[a], priority=1)
    plan.add("d", TaskKind.OTHER, 0.0, (), deps=[b, c])
    return plan


class TestCompiledPlan:
    def test_resource_ids_are_dense_and_stable(self):
        cp = compile_plan(_diamond_plan())
        assert cp.resource_names == ("compute:0", "nic:0:tx")
        assert cp.resource_index == {"compute:0": 0, "nic:0:tx": 1}
        assert cp.num_resources == 2
        assert cp.task_resources == ((0,), (1,), (0,), ())

    def test_dependents_csr_matches_deps(self):
        plan = _diamond_plan()
        cp = compile_plan(plan)
        # Brute-force dependents from the task list.
        expected = {t.task_id: [] for t in plan.tasks}
        for t in plan.tasks:
            for d in t.deps:
                expected[d].append(t.task_id)
        for tid in range(cp.num_tasks):
            assert list(cp.dependents_of(tid)) == expected[tid]
        assert cp.dependents_indptr[0] == 0
        assert cp.dependents_indptr[-1] == len(cp.dependents_ids)

    def test_dispatch_keys_and_dep_counts(self):
        cp = compile_plan(_diamond_plan())
        assert cp.dispatch_keys == ((2, 0), (0, 1), (1, 2), (0, 3))
        assert cp.dep_counts == (0, 1, 1, 2)
        assert cp.initial_ready == (0,)

    def test_empty_plan_compiles(self):
        cp = compile_plan(ExecutionPlan())
        assert cp.num_tasks == 0
        assert cp.resource_names == ()
        assert cp.initial_ready == ()

    def test_compile_validates(self):
        plan = ExecutionPlan()
        plan.add("a", TaskKind.OTHER, 1.0, ())
        plan.tasks[0].task_id = 5  # corrupt
        with pytest.raises(ValueError):
            compile_plan(plan)


class TestCompileCache:
    def test_compiled_is_cached_on_the_plan(self):
        plan = _diamond_plan()
        assert plan.compiled() is plan.compiled()
        assert plan.compiled() is compile_plan(plan)

    def test_add_invalidates_the_cache(self):
        plan = _diamond_plan()
        first = plan.compiled()
        plan.add("e", TaskKind.OTHER, 1.0, ("compute:1",))
        second = plan.compiled()
        assert second is not first
        assert second.num_tasks == first.num_tasks + 1
        assert "compute:1" in second.resource_index

    def test_direct_tasks_append_detected_by_count(self):
        plan = _diamond_plan()
        stale = plan.compiled()
        # Bypassing add() is unsupported but a changed task count is detected.
        from repro.core.plan import Task

        plan.tasks.append(
            Task(task_id=4, name="x", kind=TaskKind.OTHER, duration_s=1.0, resources=())
        )
        assert plan.compiled() is not stale

    def test_simulation_reuses_the_cache(self):
        from repro.sim.engine import simulate

        plan = _diamond_plan()
        simulate(plan)
        cp = plan.compiled()
        simulate(plan)
        assert plan.compiled() is cp

    def test_compiled_plan_accepted_by_simulator(self):
        from repro.sim.engine import simulate

        plan = _diamond_plan()
        by_plan = simulate(plan)
        by_compiled = simulate(plan.compiled())
        assert by_compiled.makespan_s == by_plan.makespan_s
        assert by_compiled.end_times == by_plan.end_times
        assert by_compiled.plan is plan
