"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import CONFIG_ERROR_EXIT_CODE, build_parser, main
from repro.registry import available_experiments, get_experiment


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "7b"
        assert args.gpus == 16
        assert args.strategies == ["te_cp", "llama_cp", "hybrid_dp", "zeppelin"]
        assert args.json is False
        # Dynamics default to off.
        assert args.mttf is None
        assert args.straggler_frac == 0.0
        assert args.recovery == "checkpoint_restart"

    def test_run_parses_strategy_and_dynamics_flags(self):
        args = build_parser().parse_args(
            ["run", "zeppelin", "--mttf", "30", "--recovery", "elastic", "--seed", "7"]
        )
        assert args.strategy == "zeppelin"
        assert args.mttf == 30.0
        assert args.recovery == "elastic"
        assert args.seed == 7

    def test_run_rejects_unknown_recovery(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "zeppelin", "--recovery", "pray"])

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_experiment_is_registered_with_a_runner(self):
        for name in available_experiments():
            entry = get_experiment(name)
            assert callable(entry.obj)
            assert entry.description


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "llama-7b" in out
        assert "zeppelin" in out
        assert "fig8" in out
        # Per-strategy descriptions come from the registry.
        assert "TransformerEngine CP" in out

    def test_compare_command_small_config(self, capsys):
        code = main(
            [
                "compare",
                "--model", "3b",
                "--gpus", "16",
                "--dataset", "arxiv",
                "--context-k", "32",
                "--steps", "1",
                "--strategies", "te_cp", "zeppelin",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TE CP" in out and "Zeppelin" in out
        assert "speedup" in out

    def test_compare_json_output(self, capsys):
        code = main(
            [
                "compare",
                "--model", "3b",
                "--gpus", "16",
                "--context-k", "32",
                "--steps", "1",
                "--strategies", "te_cp", "zeppelin",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "te_cp"
        assert [r["strategy"] for r in payload["runs"]] == ["te_cp", "zeppelin"]
        assert payload["runs"][0]["speedup"] == pytest.approx(1.0)
        assert payload["runs"][1]["speedup"] > 1.0
        assert payload["config"]["model"] == "3b"

    def test_compare_bad_gpu_count_exits_2(self, capsys):
        code = main(["compare", "--gpus", "12", "--steps", "1"])
        assert code == CONFIG_ERROR_EXIT_CODE
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "multiple of 8" in err

    def test_compare_unknown_model_exits_2(self, capsys):
        code = main(["compare", "--model", "gpt-17t", "--steps", "1"])
        assert code == CONFIG_ERROR_EXIT_CODE
        err = capsys.readouterr().err
        assert err.startswith("error:") and "gpt-17t" in err

    def test_compare_unknown_dataset_exits_2(self, capsys):
        code = main(["compare", "--model", "3b", "--dataset", "nope", "--steps", "1"])
        assert code == CONFIG_ERROR_EXIT_CODE
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope" in err

    def test_run_command_plain(self, capsys):
        code = main(
            ["run", "zeppelin", "--model", "3b", "--context-k", "32", "--steps", "1", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "zeppelin"
        assert payload["tokens_per_second"] > 0
        assert "recovery" not in payload

    def test_run_command_with_dynamics(self, capsys):
        code = main(
            [
                "run", "zeppelin",
                "--model", "3b", "--context-k", "32", "--steps", "1",
                "--straggler-frac", "0.25", "--recovery", "elastic",
                "--iterations", "4", "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recovery"] == "elastic"
        assert payload["goodput_tokens_per_second"] > 0
        assert payload["goodput_fraction"] < 1.0
        assert payload["perturbation"]["straggler_frac"] == 0.25

    def test_run_command_table_output(self, capsys):
        code = main(
            ["run", "zeppelin", "--model", "3b", "--context-k", "32", "--steps", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tokens_per_second" in out and "ClusterA" in out

    def test_run_bad_config_exits_2(self, capsys):
        code = main(["run", "zeppelin", "--gpus", "12"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "multiple of 8" in capsys.readouterr().err

    def test_run_bad_perturbation_exits_2(self, capsys):
        code = main(["run", "zeppelin", "--model", "3b", "--straggler-frac", "1.5"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "straggler_frac" in capsys.readouterr().err

    def test_run_bad_iterations_exits_2(self, capsys):
        code = main(
            ["run", "zeppelin", "--model", "3b", "--straggler-frac", "0.1",
             "--iterations", "0"]
        )
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "iterations" in capsys.readouterr().err

    def test_compare_with_dynamics_reports_goodput(self, capsys):
        code = main(
            [
                "compare",
                "--model", "3b", "--context-k", "32", "--steps", "1",
                "--strategies", "te_cp", "zeppelin",
                "--straggler-frac", "0.25", "--iterations", "4",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all("goodput_tokens_per_second" in r for r in payload["runs"])
        assert payload["runs"][0]["speedup"] == pytest.approx(1.0)

    def test_same_seed_same_dynamics_output(self, capsys):
        argv = [
            "run", "zeppelin",
            "--model", "3b", "--context-k", "32", "--steps", "1",
            "--mttf", "3", "--iterations", "6", "--seed", "13", "--json",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_dynamics_command_lists_policies(self, capsys):
        assert main(["dynamics"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint_restart" in out
        assert "elastic" in out
        assert "mttf_s" in out

    def test_list_includes_recoveries_and_fig13(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "recovery policies:" in out
        assert "fig13_resilience" in out

    def test_experiment_seed_flag(self, capsys):
        assert main(["experiment", "fig1", "--seed", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "fig1"

    def test_experiment_seed_rejected_when_unsupported(self, capsys):
        code = main(["experiment", "table2", "--seed", "5"])
        assert code == CONFIG_ERROR_EXIT_CODE
        assert "does not take a seed" in capsys.readouterr().err

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "arxiv" in out and "prolong64k" in out

    def test_experiment_json_output(self, capsys):
        assert main(["experiment", "table2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "table2"
        assert payload["headers"][0] == "dataset"
        assert any(row[0] == "arxiv" for row in payload["rows"])

    def test_experiment_result_serialises_nested_tuple_keys(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="x", description="d", headers=["a"])
        result.extra["outer"] = {("model", 64): {"inner": 1.0}}
        payload = json.loads(result.to_json())
        assert payload["extra"]["outer"] == {"('model', 64)": {"inner": 1.0}}
