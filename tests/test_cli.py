"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_MODULES, build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "7b"
        assert args.gpus == 16
        assert args.strategies == ["te_cp", "llama_cp", "hybrid_dp", "zeppelin"]

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_experiment_module_is_importable(self):
        import importlib

        for module_name in EXPERIMENT_MODULES.values():
            module = importlib.import_module(module_name)
            assert hasattr(module, "run") and hasattr(module, "main")


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "llama-7b" in out
        assert "zeppelin" in out
        assert "fig8" in out

    def test_compare_command_small_config(self, capsys):
        code = main(
            [
                "compare",
                "--model", "3b",
                "--gpus", "16",
                "--dataset", "arxiv",
                "--context-k", "32",
                "--steps", "1",
                "--strategies", "te_cp", "zeppelin",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TE CP" in out and "Zeppelin" in out
        assert "speedup" in out

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "arxiv" in out and "prolong64k" in out
