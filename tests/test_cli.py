"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import CONFIG_ERROR_EXIT_CODE, build_parser, main
from repro.registry import available_experiments, get_experiment


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "7b"
        assert args.gpus == 16
        assert args.strategies == ["te_cp", "llama_cp", "hybrid_dp", "zeppelin"]
        assert args.json is False

    def test_experiment_requires_known_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_every_experiment_is_registered_with_a_runner(self):
        for name in available_experiments():
            entry = get_experiment(name)
            assert callable(entry.obj)
            assert entry.description


class TestMain:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "llama-7b" in out
        assert "zeppelin" in out
        assert "fig8" in out
        # Per-strategy descriptions come from the registry.
        assert "TransformerEngine CP" in out

    def test_compare_command_small_config(self, capsys):
        code = main(
            [
                "compare",
                "--model", "3b",
                "--gpus", "16",
                "--dataset", "arxiv",
                "--context-k", "32",
                "--steps", "1",
                "--strategies", "te_cp", "zeppelin",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "TE CP" in out and "Zeppelin" in out
        assert "speedup" in out

    def test_compare_json_output(self, capsys):
        code = main(
            [
                "compare",
                "--model", "3b",
                "--gpus", "16",
                "--context-k", "32",
                "--steps", "1",
                "--strategies", "te_cp", "zeppelin",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "te_cp"
        assert [r["strategy"] for r in payload["runs"]] == ["te_cp", "zeppelin"]
        assert payload["runs"][0]["speedup"] == pytest.approx(1.0)
        assert payload["runs"][1]["speedup"] > 1.0
        assert payload["config"]["model"] == "3b"

    def test_compare_bad_gpu_count_exits_2(self, capsys):
        code = main(["compare", "--gpus", "12", "--steps", "1"])
        assert code == CONFIG_ERROR_EXIT_CODE
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "multiple of 8" in err

    def test_compare_unknown_model_exits_2(self, capsys):
        code = main(["compare", "--model", "gpt-17t", "--steps", "1"])
        assert code == CONFIG_ERROR_EXIT_CODE
        err = capsys.readouterr().err
        assert err.startswith("error:") and "gpt-17t" in err

    def test_compare_unknown_dataset_exits_2(self, capsys):
        code = main(["compare", "--model", "3b", "--dataset", "nope", "--steps", "1"])
        assert code == CONFIG_ERROR_EXIT_CODE
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope" in err

    def test_experiment_command(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "arxiv" in out and "prolong64k" in out

    def test_experiment_json_output(self, capsys):
        assert main(["experiment", "table2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "table2"
        assert payload["headers"][0] == "dataset"
        assert any(row[0] == "arxiv" for row in payload["rows"])

    def test_experiment_result_serialises_nested_tuple_keys(self):
        from repro.experiments.common import ExperimentResult

        result = ExperimentResult(name="x", description="d", headers=["a"])
        result.extra["outer"] = {("model", 64): {"inner": 1.0}}
        payload = json.loads(result.to_json())
        assert payload["extra"]["outer"] == {"('model', 64)": {"inner": 1.0}}
