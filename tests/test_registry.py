"""Tests for the strategy/experiment registry subsystem."""

import warnings

import pytest

from repro.core.plan import ExecutionPlan, TaskKind
from repro.core.strategy import Strategy
from repro.registry import (
    DuplicateEntryError,
    Registry,
    UnknownEntryError,
    available_experiments,
    available_strategies,
    get_experiment,
    get_strategy,
    register_strategy,
    strategy_entries,
    unregister_strategy,
)


class TestRegistryCore:
    def test_register_and_get(self):
        reg = Registry("widget")
        reg.register("a", object(), description="first widget")
        entry = reg.get("a")
        assert entry.name == "a"
        assert entry.description == "first widget"

    def test_duplicate_name_raises(self):
        reg = Registry("widget")
        reg.register("a", object())
        with pytest.raises(DuplicateEntryError):
            reg.register("a", object())
        with pytest.raises(DuplicateEntryError):
            reg.register("A", object())  # case-insensitive keys

    def test_unknown_name_lists_available(self):
        reg = Registry("widget")
        reg.register("alpha", object())
        reg.register("beta", object())
        with pytest.raises(UnknownEntryError) as excinfo:
            reg.get("gamma")
        message = str(excinfo.value)
        assert "gamma" in message and "alpha" in message and "beta" in message

    def test_unknown_error_is_value_and_key_error(self):
        # Compatibility with the pre-registry error contracts.
        reg = Registry("widget")
        with pytest.raises(ValueError):
            reg.get("nope")
        with pytest.raises(KeyError):
            reg.get("nope")

    def test_description_defaults_to_docstring(self):
        reg = Registry("widget")

        class Thing:
            """A one-line summary.

            Further detail that should not be used.
            """

        reg.register("thing", Thing)
        assert reg.get("thing").description == "A one-line summary."

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("a", object())
        reg.unregister("a")
        assert "a" not in reg
        with pytest.raises(UnknownEntryError):
            reg.unregister("a")


class TestBuiltinRegistries:
    def test_builtin_strategies_available_without_import(self):
        names = available_strategies()
        for expected in ("te_cp", "llama_cp", "hybrid_dp", "packing", "zeppelin"):
            assert expected in names

    def test_lazy_strategy_lookup_resolves_class(self):
        from repro.core.zeppelin import ZeppelinStrategy

        assert get_strategy("zeppelin").obj is ZeppelinStrategy

    def test_strategy_entries_have_descriptions(self):
        for entry in strategy_entries():
            assert entry.description, f"{entry.name} has no description"

    def test_builtin_experiments_registered(self):
        names = available_experiments()
        for expected in ("fig1", "fig8", "fig11", "table2", "table3"):
            assert expected in names
        entry = get_experiment("table2")
        assert callable(entry.obj)


@pytest.fixture
def toy_strategy():
    """Register a throwaway strategy; always unregister afterwards."""

    @register_strategy("toy_reg_test", description="single compute task per batch")
    class ToyStrategy(Strategy):
        name = "Toy"

        def plan_layer(self, batch, phase="forward"):
            plan = ExecutionPlan(name=f"toy:{phase}")
            duration = batch.total_tokens * 1e-9
            plan.add(
                name=f"toy:{batch.total_tokens}tok",
                kind=TaskKind.LINEAR,
                duration_s=duration,
                resources=(ExecutionPlan.compute_resource(0),),
                rank=0,
            )
            return plan

    try:
        yield ToyStrategy
    finally:
        unregister_strategy("toy_reg_test")


class TestPluggability:
    def test_registered_strategy_runs_through_session(self, toy_strategy):
        from repro.api import Session

        session = Session(model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1)
        result = session.run("toy_reg_test")
        assert result.label == "Toy"
        assert result.tokens_per_second > 0

    def test_registered_strategy_visible_in_cli_list(self, toy_strategy, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "toy_reg_test" in out
        assert "single compute task per batch" in out

    def test_duplicate_strategy_registration_raises(self, toy_strategy):
        with pytest.raises(DuplicateEntryError):
            register_strategy("toy_reg_test")(toy_strategy)

    def test_shadowing_lazy_builtin_raises(self, toy_strategy):
        # A built-in name is taken even before its module has been imported.
        with pytest.raises(DuplicateEntryError):
            register_strategy("te_cp")(toy_strategy)


class TestDeprecatedShims:
    def test_build_strategy_still_works_and_warns(self, context_3b_16):
        from repro.training.runner import build_strategy

        with pytest.warns(DeprecationWarning):
            strategy = build_strategy("zeppelin", context_3b_16, use_routing=False)
        assert "no routing" in strategy.name

    def test_training_run_still_works_and_warns(self):
        from repro.training.runner import TrainingRun, TrainingRunConfig

        config = TrainingRunConfig(
            model="3b", num_gpus=16, total_context=32 * 1024, num_steps=1
        )
        with pytest.warns(DeprecationWarning):
            run = TrainingRun(config)
        reports = run.compare(("te_cp", "zeppelin"))
        assert [r.strategy for r in reports] == ["TE CP", "Zeppelin"]

    def test_training_run_config_is_session_config(self):
        from repro.api import SessionConfig
        from repro.training.runner import TrainingRunConfig

        assert TrainingRunConfig is SessionConfig
